//===- vm/Interpreter.cpp - IR interpreter --------------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
// The dispatch loop executes the pre-decoded module form (vm/Decode.h):
// operand registers, immediates, access widths, callee functions, and
// branch-target blocks are all resolved once at Interpreter construction,
// so the per-instruction work is a single switch on the decoded opcode.
//
// Two further structural choices keep the loop tight:
//
//  * Every frame's register window has slots for the dedicated registers
//    (zero/SP/GP) as well; they are materialized at frame entry, where SP
//    is constant for the whole activation. Operand reads and writes are
//    therefore single unchecked loads/stores off the window base.
//  * The execution point (instruction pointer, block end, instruction
//    count, window base) lives in locals; the frame is only synced on
//    calls, returns, and cold paths. The budget and the wall-clock
//    watchdog probe share one fused per-instruction limit compare.
//
// The loop is specialized on whether any observer asked for
// per-instruction events; plain profiling runs take the variant with no
// per-instruction observer fan-out at all.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "support/Error.h"
#include "support/Metrics.h"
#include "support/TimeTrace.h"
#include "vm/BranchTrace.h"
#include "vm/Decode.h"
#include "vm/EdgeProfile.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <limits>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

constexpr uint64_t NullPageSize = 8;

inline double asDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

inline uint64_t fromDouble(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

/// One activation record. Registers live in the machine's shared
/// register stack at [RegBase, RegBase + DF->NumRegSlots) so that calls
/// do not allocate.
struct Frame {
  const DecodedFunction *DF = nullptr;
  const DecodedBlock *DB = nullptr; ///< executing block
  uint32_t InstIdx = 0;             ///< next instruction to execute
  size_t RegBase = 0;               ///< base slot in the register stack
  uint64_t SavedSp = 0;             ///< SP to restore on return
  uint32_t CallerDst = NoSlot;      ///< caller slot receiving the result
  bool FpFlag = false;              ///< FP condition flag
};

/// Execution engine for a single run; holds all mutable state so that
/// Interpreter::run is reentrant.
class Machine {
public:
  Machine(const DecodedModule &DM, const RunLimits &Limits,
          const Dataset &Data, const std::vector<ExecObserver *> &Observers)
      : DM(DM), Limits(Limits), Data(Data), Observers(Observers) {}

  RunResult run(const DecodedFunction *Entry);

private:
  // Register access ---------------------------------------------------
  //
  // Frames carry window slots for the dedicated registers too, so reads
  // and writes are branch-free window indexing with raw register ids.

  uint64_t readOp(const Frame &F, uint32_t R) const {
    return RegStack[F.RegBase + R];
  }

  /// Destinations were validated at decode time: \p Slot is always a
  /// live virtual-register slot of F's window.
  void writeSlot(const Frame &F, uint32_t Slot, uint64_t V) {
    RegStack[F.RegBase + Slot] = V;
  }

  // Faults ---------------------------------------------------------------

  /// Builds the structured TrapInfo from the live frame stack; called
  /// exactly once, on the first fault of the run.
  TrapInfo snapshotFault(ErrorKind Kind, const std::string &Message) const {
    TrapInfo T;
    T.Kind = Kind;
    T.Message = Message;
    T.InstrCount = Result.InstrCount;
    for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
      TrapFrame TF;
      TF.Function = It->DF->F->getName();
      TF.Block = It->DB->BB->getName();
      TF.BlockId = It->DB->BB->getId();
      // InstIdx is the *next* instruction; the faulting one, when inside
      // the block, is the previous index. Terminators report size().
      TF.InstIdx = It->InstIdx;
      T.Backtrace.push_back(std::move(TF));
    }
    if (!T.Backtrace.empty()) {
      T.Function = T.Backtrace.front().Function;
      T.Block = T.Backtrace.front().Block;
      T.BlockId = T.Backtrace.front().BlockId;
      T.InstIdx = T.Backtrace.front().InstIdx;
    }
    return T;
  }

  /// Ends the run with \p Status unless it already failed (first fault
  /// wins, so injected and organic faults never overwrite each other).
  void fail(RunStatus Status, ErrorKind Kind, const std::string &Message) {
    if (Result.Status != RunStatus::Ok)
      return;
    Result.Status = Status;
    Result.TrapMessage = Message;
    Result.Trap = snapshotFault(Kind, Message);
  }

  void trap(const std::string &Message, ErrorKind Kind = ErrorKind::Trap) {
    fail(RunStatus::Trap, Kind, Message);
  }

  /// Applies a non-Continue observer action (fault injection).
  void applyInjectedAction(ExecAction Action, const Frame &F) {
    switch (Action) {
    case ExecAction::Continue:
      break;
    case ExecAction::InjectTrap:
      trap("injected trap in '" + F.DF->F->getName() + "'",
           ErrorKind::Injected);
      break;
    case ExecAction::InjectBudgetExhaustion:
      // The budget check at the top of the main loop turns this into a
      // regular BudgetExceeded failure on the next iteration.
      Result.InstrCount = Limits.MaxInstructions;
      break;
    case ExecAction::InjectMemoryFault:
      trap("injected memory fault: access out of bounds at address " +
               std::to_string(Memory.size()),
           ErrorKind::Injected);
      break;
    case ExecAction::InjectOutputFlood:
      Result.Output.resize(Limits.MaxOutputBytes, '#');
      Result.OutputTruncated = true;
      fail(RunStatus::OutputOverflow, ErrorKind::Injected,
           "injected output flood: print budget (" +
               std::to_string(Limits.MaxOutputBytes) +
               " bytes) exhausted in '" + F.DF->F->getName() + "'");
      break;
    }
  }

  // Helpers ----------------------------------------------------------

  void output(const std::string &S) {
    if (Result.Output.size() + S.size() <= Limits.MaxOutputBytes) {
      Result.Output += S;
      return;
    }
    Result.OutputTruncated = true;
    if (Limits.TrapOnOutputOverflow)
      fail(RunStatus::OutputOverflow, ErrorKind::OutputOverflow,
           "print budget (" + std::to_string(Limits.MaxOutputBytes) +
               " bytes) exhausted");
  }

  bool pushFrame(const DecodedFunction *DF, const uint32_t *ArgRegs,
                 uint32_t NumArgs, uint32_t CallerDst);
  void popFrame(uint64_t RetValue, bool HasRetValue);
  bool execIntrinsic(Frame &F, const DecodedInst &I);
  template <bool HasInstrObs, bool DirectProfile, bool DirectTraceSink>
  void execLoop();

  const DecodedModule &DM;
  const RunLimits &Limits;
  const Dataset &Data;
  const std::vector<ExecObserver *> &Observers;
  /// Subset of Observers that asked for per-instruction callbacks;
  /// empty for plain profiling runs, which take the execLoop<false>
  /// specialization and pay nothing per instruction.
  std::vector<ExecObserver *> InstrObservers;
  /// Non-null when every observer is an EdgeProfile or a BranchTrace
  /// (at most one of each): the loop bumps the profile's flat counter
  /// arrays (keyed by DecodedBlock::FlatIndex) and appends packed trace
  /// events directly instead of making virtual observer calls per block.
  EdgeProfile::Counts *DirectCounts = nullptr;
  uint64_t *DirectEntries = nullptr;
  BranchTrace *DirectTrace = nullptr;

  std::vector<uint8_t> Memory;
  uint64_t Sp = 0;
  uint64_t HeapTop = 0;
  std::vector<Frame> Frames;
  /// Register windows of all live frames, innermost last; grows and
  /// shrinks with the call stack so frames never allocate individually.
  std::vector<uint64_t> RegStack;
  RunResult Result;
};

bool Machine::pushFrame(const DecodedFunction *DF, const uint32_t *ArgRegs,
                        uint32_t NumArgs, uint32_t CallerDst) {
  assert(NumArgs == DF->NumParams && "argument count mismatch");
  if (Frames.size() >= Limits.MaxCallDepth) {
    trap("call depth limit exceeded in '" + DF->F->getName() + "'");
    return false;
  }
  // Reserve the frame: SP moves down, 8-byte aligned (pre-aligned at
  // decode time).
  if (Sp < HeapTop + DF->FrameBytes) {
    trap("stack overflow entering '" + DF->F->getName() + "'");
    return false;
  }
  const size_t RegBase = RegStack.size();
  RegStack.resize(RegBase + DF->NumRegSlots, 0);
  if (!Frames.empty()) {
    // Argument registers are read from the caller's window, which the
    // resize above left untouched (indices, not pointers); parameters
    // land in the callee's first virtual registers.
    const Frame &Caller = Frames.back();
    for (uint32_t I = 0; I < NumArgs; ++I)
      RegStack[RegBase + FirstVirtualReg + I] = readOp(Caller, ArgRegs[I]);
  }
  Frame Fr;
  Fr.DF = DF;
  Fr.DB = DF->Entry;
  Fr.InstIdx = 0;
  Fr.RegBase = RegBase;
  Fr.SavedSp = Sp;
  Fr.CallerDst = CallerDst;
  Frames.push_back(Fr);
  Sp -= DF->FrameBytes;
  // Materialize the dedicated registers: within one activation SP is
  // constant, so operand reads become plain window loads.
  RegStack[RegBase + SpReg.Id] = Sp;
  RegStack[RegBase + GpReg.Id] = NullPageSize;
  if (DirectEntries)
    ++DirectEntries[DF->Entry->FlatIndex];
  else
    for (ExecObserver *O : Observers)
      O->onBlockEnter(*DF->Entry->BB);
  return true;
}

void Machine::popFrame(uint64_t RetValue, bool HasRetValue) {
  const Frame &F = Frames.back();
  Sp = F.SavedSp;
  const uint32_t Dst = F.CallerDst;
  RegStack.resize(F.RegBase);
  Frames.pop_back();
  if (!Frames.empty() && Dst != NoSlot && HasRetValue)
    writeSlot(Frames.back(), Dst, RetValue);
  if (Frames.empty()) {
    Result.ExitValue = static_cast<int64_t>(RetValue);
  }
}

bool Machine::execIntrinsic(Frame &F, const DecodedInst &I) {
  const uint32_t *ArgRegs = F.DF->ArgPool.data() + I.ArgsOff;
  auto Arg = [&](uint32_t Idx) -> uint64_t {
    return Idx < I.NumArgs ? readOp(F, ArgRegs[Idx]) : 0;
  };
  uint64_t Ret = 0;
  switch (I.Intr) {
  case Intrinsic::PrintInt: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64,
                  static_cast<int64_t>(Arg(0)));
    output(Buf);
    break;
  }
  case Intrinsic::PrintChar:
    output(std::string(1, static_cast<char>(Arg(0))));
    break;
  case Intrinsic::PrintDouble: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", asDouble(Arg(0)));
    output(Buf);
    break;
  }
  case Intrinsic::PrintStr: {
    uint64_t Addr = Arg(0);
    std::string S;
    for (uint64_t K = 0; K < 1u << 20; ++K) {
      if (Addr + K < NullPageSize || Addr + K >= Memory.size()) {
        trap("print_str reads out of bounds");
        return false;
      }
      char C = static_cast<char>(Memory[Addr + K]);
      if (C == '\0')
        break;
      S += C;
    }
    output(S);
    break;
  }
  case Intrinsic::Malloc: {
    uint64_t Bytes = (Arg(0) + 7u) & ~7ull;
    if (Bytes == 0)
      Bytes = 8;
    if (HeapTop + Bytes >= Sp || HeapTop + Bytes < HeapTop) {
      trap("out of heap memory");
      return false;
    }
    Ret = HeapTop;
    HeapTop += Bytes;
    break;
  }
  case Intrinsic::Arg:
    Ret = static_cast<uint64_t>(Data.scalar(static_cast<size_t>(Arg(0))));
    break;
  case Intrinsic::InputLen:
    Ret = Data.Bytes.size();
    break;
  case Intrinsic::InputByte:
    Ret = Data.byte(static_cast<size_t>(Arg(0)));
    break;
  case Intrinsic::Trap:
    trap("explicit trap() in '" + F.DF->F->getName() + "'");
    return false;
  }
  if (I.Dst != NoSlot)
    writeSlot(F, I.Dst, Ret);
  return true;
}

/// The dispatch loop, specialized three ways decided once at run start:
/// HasInstrObs hoists the per-instruction observer guard (plain runs pay
/// nothing per instruction), DirectProfile replaces the per-block
/// virtual observer fan-out with direct increments of the sole
/// EdgeProfile's flat counter arrays, and DirectTraceSink appends packed
/// branch events to the sole BranchTrace inline (capture runs stay on
/// the fast path instead of paying a virtual call per branch).
template <bool HasInstrObs, bool DirectProfile, bool DirectTraceSink>
void Machine::execLoop() {
  // Watchdog bookkeeping: the clock is only read every WatchdogStride
  // instructions, so deadline-free runs stay deterministic and cheap.
  constexpr uint64_t WatchdogStride = 16384;
  const uint64_t MaxInstructions = Limits.MaxInstructions;
  const bool HasDeadline = Limits.MaxMillis > 0;
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Limits.MaxMillis);
  uint64_t NextWatchdogCheck = WatchdogStride;
  // One fused compare per instruction covers both the budget and the
  // watchdog probe: Limit is whichever comes first.
  uint64_t Limit = HasDeadline ? std::min(MaxInstructions, NextWatchdogCheck)
                               : MaxInstructions;

  // The execution point lives in locals; Sync spills it back into the
  // frame / result for cold paths (traps, calls, snapshots) and Reload
  // re-derives it after the active frame changed. Regs is refreshed
  // whenever RegStack may have reallocated (pushFrame).
  uint64_t IC = Result.InstrCount;
  Frame *F = &Frames.back();
  const DecodedBlock *DB = F->DB;
  const DecodedInst *BlockInsts = DB->Insts;
  const DecodedInst *IP = BlockInsts + F->InstIdx;
  const DecodedInst *End = BlockInsts + DB->NumInsts;
  uint64_t *Regs = RegStack.data() + F->RegBase;
  uint8_t *const Mem = Memory.data();
  const uint64_t MemSize = Memory.size();

  auto Sync = [&] {
    F->DB = DB;
    F->InstIdx = static_cast<uint32_t>(IP - BlockInsts);
    Result.InstrCount = IC;
  };
  auto Reload = [&] {
    F = &Frames.back();
    DB = F->DB;
    BlockInsts = DB->Insts;
    IP = BlockInsts + F->InstIdx;
    End = BlockInsts + DB->NumInsts;
    Regs = RegStack.data() + F->RegBase;
  };
  auto EnterBlock = [&](const DecodedBlock *NewDB) {
    DB = NewDB;
    BlockInsts = DB->Insts;
    IP = BlockInsts;
    End = BlockInsts + DB->NumInsts;
  };

  for (;;) {
    if (IC >= Limit) [[unlikely]] {
      Sync();
      if (IC >= MaxInstructions) {
        fail(RunStatus::BudgetExceeded, ErrorKind::BudgetExceeded,
             "instruction budget (" + std::to_string(MaxInstructions) +
                 ") exhausted in '" + F->DF->F->getName() + "'");
        return;
      }
      NextWatchdogCheck = IC + WatchdogStride;
      Limit = std::min(MaxInstructions, NextWatchdogCheck);
      if (std::chrono::steady_clock::now() >= Deadline) {
        fail(RunStatus::Timeout, ErrorKind::Timeout,
             "wall-clock limit (" + std::to_string(Limits.MaxMillis) +
                 " ms) exceeded in '" + F->DF->F->getName() + "'");
        return;
      }
    }
    ++IC;

    if constexpr (HasInstrObs) {
      ExecEvent E;
      E.F = F->DF->F;
      E.BB = DB->BB;
      E.InstIdx = static_cast<size_t>(IP - BlockInsts);
      E.I = IP == End ? nullptr : IP->Src;
      E.InstrCount = IC;
      ExecAction Action = ExecAction::Continue;
      for (ExecObserver *O : InstrObservers) {
        Action = O->onInstruction(E);
        if (Action != ExecAction::Continue)
          break;
      }
      if (Action != ExecAction::Continue) {
        Sync();
        applyInjectedAction(Action, *F);
        if (Result.Status != RunStatus::Ok)
          return;
        IC = Result.InstrCount; // budget injection advances the count
        continue;
      }
    }

    if (IP != End) {
      const DecodedInst &I = *IP++;
      switch (I.Op) {
      case DOp::LoadImm:
        Regs[I.Dst] = static_cast<uint64_t>(I.Imm);
        break;
      case DOp::Move:
        Regs[I.Dst] = Regs[I.SrcA];
        break;
      case DOp::Add:
        Regs[I.Dst] = Regs[I.SrcA] + Regs[I.SrcB];
        break;
      case DOp::AddI:
        Regs[I.Dst] = Regs[I.SrcA] + static_cast<uint64_t>(I.Imm);
        break;
      case DOp::Sub:
        Regs[I.Dst] = Regs[I.SrcA] - Regs[I.SrcB];
        break;
      case DOp::SubI:
        Regs[I.Dst] = Regs[I.SrcA] - static_cast<uint64_t>(I.Imm);
        break;
      case DOp::Mul:
        Regs[I.Dst] = Regs[I.SrcA] * Regs[I.SrcB];
        break;
      case DOp::MulI:
        Regs[I.Dst] = Regs[I.SrcA] * static_cast<uint64_t>(I.Imm);
        break;
      case DOp::Div:
      case DOp::DivI: {
        int64_t Num = static_cast<int64_t>(Regs[I.SrcA]);
        int64_t Den = I.Op == DOp::DivI
                          ? I.Imm
                          : static_cast<int64_t>(Regs[I.SrcB]);
        if (Den == 0) {
          Sync();
          trap("integer division by zero in '" + F->DF->F->getName() +
               "'");
          return;
        }
        Regs[I.Dst] = static_cast<uint64_t>(
            Num == std::numeric_limits<int64_t>::min() && Den == -1
                ? Num
                : Num / Den);
        break;
      }
      case DOp::Rem:
      case DOp::RemI: {
        int64_t Num = static_cast<int64_t>(Regs[I.SrcA]);
        int64_t Den = I.Op == DOp::RemI
                          ? I.Imm
                          : static_cast<int64_t>(Regs[I.SrcB]);
        if (Den == 0) {
          Sync();
          trap("integer remainder by zero in '" + F->DF->F->getName() +
               "'");
          return;
        }
        Regs[I.Dst] = static_cast<uint64_t>(
            Num == std::numeric_limits<int64_t>::min() && Den == -1
                ? 0
                : Num % Den);
        break;
      }
      case DOp::And:
        Regs[I.Dst] = Regs[I.SrcA] & Regs[I.SrcB];
        break;
      case DOp::AndI:
        Regs[I.Dst] = Regs[I.SrcA] & static_cast<uint64_t>(I.Imm);
        break;
      case DOp::Or:
        Regs[I.Dst] = Regs[I.SrcA] | Regs[I.SrcB];
        break;
      case DOp::OrI:
        Regs[I.Dst] = Regs[I.SrcA] | static_cast<uint64_t>(I.Imm);
        break;
      case DOp::Xor:
        Regs[I.Dst] = Regs[I.SrcA] ^ Regs[I.SrcB];
        break;
      case DOp::XorI:
        Regs[I.Dst] = Regs[I.SrcA] ^ static_cast<uint64_t>(I.Imm);
        break;
      case DOp::Shl:
        Regs[I.Dst] = Regs[I.SrcA] << (Regs[I.SrcB] & 63);
        break;
      case DOp::ShlI:
        Regs[I.Dst] = Regs[I.SrcA] << (static_cast<uint64_t>(I.Imm) & 63);
        break;
      case DOp::Shr:
        Regs[I.Dst] = static_cast<uint64_t>(
            static_cast<int64_t>(Regs[I.SrcA]) >> (Regs[I.SrcB] & 63));
        break;
      case DOp::ShrI:
        Regs[I.Dst] = static_cast<uint64_t>(
            static_cast<int64_t>(Regs[I.SrcA]) >>
            (static_cast<uint64_t>(I.Imm) & 63));
        break;
      case DOp::Slt:
        Regs[I.Dst] = static_cast<int64_t>(Regs[I.SrcA]) <
                              static_cast<int64_t>(Regs[I.SrcB])
                          ? 1
                          : 0;
        break;
      case DOp::SltI:
        Regs[I.Dst] = static_cast<int64_t>(Regs[I.SrcA]) < I.Imm ? 1 : 0;
        break;
      case DOp::Seq:
        Regs[I.Dst] = Regs[I.SrcA] == Regs[I.SrcB] ? 1 : 0;
        break;
      case DOp::SeqI:
        Regs[I.Dst] =
            Regs[I.SrcA] == static_cast<uint64_t>(I.Imm) ? 1 : 0;
        break;
      case DOp::Sne:
        Regs[I.Dst] = Regs[I.SrcA] != Regs[I.SrcB] ? 1 : 0;
        break;
      case DOp::SneI:
        Regs[I.Dst] =
            Regs[I.SrcA] != static_cast<uint64_t>(I.Imm) ? 1 : 0;
        break;
      case DOp::FAdd:
        Regs[I.Dst] =
            fromDouble(asDouble(Regs[I.SrcA]) + asDouble(Regs[I.SrcB]));
        break;
      case DOp::FAddI:
        Regs[I.Dst] = fromDouble(asDouble(Regs[I.SrcA]) +
                                 asDouble(static_cast<uint64_t>(I.Imm)));
        break;
      case DOp::FSub:
        Regs[I.Dst] =
            fromDouble(asDouble(Regs[I.SrcA]) - asDouble(Regs[I.SrcB]));
        break;
      case DOp::FSubI:
        Regs[I.Dst] = fromDouble(asDouble(Regs[I.SrcA]) -
                                 asDouble(static_cast<uint64_t>(I.Imm)));
        break;
      case DOp::FMul:
        Regs[I.Dst] =
            fromDouble(asDouble(Regs[I.SrcA]) * asDouble(Regs[I.SrcB]));
        break;
      case DOp::FMulI:
        Regs[I.Dst] = fromDouble(asDouble(Regs[I.SrcA]) *
                                 asDouble(static_cast<uint64_t>(I.Imm)));
        break;
      case DOp::FDiv:
        // IEEE semantics: x/0 is inf/nan, no trap — matches the hardware
        // the paper measured on.
        Regs[I.Dst] =
            fromDouble(asDouble(Regs[I.SrcA]) / asDouble(Regs[I.SrcB]));
        break;
      case DOp::FDivI:
        Regs[I.Dst] = fromDouble(asDouble(Regs[I.SrcA]) /
                                 asDouble(static_cast<uint64_t>(I.Imm)));
        break;
      case DOp::FNeg:
        Regs[I.Dst] = fromDouble(-asDouble(Regs[I.SrcA]));
        break;
      case DOp::CvtIF:
        Regs[I.Dst] = fromDouble(
            static_cast<double>(static_cast<int64_t>(Regs[I.SrcA])));
        break;
      case DOp::CvtFI: {
        double D = asDouble(Regs[I.SrcA]);
        int64_t V;
        if (D >= 9.2233720368547758e18)
          V = std::numeric_limits<int64_t>::max();
        else if (D <= -9.2233720368547758e18 || D != D)
          V = std::numeric_limits<int64_t>::min();
        else
          V = static_cast<int64_t>(D);
        Regs[I.Dst] = static_cast<uint64_t>(V);
        break;
      }
      case DOp::FCmpEq:
        F->FpFlag = asDouble(Regs[I.SrcA]) == asDouble(Regs[I.SrcB]);
        break;
      case DOp::FCmpLt:
        F->FpFlag = asDouble(Regs[I.SrcA]) < asDouble(Regs[I.SrcB]);
        break;
      case DOp::FCmpLe:
        F->FpFlag = asDouble(Regs[I.SrcA]) <= asDouble(Regs[I.SrcB]);
        break;
      case DOp::LoadI8: {
        uint64_t Addr = Regs[I.SrcA] + static_cast<uint64_t>(I.Imm);
        // Addr >= MemSize is the overflow-proof form of Addr + 1 > MemSize:
        // Addr == UINT64_MAX must trap, not wrap past the check.
        if (Addr < NullPageSize || Addr >= MemSize) [[unlikely]] {
          Sync();
          trap("memory access out of bounds at address " +
               std::to_string(Addr));
          return;
        }
        // Sign-extend: MiniC chars behave like signed C chars.
        Regs[I.Dst] = static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int8_t>(Mem[Addr])));
        break;
      }
      case DOp::LoadI64: {
        uint64_t Addr = Regs[I.SrcA] + static_cast<uint64_t>(I.Imm);
        if (Addr < NullPageSize || Addr + 8 > MemSize || Addr + 8 < Addr)
            [[unlikely]] {
          Sync();
          trap("memory access out of bounds at address " +
               std::to_string(Addr));
          return;
        }
        uint64_t V;
        std::memcpy(&V, Mem + Addr, 8);
        Regs[I.Dst] = V;
        break;
      }
      case DOp::StoreI8: {
        uint64_t Addr = Regs[I.SrcA] + static_cast<uint64_t>(I.Imm);
        if (Addr < NullPageSize || Addr >= MemSize) [[unlikely]] {
          Sync();
          trap("memory access out of bounds at address " +
               std::to_string(Addr));
          return;
        }
        Mem[Addr] = static_cast<uint8_t>(Regs[I.SrcB]);
        break;
      }
      case DOp::StoreI64: {
        uint64_t Addr = Regs[I.SrcA] + static_cast<uint64_t>(I.Imm);
        if (Addr < NullPageSize || Addr + 8 > MemSize || Addr + 8 < Addr)
            [[unlikely]] {
          Sync();
          trap("memory access out of bounds at address " +
               std::to_string(Addr));
          return;
        }
        uint64_t V = Regs[I.SrcB];
        std::memcpy(Mem + Addr, &V, 8);
        break;
      }
      case DOp::Call: {
        Sync(); // resumption point: the instruction after the call
        if (!pushFrame(I.Callee, F->DF->ArgPool.data() + I.ArgsOff,
                       I.NumArgs, I.Dst))
          return;
        Reload();
        continue;
      }
      case DOp::CallIntrinsic: {
        Sync(); // intrinsics can trap and need an exact backtrace
        if (!execIntrinsic(*F, I))
          return;
        if (Result.Status != RunStatus::Ok)
          return; // print budget exhausted with overflow trapping on
        break;
      }
      }
    } else {
      const DecodedTerm &T = DB->Term;
      switch (T.Kind) {
      case TermKind::Jump:
        EnterBlock(T.Taken);
        if constexpr (DirectProfile)
          ++DirectEntries[DB->FlatIndex];
        else if constexpr (!DirectTraceSink)
          for (ExecObserver *O : Observers)
            O->onBlockEnter(*DB->BB);
        continue;
      case TermKind::CondBranch: {
        bool Taken = false;
        switch (T.BOp) {
        case BranchOp::BEQ:
          Taken = Regs[T.Lhs] == Regs[T.Rhs];
          break;
        case BranchOp::BNE:
          Taken = Regs[T.Lhs] != Regs[T.Rhs];
          break;
        case BranchOp::BLEZ:
          Taken = static_cast<int64_t>(Regs[T.Lhs]) <= 0;
          break;
        case BranchOp::BGTZ:
          Taken = static_cast<int64_t>(Regs[T.Lhs]) > 0;
          break;
        case BranchOp::BLTZ:
          Taken = static_cast<int64_t>(Regs[T.Lhs]) < 0;
          break;
        case BranchOp::BGEZ:
          Taken = static_cast<int64_t>(Regs[T.Lhs]) >= 0;
          break;
        case BranchOp::BC1T:
          Taken = F->FpFlag;
          break;
        case BranchOp::BC1F:
          Taken = !F->FpFlag;
          break;
        }
        if constexpr (DirectTraceSink)
          DirectTrace->append(DB->FlatIndex, Taken, IC);
        if constexpr (DirectProfile) {
          EdgeProfile::Counts &C = DirectCounts[DB->FlatIndex];
          if (Taken)
            ++C.Taken;
          else
            ++C.Fallthru;
          EnterBlock(Taken ? T.Taken : T.Fallthru);
          ++DirectEntries[DB->FlatIndex];
        } else if constexpr (DirectTraceSink) {
          EnterBlock(Taken ? T.Taken : T.Fallthru);
        } else {
          const ir::BasicBlock &BranchBlock = *DB->BB;
          EnterBlock(Taken ? T.Taken : T.Fallthru);
          for (ExecObserver *O : Observers)
            O->onCondBranch(BranchBlock, Taken, IC);
          for (ExecObserver *O : Observers)
            O->onBlockEnter(*DB->BB);
        }
        continue;
      }
      case TermKind::Return: {
        uint64_t V = T.HasRetValue ? Regs[T.RetValue] : 0;
        popFrame(V, T.HasRetValue);
        if (Frames.empty()) {
          Result.InstrCount = IC;
          return;
        }
        Reload();
        continue;
      }
      }
    }
  }
}

RunResult Machine::run(const DecodedFunction *Entry) {
  const Module &M = *DM.M;
  Memory.assign(Limits.MemoryBytes, 0);
  // Map the global image just past the null page; GP reads as its base.
  const std::vector<uint8_t> &Image = M.getGlobalImage();
  if (NullPageSize + Image.size() > Memory.size()) {
    trap("global segment larger than VM memory");
    return Result;
  }
  if (!Image.empty())
    std::memcpy(Memory.data() + NullPageSize, Image.data(), Image.size());
  HeapTop = (NullPageSize + Image.size() + 7u) & ~7ull;
  Sp = Memory.size();

  for (ExecObserver *O : Observers)
    if (O->wantsInstructionEvents())
      InstrObservers.push_back(O);
  if (InstrObservers.empty() && !Observers.empty() &&
      Observers.size() <= 2) {
    // The direct configurations: every observer is an EdgeProfile or a
    // BranchTrace, at most one of each. Anything else falls back to the
    // virtual fan-out.
    EdgeProfile *EP = nullptr;
    BranchTrace *BT = nullptr;
    bool AllDirect = true;
    for (ExecObserver *O : Observers) {
      if (EdgeProfile *P = O->asEdgeProfile()) {
        AllDirect = AllDirect && !EP;
        EP = P;
      } else if (BranchTrace *T = O->asTraceSink()) {
        AllDirect = AllDirect && !BT;
        BT = T;
      } else {
        AllDirect = false;
      }
    }
    if (AllDirect) {
      if (EP) {
        DirectCounts = EP->directCounts();
        DirectEntries = EP->directEntries();
      }
      DirectTrace = BT;
    }
  }

  RegStack.reserve(4096);

  if (!pushFrame(Entry, nullptr, 0, NoSlot))
    return Result;

  if (!InstrObservers.empty())
    execLoop<true, false, false>();
  else if (DirectEntries && DirectTrace)
    execLoop<false, true, true>();
  else if (DirectEntries)
    execLoop<false, true, false>();
  else if (DirectTrace)
    execLoop<false, false, true>();
  else
    execLoop<false, false, false>();
  return Result;
}

} // namespace

std::string TrapInfo::render() const {
  std::string S = std::string(errorKindName(Kind)) + ": " + Message;
  if (!Function.empty())
    S += " at " + Function + ":" + Block + "[" + std::to_string(InstIdx) +
         "]";
  S += " (instr #" + std::to_string(InstrCount) + ")";
  for (size_t I = 0; I < Backtrace.size(); ++I) {
    const TrapFrame &F = Backtrace[I];
    S += "\n  #" + std::to_string(I) + " " + F.Function + " " + F.Block +
         "[" + std::to_string(F.InstIdx) + "]";
  }
  return S;
}

ErrorKind RunResult::errorKind() const {
  if (Trap)
    return Trap->Kind;
  switch (Status) {
  case RunStatus::Ok:
    return ErrorKind::Unknown;
  case RunStatus::Trap:
    return ErrorKind::Trap;
  case RunStatus::BudgetExceeded:
    return ErrorKind::BudgetExceeded;
  case RunStatus::Timeout:
    return ErrorKind::Timeout;
  case RunStatus::OutputOverflow:
    return ErrorKind::OutputOverflow;
  }
  return ErrorKind::Unknown;
}

Interpreter::Interpreter(const Module &M, RunLimits Limits)
    : M(M), Limits(Limits) {
  // The decoded-instruction cache build is the one-time cost run() then
  // amortizes; tracked so manifests can attribute setup vs. execution.
  static metrics::Timer &DecodeTimer = metrics::timer("vm.decode");
  metrics::ScopedTimer Time(DecodeTimer);
  timetrace::Span DecodeSpan("vm.decode");
  DM = std::make_unique<DecodedModule>(decodeModule(M));
  static metrics::Counter &Builds = metrics::counter("vm.decode_builds");
  Builds.add();
}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run(const Dataset &Data,
                           const std::vector<ExecObserver *> &Observers,
                           const std::string &EntryName) {
  const DecodedFunction *Entry = DM->find(EntryName);
  if (!Entry) {
    RunResult R;
    R.Status = RunStatus::Trap;
    R.TrapMessage = "entry function '" + EntryName + "' not found";
    R.Trap = TrapInfo();
    R.Trap->Kind = ErrorKind::InvalidArgument;
    R.Trap->Message = R.TrapMessage;
    return R;
  }
  // Run-level observability only: totals are read off RunResult and the
  // attached trace sink after the run, so the dispatch loops (including
  // the specialized ones) carry zero extra per-instruction work.
  const bool Observe = metrics::enabled();
  BranchTrace *Sink = nullptr;
  uint64_t SinkEventsBefore = 0;
  if (Observe) [[unlikely]] {
    for (ExecObserver *O : Observers)
      if (BranchTrace *T = O->asTraceSink()) {
        Sink = T;
        SinkEventsBefore = T->numEvents() + T->droppedEvents();
        break;
      }
  }
  Machine Mach(*DM, Limits, Data, Observers);
  RunResult R = Mach.run(Entry);
  if (Observe) [[unlikely]] {
    static metrics::Counter &Runs = metrics::counter("vm.runs");
    static metrics::Counter &Instrs = metrics::counter("vm.instructions");
    Runs.add();
    Instrs.add(R.InstrCount);
    if (!R.ok()) {
      static metrics::Counter &Traps = metrics::counter("vm.traps");
      Traps.add();
    }
    if (Sink) {
      // Executed conditional branches, visible whenever a capture trace
      // rode along (dropped events still represent executed branches).
      static metrics::Counter &Branches = metrics::counter("vm.branches");
      Branches.add(Sink->numEvents() + Sink->droppedEvents() -
                   SinkEventsBefore);
    }
  }
  return R;
}
