//===- vm/BranchTrace.h - Packed branch-outcome traces ----------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capture-once/replay-many branch traces for the Section 6 (IPBC)
/// experiments. A BranchTrace records every executed conditional branch
/// as a packed (flat block index, taken, instruction delta) event; a
/// replay engine (ipbc/TraceReplay.h) then evaluates any number of
/// static predictors from the one captured stream, so adding a predictor
/// adds a cheap replay pass instead of another interpretation run.
///
/// Encoding: events are appended to fixed-size chunks (256 KiB) of
/// 32-bit words. The common event is one word —
///
///   bit  0        branch taken
///   bits 1..15    flat block index of the branch block
///   bits 16..31   instructions since the previous event (the branch
///                 itself included)
///
/// — and events whose index or delta do not fit use a four-word escape
/// (delta field all-ones, then raw 32-bit index and a raw 64-bit delta).
/// Chunking keeps append O(1) without reallocation-copy spikes, and a
/// byte cap bounds total memory: a trace that would exceed the cap stops
/// recording and marks itself overflowed instead of exhausting the host.
/// Past the cap, numEvents() stays frozen at the stored prefix and the
/// discarded tail is tallied by droppedEvents(), so the counters always
/// describe the decodable stream. Alternatively, spillTo() streams
/// completed chunks into an on-disk bpfree-trace-v1 store
/// (vm/TraceStore.h) as they fill, capturing arbitrarily long runs at a
/// flat one-chunk memory ceiling with zero drops.
///
/// The trace doubles as a plain ExecObserver (onCondBranch appends), so
/// it can ride along any observer configuration — fault-injected runs,
/// differential tests against the online SequenceCollector — while the
/// interpreter's specialized loop bypasses the virtual call entirely via
/// the asTraceSink identity hook when the observer set allows it.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_BRANCHTRACE_H
#define BPFREE_VM_BRANCHTRACE_H

#include "ir/Module.h"
#include "support/Error.h"
#include "vm/ExecObserver.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace bpfree {

class TraceWriter;
struct IoFaultPlan;

/// \returns the flat block offsets of \p M: entry F is the module-wide
/// dense index of function F's block 0 (functions in index order, blocks
/// by id — exactly DecodedBlock::FlatIndex), and the extra trailing
/// entry is the total block count. Shared by EdgeProfile's counter
/// arrays, the SequenceCollector's direction cache, and trace replay.
std::vector<uint32_t> flatBlockOffsets(const ir::Module &M);

/// Incremental decoder for the packed event-word format. Feed it any
/// run of consecutive stream words (a resident chunk, a frame read back
/// from disk) and it invokes F(uint32_t FlatIndex, bool Taken,
/// uint64_t Delta) for every complete event, carrying the trailing
/// words of an escape record that straddles two feeds. BranchTrace's
/// resident forEach and the trace store's streaming replay both decode
/// through this class, so the two paths cannot drift.
class TraceDecoder {
public:
  // The word format (see the file comment): one compact word per common
  // event, a four-word escape when the index or delta overflows its
  // field.
  static constexpr uint32_t IdxBits = 15;
  static constexpr uint32_t MaxCompactIdx = (1u << IdxBits) - 1;
  static constexpr uint32_t EscapeDelta = 0xFFFFu;
  static constexpr uint64_t EscapeWords = 4;

  /// Decodes \p N words at \p W, continuing any escape record left
  /// unfinished by the previous feed.
  template <class Fn> void feed(const uint32_t *W, uint64_t N, Fn &&F) {
    uint64_t I = 0;
    if (PendingWords != 0) [[unlikely]] {
      while (PendingWords < EscapeWords && I < N)
        Pending[PendingWords++] = W[I++];
      if (PendingWords < EscapeWords)
        return;
      F(Pending[1], (Pending[0] & 1) != 0,
        (static_cast<uint64_t>(Pending[3]) << 32) | Pending[2]);
      PendingWords = 0;
    }
    while (I < N) {
      const uint32_t Head = W[I];
      const bool Taken = (Head & 1) != 0;
      const uint32_t DeltaField = Head >> (IdxBits + 1);
      if (DeltaField != EscapeDelta) [[likely]] {
        F((Head >> 1) & MaxCompactIdx, Taken,
          static_cast<uint64_t>(DeltaField));
        ++I;
        continue;
      }
      if (I + EscapeWords <= N) {
        F(W[I + 1], Taken,
          (static_cast<uint64_t>(W[I + 3]) << 32) | W[I + 2]);
        I += EscapeWords;
        continue;
      }
      // The escape's tail lives in the next feed; stash the head words.
      while (I < N)
        Pending[PendingWords++] = W[I++];
    }
  }

  /// True when the last feed ended inside an escape record — at end of
  /// stream this means the stream was torn mid-record.
  bool midRecord() const { return PendingWords != 0; }

private:
  uint32_t Pending[EscapeWords];
  uint32_t PendingWords = 0;
};

/// A captured branch-outcome stream for one execution of one module.
class BranchTrace : public ExecObserver {
public:
  /// 64Ki words = 256 KiB per chunk.
  static constexpr size_t ChunkWords = 1u << 16;
  /// Default memory cap; traces hitting it mark themselves overflowed.
  static constexpr uint64_t DefaultMaxBytes = 1ull << 30;
  // The word format is defined once, on TraceDecoder; these aliases keep
  // the encoder and every decoder on the same constants.
  static constexpr uint32_t IdxBits = TraceDecoder::IdxBits;
  static constexpr uint32_t MaxCompactIdx = TraceDecoder::MaxCompactIdx;
  static constexpr uint32_t EscapeDelta = TraceDecoder::EscapeDelta;
  static constexpr uint64_t EscapeWords = TraceDecoder::EscapeWords;

  explicit BranchTrace(const ir::Module &M,
                       uint64_t MaxBytes = DefaultMaxBytes);
  ~BranchTrace(); // out-of-line: TraceWriter is incomplete here

  // Observer path (used when other observers — e.g. a FaultInjector —
  // force the interpreter off the specialized loop).
  void onCondBranch(const ir::BasicBlock &BB, bool Taken,
                    uint64_t InstrCount) override;
  BranchTrace *asTraceSink() override { return this; }

  /// Appends one event. \p InstrCount is the running instruction count
  /// at the branch, the branch itself included (monotone across calls).
  /// Inline: this is the interpreter's per-branch fast path.
  ///
  /// Once the byte cap trips, events are counted as dropped instead:
  /// Events and LastInstr freeze at the stored prefix, so numEvents()
  /// always agrees with the decodable stream — consumers of the count
  /// (bench trace stats, the metrics layer) never see phantom events
  /// that pushWord silently discarded.
  void append(uint32_t FlatIndex, bool Taken, uint64_t InstrCount) {
    if (Overflowed) [[unlikely]] {
      ++Dropped;
      return;
    }
    const uint64_t Delta = InstrCount - LastInstr;
    if (FlatIndex <= MaxCompactIdx && Delta < EscapeDelta) [[likely]] {
      pushWord((static_cast<uint32_t>(Delta) << (IdxBits + 1)) |
               (FlatIndex << 1) | (Taken ? 1u : 0u));
    } else {
      appendEscape(FlatIndex, Taken, Delta);
    }
    if (Overflowed) [[unlikely]] {
      // This very event tripped the cap: its words were dropped (or the
      // partial escape rolled back), so it was never stored.
      ++Dropped;
      return;
    }
    LastInstr = InstrCount;
    ++Events;
  }

  /// Closes the trace with the run's total instruction count (the final
  /// unbroken sequence's end); call once, after the run finishes.
  void finalize(uint64_t TotalInstrCount) {
    TotalInstrs_ = TotalInstrCount;
    Finalized = true;
  }

  const ir::Module &getModule() const { return M; }
  bool finalized() const { return Finalized; }
  uint64_t totalInstrs() const { return TotalInstrs_; }
  /// Complete events in the stored stream — always decodable by
  /// forEach(), even after overflow (the truncated tail is counted by
  /// droppedEvents() instead).
  uint64_t numEvents() const { return Events; }
  /// Events discarded after the byte cap tripped; nonzero implies
  /// overflowed().
  uint64_t droppedEvents() const { return Dropped; }
  /// True when the byte cap was hit: the stored stream is truncated and
  /// must not be replayed.
  bool overflowed() const { return Overflowed; }
  /// Chunks currently resident in memory (at most one while spilling).
  size_t numChunks() const { return Chunks.size(); }
  /// Raw storage of resident chunk \p C — the persistence layer writes
  /// these words verbatim, so files are bit-identical to memory.
  const uint32_t *chunkWords(size_t C) const { return Chunks[C].get(); }
  /// Words of complete records in the stored stream.
  uint64_t storedWordCount() const { return storedWords(); }
  /// Bytes of packed event storage currently resident — the flat memory
  /// ceiling a spilling capture holds regardless of stream length.
  uint64_t bytes() const { return Chunks.size() * ChunkWords * 4; }

  /// Decodes the stream in capture order, invoking
  /// F(uint32_t FlatIndex, bool Taken, uint64_t Delta) per event.
  /// Deltas reconstruct the exact instruction counts the branches were
  /// captured at: IC_n = sum of the first n deltas. Each chunk is fed to
  /// the incremental decoder through a raw pointer — replay decodes tens
  /// of millions of events, so per-word cursor bookkeeping would
  /// dominate it — and the decoder carries escapes that straddle chunks.
  /// Not available once chunks have been spilled to disk (the resident
  /// window is then a suffix, not the stream); replay a spilled trace
  /// from its store instead.
  template <class Fn> void forEach(Fn &&F) const {
    assert(SpilledChunks == 0 &&
           "resident decode of a spilled trace; replay from its store");
    uint64_t Remaining = storedWords();
    TraceDecoder D;
    for (size_t C = 0; Remaining > 0; ++C) {
      const uint64_t N = std::min<uint64_t>(ChunkWords, Remaining);
      D.feed(Chunks[C].get(), N, F);
      Remaining -= N;
    }
  }

  /// Streams every completed chunk to \p Path as a bpfree-trace-v1 file
  /// (vm/TraceStore.h) instead of accumulating them: at most one chunk
  /// stays resident, so capture memory is flat no matter how long the
  /// run — the byte cap never trips and no event is ever dropped for
  /// space. Call before the first append; after finalize(), closeSpill()
  /// seals the file. A storage failure mid-capture marks the trace
  /// overflowed (the on-disk stream is abandoned) and is reported by
  /// closeSpill(). \p Faults arms deterministic I/O fault injection for
  /// chaos tests.
  std::optional<Diag> spillTo(const std::string &Path,
                              const IoFaultPlan *Faults = nullptr);
  /// True when this trace was told to spill (resident replay is then
  /// unavailable; use the store).
  bool spilling() const { return !SpillPath.empty(); }
  const std::string &spillPath() const { return SpillPath; }
  uint64_t spilledChunks() const { return SpilledChunks; }
  /// Flushes the tail chunk, writes the footer, and atomically renames
  /// the temp file onto spillPath(). Requires finalize(). \returns the
  /// first storage failure (at which point no file exists at the final
  /// path), or nullopt on success.
  std::optional<Diag> closeSpill();

private:
  void pushWord(uint32_t W) {
    if (Cur == End) [[unlikely]] {
      if (!grow())
        return;
    }
    *Cur++ = W;
  }

  /// Words of complete records in the stream. Derived from the write
  /// cursor rather than counted per append — this keeps one store off
  /// the interpreter's per-branch fast path. RolledBack discounts the
  /// leading words of an escape record whose tail hit the memory cap.
  uint64_t storedWords() const {
    if (Chunks.empty())
      return SpilledWords;
    return SpilledWords + (Chunks.size() - 1) * ChunkWords +
           static_cast<uint64_t>(Cur - Chunks.back().get()) - RolledBack;
  }

  /// Cold path: allocates the next chunk, or flags overflow at the cap.
  bool grow();
  void appendEscape(uint32_t FlatIndex, bool Taken, uint64_t Delta);

  const ir::Module &M;
  std::vector<uint32_t> FuncOffsets; ///< flatBlockOffsets(M)
  std::vector<std::unique_ptr<uint32_t[]>> Chunks;
  uint32_t *Cur = nullptr; ///< next free word in the last chunk
  uint32_t *End = nullptr; ///< one past the last chunk's storage
  uint64_t RolledBack = 0; ///< words excluded by escape rollback
  uint64_t Events = 0;
  uint64_t Dropped = 0; ///< events discarded after overflow
  uint64_t LastInstr = 0;
  uint64_t TotalInstrs_ = 0;
  uint64_t MaxBytes;
  bool Overflowed = false;
  bool Finalized = false;
  // Spill state: with Spill set, grow() hands the just-filled chunk to
  // the writer and reuses its buffer, so Chunks never exceeds one entry.
  std::unique_ptr<TraceWriter> Spill;
  std::string SpillPath;
  std::optional<Diag> SpillError;
  uint64_t SpilledChunks = 0;
  uint64_t SpilledWords = 0;
};

} // namespace bpfree

#endif // BPFREE_VM_BRANCHTRACE_H
