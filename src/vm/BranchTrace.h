//===- vm/BranchTrace.h - Packed branch-outcome traces ----------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capture-once/replay-many branch traces for the Section 6 (IPBC)
/// experiments. A BranchTrace records every executed conditional branch
/// as a packed (flat block index, taken, instruction delta) event; a
/// replay engine (ipbc/TraceReplay.h) then evaluates any number of
/// static predictors from the one captured stream, so adding a predictor
/// adds a cheap replay pass instead of another interpretation run.
///
/// Encoding: events are appended to fixed-size chunks (256 KiB) of
/// 32-bit words. The common event is one word —
///
///   bit  0        branch taken
///   bits 1..15    flat block index of the branch block
///   bits 16..31   instructions since the previous event (the branch
///                 itself included)
///
/// — and events whose index or delta do not fit use a four-word escape
/// (delta field all-ones, then raw 32-bit index and a raw 64-bit delta).
/// Chunking keeps append O(1) without reallocation-copy spikes, and a
/// byte cap bounds total memory: a trace that would exceed the cap stops
/// recording and marks itself overflowed instead of exhausting the host.
/// Past the cap, numEvents() stays frozen at the stored prefix and the
/// discarded tail is tallied by droppedEvents(), so the counters always
/// describe the decodable stream.
///
/// The trace doubles as a plain ExecObserver (onCondBranch appends), so
/// it can ride along any observer configuration — fault-injected runs,
/// differential tests against the online SequenceCollector — while the
/// interpreter's specialized loop bypasses the virtual call entirely via
/// the asTraceSink identity hook when the observer set allows it.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_VM_BRANCHTRACE_H
#define BPFREE_VM_BRANCHTRACE_H

#include "ir/Module.h"
#include "vm/ExecObserver.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace bpfree {

/// \returns the flat block offsets of \p M: entry F is the module-wide
/// dense index of function F's block 0 (functions in index order, blocks
/// by id — exactly DecodedBlock::FlatIndex), and the extra trailing
/// entry is the total block count. Shared by EdgeProfile's counter
/// arrays, the SequenceCollector's direction cache, and trace replay.
std::vector<uint32_t> flatBlockOffsets(const ir::Module &M);

/// A captured branch-outcome stream for one execution of one module.
class BranchTrace : public ExecObserver {
public:
  /// 64Ki words = 256 KiB per chunk.
  static constexpr size_t ChunkWords = 1u << 16;
  /// Default memory cap; traces hitting it mark themselves overflowed.
  static constexpr uint64_t DefaultMaxBytes = 1ull << 30;

  explicit BranchTrace(const ir::Module &M,
                       uint64_t MaxBytes = DefaultMaxBytes);

  // Observer path (used when other observers — e.g. a FaultInjector —
  // force the interpreter off the specialized loop).
  void onCondBranch(const ir::BasicBlock &BB, bool Taken,
                    uint64_t InstrCount) override;
  BranchTrace *asTraceSink() override { return this; }

  /// Appends one event. \p InstrCount is the running instruction count
  /// at the branch, the branch itself included (monotone across calls).
  /// Inline: this is the interpreter's per-branch fast path.
  ///
  /// Once the byte cap trips, events are counted as dropped instead:
  /// Events and LastInstr freeze at the stored prefix, so numEvents()
  /// always agrees with the decodable stream — consumers of the count
  /// (bench trace stats, the metrics layer) never see phantom events
  /// that pushWord silently discarded.
  void append(uint32_t FlatIndex, bool Taken, uint64_t InstrCount) {
    if (Overflowed) [[unlikely]] {
      ++Dropped;
      return;
    }
    const uint64_t Delta = InstrCount - LastInstr;
    if (FlatIndex <= MaxCompactIdx && Delta < EscapeDelta) [[likely]] {
      pushWord((static_cast<uint32_t>(Delta) << (IdxBits + 1)) |
               (FlatIndex << 1) | (Taken ? 1u : 0u));
    } else {
      appendEscape(FlatIndex, Taken, Delta);
    }
    if (Overflowed) [[unlikely]] {
      // This very event tripped the cap: its words were dropped (or the
      // partial escape rolled back), so it was never stored.
      ++Dropped;
      return;
    }
    LastInstr = InstrCount;
    ++Events;
  }

  /// Closes the trace with the run's total instruction count (the final
  /// unbroken sequence's end); call once, after the run finishes.
  void finalize(uint64_t TotalInstrCount) {
    TotalInstrs_ = TotalInstrCount;
    Finalized = true;
  }

  const ir::Module &getModule() const { return M; }
  bool finalized() const { return Finalized; }
  uint64_t totalInstrs() const { return TotalInstrs_; }
  /// Complete events in the stored stream — always decodable by
  /// forEach(), even after overflow (the truncated tail is counted by
  /// droppedEvents() instead).
  uint64_t numEvents() const { return Events; }
  /// Events discarded after the byte cap tripped; nonzero implies
  /// overflowed().
  uint64_t droppedEvents() const { return Dropped; }
  /// True when the byte cap was hit: the stored stream is truncated and
  /// must not be replayed.
  bool overflowed() const { return Overflowed; }
  size_t numChunks() const { return Chunks.size(); }
  /// Bytes of packed event storage currently held.
  uint64_t bytes() const { return Chunks.size() * ChunkWords * 4; }

  /// Decodes the stream in capture order, invoking
  /// F(uint32_t FlatIndex, bool Taken, uint64_t Delta) per event.
  /// Deltas reconstruct the exact instruction counts the branches were
  /// captured at: IC_n = sum of the first n deltas. The inner loop walks
  /// each chunk through a raw pointer — replay decodes tens of millions
  /// of events, so per-word cursor bookkeeping would dominate it.
  template <class Fn> void forEach(Fn &&F) const {
    const uint64_t Total = storedWords();
    uint64_t Done = 0; ///< words fully consumed so far
    size_t C = 0;      ///< current chunk
    uint64_t In = 0;   ///< next word within chunk C
    while (Done < Total) {
      const uint32_t *Base = Chunks[C].get();
      const uint64_t Limit =
          std::min<uint64_t>(ChunkWords, In + (Total - Done));
      uint64_t I = In;
      while (I < Limit) {
        const uint32_t W = Base[I];
        const bool Taken = (W & 1) != 0;
        const uint32_t DeltaField = W >> (IdxBits + 1);
        if (DeltaField != EscapeDelta) [[likely]] {
          F((W >> 1) & MaxCompactIdx, Taken,
            static_cast<uint64_t>(DeltaField));
          ++I;
          continue;
        }
        if (I + EscapeWords <= ChunkWords) {
          F(Base[I + 1], Taken,
            (static_cast<uint64_t>(Base[I + 3]) << 32) | Base[I + 2]);
        } else {
          // The escape's trailing words straddle into the next chunk;
          // gather them word-at-a-time (escapes are rare, straddling
          // ones rarer still).
          uint32_t Ext[3];
          size_t CC = C;
          uint64_t J = I;
          for (int K = 0; K < 3; ++K) {
            if (++J == ChunkWords) {
              J = 0;
              ++CC;
            }
            Ext[K] = Chunks[CC][J];
          }
          F(Ext[0], Taken,
            (static_cast<uint64_t>(Ext[2]) << 32) | Ext[1]);
        }
        I += EscapeWords;
      }
      Done += I - In;
      // A straddling escape can leave I past ChunkWords; advance the
      // chunk cursor accordingly.
      C += I / ChunkWords;
      In = I % ChunkWords;
    }
  }

private:
  static constexpr uint32_t IdxBits = 15;
  static constexpr uint32_t MaxCompactIdx = (1u << IdxBits) - 1;
  static constexpr uint32_t EscapeDelta = 0xFFFFu;
  static constexpr uint64_t EscapeWords = 4;

  void pushWord(uint32_t W) {
    if (Cur == End) [[unlikely]] {
      if (!grow())
        return;
    }
    *Cur++ = W;
  }

  /// Words of complete records in the stream. Derived from the write
  /// cursor rather than counted per append — this keeps one store off
  /// the interpreter's per-branch fast path. RolledBack discounts the
  /// leading words of an escape record whose tail hit the memory cap.
  uint64_t storedWords() const {
    if (Chunks.empty())
      return 0;
    return (Chunks.size() - 1) * ChunkWords +
           static_cast<uint64_t>(Cur - Chunks.back().get()) - RolledBack;
  }

  /// Cold path: allocates the next chunk, or flags overflow at the cap.
  bool grow();
  void appendEscape(uint32_t FlatIndex, bool Taken, uint64_t Delta);

  const ir::Module &M;
  std::vector<uint32_t> FuncOffsets; ///< flatBlockOffsets(M)
  std::vector<std::unique_ptr<uint32_t[]>> Chunks;
  uint32_t *Cur = nullptr; ///< next free word in the last chunk
  uint32_t *End = nullptr; ///< one past the last chunk's storage
  uint64_t RolledBack = 0; ///< words excluded by escape rollback
  uint64_t Events = 0;
  uint64_t Dropped = 0; ///< events discarded after overflow
  uint64_t LastInstr = 0;
  uint64_t TotalInstrs_ = 0;
  uint64_t MaxBytes;
  bool Overflowed = false;
  bool Finalized = false;
};

} // namespace bpfree

#endif // BPFREE_VM_BRANCHTRACE_H
