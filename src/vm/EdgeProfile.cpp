//===- vm/EdgeProfile.cpp - Branch edge profiles --------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/EdgeProfile.h"

#include "vm/BranchTrace.h"

#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

ExecObserver::~ExecObserver() = default;
void ExecObserver::onCondBranch(const BasicBlock &, bool, uint64_t) {}
void ExecObserver::onBlockEnter(const BasicBlock &) {}
bool ExecObserver::wantsInstructionEvents() const { return false; }
ExecAction ExecObserver::onInstruction(const ExecEvent &) {
  return ExecAction::Continue;
}
EdgeProfile *ExecObserver::asEdgeProfile() { return nullptr; }
BranchTrace *ExecObserver::asTraceSink() { return nullptr; }

EdgeProfile::EdgeProfile(const Module &M)
    : M(M), FuncOffsets(flatBlockOffsets(M)) {
  // Flat layout keyed by the decoder's flat block index; must match
  // DecodedBlock::FlatIndex (functions in index order, blocks by id).
  Flat.assign(FuncOffsets.back(), Counts());
  Entries.assign(FuncOffsets.back(), 0);
}

size_t EdgeProfile::flatIndex(const BasicBlock &BB) const {
  return FuncOffsets[BB.getParent()->getIndex()] + BB.getId();
}

void EdgeProfile::onCondBranch(const BasicBlock &BB, bool Taken,
                               uint64_t /*InstrCount*/) {
  Counts &C = Flat[flatIndex(BB)];
  if (Taken)
    ++C.Taken;
  else
    ++C.Fallthru;
}

void EdgeProfile::onBlockEnter(const BasicBlock &BB) {
  ++Entries[flatIndex(BB)];
}

const EdgeProfile::Counts &EdgeProfile::get(const BasicBlock &BB) const {
  return Flat[flatIndex(BB)];
}

uint64_t EdgeProfile::getBlockCount(const BasicBlock &BB) const {
  return Entries[flatIndex(BB)];
}

void EdgeProfile::merge(const EdgeProfile &Other) {
  assert(&M == &Other.M && "merging profiles of different modules");
  for (size_t I = 0; I < Flat.size(); ++I) {
    Flat[I].Taken += Other.Flat[I].Taken;
    Flat[I].Fallthru += Other.Flat[I].Fallthru;
    Entries[I] += Other.Entries[I];
  }
}

uint64_t EdgeProfile::totalBranchExecutions() const {
  uint64_t Total = 0;
  for (const Counts &C : Flat)
    Total += C.total();
  return Total;
}
