//===- vm/EdgeProfile.cpp - Branch edge profiles --------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/EdgeProfile.h"

#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

ExecObserver::~ExecObserver() = default;
void ExecObserver::onCondBranch(const BasicBlock &, bool, uint64_t) {}
void ExecObserver::onBlockEnter(const BasicBlock &) {}
bool ExecObserver::wantsInstructionEvents() const { return false; }
ExecAction ExecObserver::onInstruction(const ExecEvent &) {
  return ExecAction::Continue;
}

EdgeProfile::EdgeProfile(const Module &M) : M(M) {
  PerBlock.resize(M.numFunctions());
  BlockEntries.resize(M.numFunctions());
  for (size_t I = 0; I < M.numFunctions(); ++I) {
    size_t NumBlocks = M.getFunction(static_cast<uint32_t>(I))->numBlocks();
    PerBlock[I].resize(NumBlocks);
    BlockEntries[I].assign(NumBlocks, 0);
  }
}

void EdgeProfile::onCondBranch(const BasicBlock &BB, bool Taken,
                               uint64_t /*InstrCount*/) {
  Counts &C = PerBlock[BB.getParent()->getIndex()][BB.getId()];
  if (Taken)
    ++C.Taken;
  else
    ++C.Fallthru;
}

void EdgeProfile::onBlockEnter(const BasicBlock &BB) {
  ++BlockEntries[BB.getParent()->getIndex()][BB.getId()];
}

const EdgeProfile::Counts &EdgeProfile::get(const BasicBlock &BB) const {
  return PerBlock[BB.getParent()->getIndex()][BB.getId()];
}

uint64_t EdgeProfile::getBlockCount(const BasicBlock &BB) const {
  return BlockEntries[BB.getParent()->getIndex()][BB.getId()];
}

void EdgeProfile::merge(const EdgeProfile &Other) {
  assert(&M == &Other.M && "merging profiles of different modules");
  for (size_t F = 0; F < PerBlock.size(); ++F)
    for (size_t B = 0; B < PerBlock[F].size(); ++B) {
      PerBlock[F][B].Taken += Other.PerBlock[F][B].Taken;
      PerBlock[F][B].Fallthru += Other.PerBlock[F][B].Fallthru;
      BlockEntries[F][B] += Other.BlockEntries[F][B];
    }
}

uint64_t EdgeProfile::totalBranchExecutions() const {
  uint64_t Total = 0;
  for (const auto &FunctionCounts : PerBlock)
    for (const Counts &C : FunctionCounts)
      Total += C.total();
  return Total;
}
