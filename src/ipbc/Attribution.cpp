//===- ipbc/Attribution.cpp - Misprediction attribution and explain -------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipbc/Attribution.h"

#include "support/Json.h"
#include "support/TablePrinter.h"
#include "vm/Decode.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

using namespace bpfree;

namespace {

const char *SchemaName = "bpfree-explain-v1";

} // namespace

Expected<ExplainReport> bpfree::explainTrace(const PredictionContext &Ctx,
                                             const BranchTrace &Trace,
                                             const ExplainOptions &Opts) {
  const ir::Module &M = Trace.getModule();
  if (&Ctx.getModule() != &M)
    return Diag(ErrorKind::InvalidArgument,
                "explainTrace: the prediction context analyzes a "
                "different module than the trace captured");

  // Static half of the join: predict every branch once with a sink
  // attached. predictorDirections is the canonical whole-module walk,
  // so provenance capture reuses it — the direction array falls out for
  // free and feeds the replay below.
  BallLarusPredictor P(Ctx, Opts.Order, Opts.Config, Opts.Default,
                       Opts.DefaultSeed);
  ProvenanceMap Prov(M);
  P.setProvenanceSink(&Prov);
  const std::vector<uint8_t> Dirs = predictorDirections(M, P);
  P.setProvenanceSink(nullptr);

  // Dynamic half: one per-site counting pass over the event stream.
  Expected<std::vector<SiteCounts>> Counts = replaySiteCounts(Trace, Dirs);
  if (!Counts)
    return Counts.takeError();

  ExplainReport R;
  R.Workload = Opts.Workload;
  R.Dataset = Opts.Dataset;
  R.Predictor = P.name();
  R.Order = orderToString(Opts.Order);
  R.TotalInstrs = Trace.totalInstrs();
  for (unsigned B = 0; B < NumAttrBuckets; ++B)
    R.Buckets[B].Name = attrBucketName(B);

  for (uint32_t Idx = 0; Idx < Counts->size(); ++Idx) {
    const BranchProvenance *PR = Prov.get(Idx);
    const SiteCounts &C = (*Counts)[Idx];
    if (!PR) {
      // Only conditional branches appear in the trace, and provenance
      // covers every conditional branch of the module.
      assert(C.execs() == 0 && "trace event on an unpredicted block");
      continue;
    }
    BucketStats &B = R.Buckets[PR->Bucket];
    ++B.StaticSites;
    B.Execs += C.execs();
    B.Mispredicts += C.Mispredicts;
    R.BranchExecs += C.execs();
    R.Mispredicts += C.Mispredicts;
    if (C.Mispredicts > 0) {
      HotspotEntry H;
      H.FlatIndex = Idx;
      H.Function = PR->BB->getParent()->getName();
      H.Block = PR->BB->getName();
      H.SrcLine = PR->SrcLine;
      H.Bucket = attrBucketName(PR->Bucket);
      H.Priority = PR->Priority;
      H.Predicted = PR->Chosen;
      H.Taken = C.Taken;
      H.Fallthru = C.Fallthru;
      H.Mispredicts = C.Mispredicts;
      R.Hotspots.push_back(std::move(H));
    }
  }
  std::sort(R.Hotspots.begin(), R.Hotspots.end(),
            [](const HotspotEntry &A, const HotspotEntry &B) {
              if (A.Mispredicts != B.Mispredicts)
                return A.Mispredicts > B.Mispredicts;
              return A.FlatIndex < B.FlatIndex;
            });
  return R;
}

std::string bpfree::renderExplainReport(const ExplainReport &R,
                                        size_t TopN) {
  std::string Out;
  char Buf[256];
  Out += "explain: " + (R.Workload.empty() ? "<trace>" : R.Workload);
  if (!R.Dataset.empty())
    Out += " / " + R.Dataset;
  Out += "  predictor=" + R.Predictor;
  if (!R.Order.empty())
    Out += " (" + R.Order + ")";
  std::snprintf(Buf, sizeof(Buf),
                "\n  %llu instrs, %llu branch execs, %llu mispredicts "
                "(%.2f%% miss)\n\n",
                static_cast<unsigned long long>(R.TotalInstrs),
                static_cast<unsigned long long>(R.BranchExecs),
                static_cast<unsigned long long>(R.Mispredicts),
                R.BranchExecs == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(R.Mispredicts) /
                          static_cast<double>(R.BranchExecs));
  Out += Buf;

  TablePrinter T(
      {"Bucket", "Sites", "Execs", "Mispredicts", "Correct", "Share"});
  for (unsigned B = 0; B < NumAttrBuckets; ++B) {
    const BucketStats &S = R.Buckets[B];
    char Correct[32], Share[32];
    if (S.Execs == 0)
      std::snprintf(Correct, sizeof(Correct), "-");
    else
      std::snprintf(Correct, sizeof(Correct), "%.1f%%",
                    100.0 * S.correctRate());
    std::snprintf(Share, sizeof(Share), "%.1f%%",
                  100.0 * R.mispredictShare(B));
    T.addRow({S.Name, std::to_string(S.StaticSites),
              std::to_string(S.Execs), std::to_string(S.Mispredicts),
              Correct, Share});
  }
  std::ostringstream TableOS;
  T.print(TableOS);
  Out += TableOS.str();

  Out += "\ntop mispredicted branches:\n";
  if (R.Hotspots.empty())
    Out += "  (none — every executed branch was predicted correctly)\n";
  const size_t N = std::min(TopN, R.Hotspots.size());
  for (size_t I = 0; I < N; ++I) {
    const HotspotEntry &H = R.Hotspots[I];
    std::string Where = H.Function + ":" + H.Block;
    if (H.SrcLine > 0)
      Where += " (line " + std::to_string(H.SrcLine) + ")";
    std::snprintf(
        Buf, sizeof(Buf),
        "  #%zu  %-40s %8llu miss  [%s, predicted %s; taken %llu, "
        "fell thru %llu]\n",
        I + 1, Where.c_str(),
        static_cast<unsigned long long>(H.Mispredicts), H.Bucket.c_str(),
        H.Predicted == DirTaken ? "taken" : "fallthru",
        static_cast<unsigned long long>(H.Taken),
        static_cast<unsigned long long>(H.Fallthru));
    Out += Buf;
  }
  if (R.Hotspots.size() > N) {
    std::snprintf(Buf, sizeof(Buf),
                  "  ... and %zu more mispredicted sites\n",
                  R.Hotspots.size() - N);
    Out += Buf;
  }
  return Out;
}

bool bpfree::writeExplainJson(const ExplainReport &R,
                              const std::string &Path, size_t TopN) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"%s\",\n", SchemaName);
  std::fprintf(Out, "  \"workload\": \"%s\",\n",
               json::escape(R.Workload).c_str());
  std::fprintf(Out, "  \"dataset\": \"%s\",\n",
               json::escape(R.Dataset).c_str());
  std::fprintf(Out, "  \"predictor\": \"%s\",\n",
               json::escape(R.Predictor).c_str());
  std::fprintf(Out, "  \"order\": \"%s\",\n", json::escape(R.Order).c_str());
  std::fprintf(Out, "  \"total_instrs\": %llu,\n",
               static_cast<unsigned long long>(R.TotalInstrs));
  std::fprintf(Out, "  \"branch_execs\": %llu,\n",
               static_cast<unsigned long long>(R.BranchExecs));
  std::fprintf(Out, "  \"mispredicts\": %llu,\n",
               static_cast<unsigned long long>(R.Mispredicts));
  std::fprintf(Out, "  \"buckets\": [\n");
  for (unsigned B = 0; B < NumAttrBuckets; ++B) {
    const BucketStats &S = R.Buckets[B];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"static_sites\": %llu, "
                 "\"execs\": %llu, \"mispredicts\": %llu}%s\n",
                 json::escape(S.Name).c_str(),
                 static_cast<unsigned long long>(S.StaticSites),
                 static_cast<unsigned long long>(S.Execs),
                 static_cast<unsigned long long>(S.Mispredicts),
                 B + 1 == NumAttrBuckets ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  const size_t N =
      TopN == 0 ? R.Hotspots.size() : std::min(TopN, R.Hotspots.size());
  std::fprintf(Out, "  \"hotspots\": [\n");
  for (size_t I = 0; I < N; ++I) {
    const HotspotEntry &H = R.Hotspots[I];
    std::fprintf(
        Out,
        "    {\"flat_index\": %u, \"function\": \"%s\", "
        "\"block\": \"%s\", \"line\": %d, \"bucket\": \"%s\", "
        "\"priority\": %d, "
        "\"predicted\": \"%s\", \"taken\": %llu, \"fallthru\": %llu, "
        "\"mispredicts\": %llu}%s\n",
        H.FlatIndex, json::escape(H.Function).c_str(),
        json::escape(H.Block).c_str(), H.SrcLine,
        json::escape(H.Bucket).c_str(), H.Priority,
        H.Predicted == DirTaken ? "taken" : "fallthru",
        static_cast<unsigned long long>(H.Taken),
        static_cast<unsigned long long>(H.Fallthru),
        static_cast<unsigned long long>(H.Mispredicts),
        I + 1 == N ? "" : ",");
  }
  std::fprintf(Out, "  ]\n");
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  return true;
}

namespace {

/// Validation helper: \p V must hold member \p Key as a non-negative
/// number; writes it through \p Dst and reports the first violation.
bool takeCount(const json::Value &V, const char *Key, uint64_t &Dst,
               std::string &Err) {
  const json::Value *F = V.find(Key);
  if (!F || F->K != json::Value::Number) {
    Err = std::string("missing numeric field '") + Key + "'";
    return false;
  }
  if (F->Num < 0) {
    Err = std::string("negative count in field '") + Key + "'";
    return false;
  }
  Dst = json::asU64(F->Num);
  return true;
}

} // namespace

Expected<ExplainReport> bpfree::readExplainJson(const std::string &Path) {
  Expected<json::Value> Parsed = json::parseFile(Path);
  if (!Parsed)
    return Parsed.takeError();
  const json::Value &Root = *Parsed;
  auto invalid = [&](const std::string &Why) {
    return Diag(ErrorKind::InvalidArgument,
                "'" + Path + "': " + Why);
  };
  if (Root.K != json::Value::Object)
    return invalid("document is not a JSON object");
  if (Root.str("schema") != SchemaName)
    return invalid(std::string("not a ") + SchemaName + " document");
  for (const char *Key : {"workload", "dataset", "predictor", "order"})
    if (!Root.has(Key))
      return invalid(std::string("missing field '") + Key + "'");

  ExplainReport R;
  R.Workload = Root.str("workload");
  R.Dataset = Root.str("dataset");
  R.Predictor = Root.str("predictor");
  R.Order = Root.str("order");
  std::string Err;
  if (!takeCount(Root, "total_instrs", R.TotalInstrs, Err) ||
      !takeCount(Root, "branch_execs", R.BranchExecs, Err) ||
      !takeCount(Root, "mispredicts", R.Mispredicts, Err))
    return invalid(Err);

  const json::Value *Bs = Root.find("buckets");
  if (!Bs || Bs->K != json::Value::Array)
    return invalid("missing 'buckets' array");
  if (Bs->Arr.size() != NumAttrBuckets)
    return invalid("expected " + std::to_string(NumAttrBuckets) +
                   " buckets, found " + std::to_string(Bs->Arr.size()));
  uint64_t MispredictSum = 0;
  for (unsigned B = 0; B < NumAttrBuckets; ++B) {
    const json::Value &V = Bs->Arr[B];
    BucketStats &S = R.Buckets[B];
    S.Name = V.str("name");
    if (S.Name != attrBucketName(B))
      return invalid("bucket " + std::to_string(B) + " is named '" +
                     S.Name + "', expected '" + attrBucketName(B) + "'");
    if (!takeCount(V, "static_sites", S.StaticSites, Err) ||
        !takeCount(V, "execs", S.Execs, Err) ||
        !takeCount(V, "mispredicts", S.Mispredicts, Err))
      return invalid("bucket '" + S.Name + "': " + Err);
    if (S.Mispredicts > S.Execs)
      return invalid("bucket '" + S.Name +
                     "' has more mispredicts than executions");
    MispredictSum += S.Mispredicts;
  }
  if (MispredictSum != R.Mispredicts)
    return invalid(
        "conservation violated: bucket mispredicts sum to " +
        std::to_string(MispredictSum) + " but the report total is " +
        std::to_string(R.Mispredicts));

  const json::Value *Hs = Root.find("hotspots");
  if (!Hs || Hs->K != json::Value::Array)
    return invalid("missing 'hotspots' array");
  for (const json::Value &V : Hs->Arr) {
    HotspotEntry H;
    uint64_t Flat = 0;
    if (!takeCount(V, "flat_index", Flat, Err) ||
        !takeCount(V, "taken", H.Taken, Err) ||
        !takeCount(V, "fallthru", H.Fallthru, Err) ||
        !takeCount(V, "mispredicts", H.Mispredicts, Err))
      return invalid("hotspot: " + Err);
    H.FlatIndex = static_cast<uint32_t>(Flat);
    H.Function = V.str("function");
    H.Block = V.str("block");
    H.SrcLine = static_cast<int>(V.num("line"));
    H.Bucket = V.str("bucket");
    H.Priority = static_cast<int>(V.num("priority", -1.0));
    H.Predicted = V.str("predicted") == "fallthru" ? DirFallthru : DirTaken;
    if (H.Mispredicts > H.Taken + H.Fallthru)
      return invalid("hotspot " + std::to_string(H.FlatIndex) +
                     " has more mispredicts than executions");
    // The (Bucket, Priority) pair must be a state the predictors can
    // actually produce: a known bucket name; a priority that is either
    // -1 (loop predictor, default policy, single-heuristic predictors)
    // or a cascade position; and never a cascade position on the
    // non-cascade buckets.
    unsigned BucketIdx = NumAttrBuckets;
    for (unsigned B = 0; B < NumAttrBuckets; ++B)
      if (H.Bucket == attrBucketName(B)) {
        BucketIdx = B;
        break;
      }
    if (BucketIdx == NumAttrBuckets)
      return invalid("hotspot " + std::to_string(H.FlatIndex) +
                     " names unknown bucket '" + H.Bucket + "'");
    if (H.Priority < -1 ||
        H.Priority >= static_cast<int>(NumHeuristics))
      return invalid("hotspot " + std::to_string(H.FlatIndex) +
                     " has priority " + std::to_string(H.Priority) +
                     " outside [-1, " + std::to_string(NumHeuristics) +
                     ")");
    if (BucketIdx >= NumHeuristics && H.Priority != -1)
      return invalid("hotspot " + std::to_string(H.FlatIndex) +
                     " pairs non-heuristic bucket '" + H.Bucket +
                     "' with cascade priority " +
                     std::to_string(H.Priority) +
                     "; loop/default decisions must carry priority -1");
    R.Hotspots.push_back(std::move(H));
  }
  return R;
}
