//===- ipbc/Characterize.h - Per-branch predictability observatory -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third replay mode: characterizing how *predictable* each branch
/// site is, independent of any particular predictor. The paper's tables
/// measure predictors; the modern literature ("Branch Prediction Is Not
/// a Solved Problem", Lin & Tarsa; "Workload Characterization for Branch
/// Predictability", Vikas, Gratz & Jiménez) measures branches — the
/// hard-to-predict (H2P) tail is where every predictor's misses
/// concentrate, and a per-branch information-theoretic profile tells us
/// whether a miss is a heuristic's fault or the branch's.
///
/// One pass over a captured trace (resident or on-disk store, sharded by
/// chunk across the ThreadPool with a deterministic shard-order merge,
/// bit-identical at every Jobs value like the other two replay modes)
/// computes per site:
///
///  * execution count, taken rate, and marginal direction entropy;
///  * transition rate and a run-length summary (max/mean run) — the
///    burstiness axis that separates phase-changing branches from
///    coin-flip branches at equal entropy;
///  * history-conditioned entropy at depths {1, 4, 8} — a 3-point
///    approximation of the per-branch predictability curves of Lin &
///    Tarsa: the residual entropy given the branch's own last d
///    outcomes, i.e. how much a 2^d-context local predictor could still
///    miss. Depth d only participates when the site executed enough to
///    give each context a few samples (small-sample empirical entropy
///    is biased toward zero and would misclassify rare random branches
///    as easy);
///  * an H2P class — hard / moderate / easy — from the minimum residual
///    entropy over the marginal and the admitted depths, under
///    configurable thresholds (CharThresholds).
///
/// The per-site classes are then joined against the provenance map
/// (which rule predicted the branch) and against every predictor's
/// per-site misses — the combined Ball-Larus predictor and the perfect
/// static predictor via replaySiteCounts, the dynamic zoo via
/// replayTraceDynamicSites — producing a dynamic Table-2 analogue over
/// predictability classes: each predictor's misses charged to a branch
/// class, not just a site. Conservation is structural and enforced by
/// the validator: per-class site and exec totals sum to the trace
/// totals, and every predictor row's per-class execs partition the
/// trace's branch executions.
///
/// Reports round-trip through a validated bpfree-char-v1 JSON document
/// (writeCharJson / readCharJson — tools/bpfree_char.cpp and
/// scripts/ci.sh's schema gate), and passes are billed under the
/// replay.char.* metrics. docs/characterize.md walks the statistics and
/// the class semantics.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IPBC_CHARACTERIZE_H
#define BPFREE_IPBC_CHARACTERIZE_H

#include "ipbc/TraceReplay.h"
#include "predict/Predictors.h"
#include "support/Error.h"
#include "vm/BranchTrace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {

class TraceStoreReader;

/// History depths of the conditional-entropy curve. Fixed — they are
/// part of the bpfree-char-v1 schema (the cond_entropy array) and of
/// the classification rule, so two reports are always comparable.
inline constexpr unsigned CharDepths[] = {1, 4, 8};
inline constexpr unsigned NumCharDepths = 3;

/// Minimum average samples per history context for a conditional-
/// entropy depth to participate in classification: depth d is admitted
/// for a site iff it executed at least d + (this << d) times. Empirical
/// entropy over starved contexts is biased toward zero — without the
/// floor, a 100-exec coin-flip branch would look perfectly predictable
/// at depth 8 (256 contexts, zero or one sample each).
inline constexpr uint64_t CharMinContextSamples = 4;

/// The predictability classes, in ascending hardness. Array positions
/// in reports and JSON documents follow this order.
enum class BranchClass : uint8_t { Easy = 0, Moderate = 1, Hard = 2 };
inline constexpr unsigned NumBranchClasses = 3;

/// Stable class name ("easy" / "moderate" / "hard") — keys the
/// bpfree-char-v1 document and must not change.
const char *branchClassName(BranchClass C);

/// The classification knobs. Defaults follow the H2P literature's
/// shape: a branch is hard when no small amount of its own history
/// explains its outcomes (residual entropy stays above HardBits), and a
/// workload is H2P when the hard class carries a MAJORITY of its branch
/// executions — share-based and strict, because search/sort workloads
/// legitimately spend a third of their branches on data-dependent
/// comparisons (treesort's BST descent, qsortbench's pivot compares)
/// without being adversarial: on the reference suite the hard-class
/// share tops out near 46% (lisp), while the adversarial workloads put
/// 80%+ of their executions on hard sites.
struct CharThresholds {
  uint64_t MinExecs = 64;    ///< below this a site is Easy by fiat
  double HardBits = 0.60;    ///< residual entropy >= this: Hard
  double ModerateBits = 0.15; ///< residual entropy >= this: Moderate
  double HardShare = 0.50;   ///< hard-class exec share for the H2P verdict
};

/// The residual (minimum) entropy classification uses: the smallest of
/// the marginal entropy and the conditional entropies whose depth is
/// admitted for \p Execs (see CharMinContextSamples). Exposed because
/// the JSON validator recomputes it to detect tampered documents.
double charPredictBits(uint64_t Execs, double Entropy,
                       const double (&CondEntropy)[NumCharDepths]);

/// The class of a site with \p Execs executions and residual entropy
/// \p PredictBits under \p T. Pure — the validator recomputes it.
BranchClass classifyBranch(uint64_t Execs, double PredictBits,
                           const CharThresholds &T);

/// One branch site's predictability profile, joined with its static
/// provenance.
struct SiteCharacter {
  uint32_t FlatIndex = 0;
  uint64_t Execs = 0;
  uint64_t Taken = 0;
  uint64_t Transitions = 0; ///< direction flips between consecutive execs
  uint64_t MaxRun = 0;      ///< longest same-direction run
  double Entropy = 0.0;     ///< marginal H(taken rate), bits
  double CondEntropy[NumCharDepths] = {0.0, 0.0, 0.0};
  double PredictBits = 0.0; ///< charPredictBits of the fields above
  BranchClass Class = BranchClass::Easy;
  // Provenance join (predict/Provenance.h).
  std::string Function;
  std::string Block;
  int SrcLine = 0;     ///< 0 when the IR carries no source lines
  std::string Bucket;  ///< deciding attribution bucket's name

  double takenRate() const {
    return Execs == 0 ? 0.0
                      : static_cast<double>(Taken) /
                            static_cast<double>(Execs);
  }
  double transitionRate() const {
    return Execs < 2 ? 0.0
                     : static_cast<double>(Transitions) /
                           static_cast<double>(Execs - 1);
  }
  /// Mean same-direction run length (Execs when the site never flips).
  double meanRun() const {
    return Execs == 0 ? 0.0
                      : static_cast<double>(Execs) /
                            static_cast<double>(Transitions + 1);
  }
};

/// One predictor's tally against one class.
struct ClassSlice {
  uint64_t Sites = 0;
  uint64_t Execs = 0;
  uint64_t Mispredicts = 0;
};

/// One row of the class-resolved predictor table: a predictor's misses
/// charged to the three classes. Execs over the classes partition the
/// trace's branch executions (conservation), so every predictor's rows
/// are comparable.
struct ClassPredictorRow {
  std::string Name;        ///< predictor display name
  std::string Kind;        ///< "static", "perfect", or "dynamic"
  ClassSlice Classes[NumBranchClasses];
  uint64_t Mispredicts = 0; ///< == sum of Classes[*].Mispredicts

  double missRate(unsigned C) const {
    return Classes[C].Execs == 0
               ? 0.0
               : static_cast<double>(Classes[C].Mispredicts) /
                     static_cast<double>(Classes[C].Execs);
  }
};

/// The characterization result for one (workload, trace).
struct CharReport {
  std::string Workload; ///< "" when not produced through the driver
  std::string Dataset;
  uint64_t TotalInstrs = 0;
  uint64_t BranchExecs = 0; ///< trace event total
  uint64_t NumSites = 0;    ///< sites with at least one execution
  uint64_t Shards = 0;      ///< shards of the deterministic merge
  CharThresholds Thresholds;
  uint64_t ClassSites[NumBranchClasses] = {0, 0, 0};
  uint64_t ClassExecs[NumBranchClasses] = {0, 0, 0};
  /// Every executed site, sorted by Execs descending, flat index
  /// ascending on ties; renderers and writers truncate to their top-N.
  std::vector<SiteCharacter> Sites;
  /// Combined Ball-Larus, perfect, then the standard dynamic panel.
  std::vector<ClassPredictorRow> Predictors;

  /// Hard-class share of all branch executions (0 when none).
  double hardShare() const {
    return BranchExecs == 0
               ? 0.0
               : static_cast<double>(
                     ClassExecs[static_cast<unsigned>(BranchClass::Hard)]) /
                     static_cast<double>(BranchExecs);
  }
  /// The workload-level H2P verdict.
  bool h2p() const { return hardShare() >= Thresholds.HardShare; }
};

/// Options for characterizeTrace / characterizeStore.
struct CharOptions {
  CharThresholds Thresholds;
  /// Parallelism of the sharded pass and the joins; 0 = hardware
  /// concurrency. Results are bit-identical for every value.
  unsigned Jobs = 0;
  /// Workload/dataset labels copied into the report (informational).
  std::string Workload;
  std::string Dataset;
};

/// Runs the full characterization pass for \p Trace: the sharded
/// statistics pass, the provenance join, and the predictor-by-class
/// join (combined Ball-Larus under the default configuration, perfect,
/// and the standard dynamic panel). \p Ctx must analyze the trace's
/// module. Rejects unsound traces like every replay entry point;
/// rejections are counted under "replay.rejected".
Expected<CharReport> characterizeTrace(const PredictionContext &Ctx,
                                       const BranchTrace &Trace,
                                       const CharOptions &Opts = {});

/// characterizeTrace for an on-disk store (verified against \p Ctx's
/// module hash). Reports are bit-identical to characterizeTrace on the
/// resident trace the store was written from.
Expected<CharReport> characterizeStore(const PredictionContext &Ctx,
                                       const TraceStoreReader &Store,
                                       const CharOptions &Opts = {});

/// Renders the human-readable report: the class summary, the
/// predictor-by-class table, and the top \p TopN hardest sites.
std::string renderCharReport(const CharReport &R, size_t TopN = 10);

/// Writes \p R as a bpfree-char-v1 JSON document (sites truncated to
/// \p TopN, 0 = all; class and predictor tables are never truncated, so
/// conservation is checkable regardless). \returns false when the file
/// cannot be opened.
bool writeCharJson(const CharReport &R, const std::string &Path,
                   size_t TopN = 0);

/// Reads and validates a bpfree-char-v1 document: schema tag, required
/// keys, class-count conservation (per-class site and exec totals sum
/// to the trace totals; every predictor row's class execs partition the
/// branch executions), and per-site consistency (classes and residual
/// entropies recomputed from the stored statistics must match). The
/// schema gate scripts/ci.sh runs on its build artifact.
Expected<CharReport> readCharJson(const std::string &Path);

} // namespace bpfree

#endif // BPFREE_IPBC_CHARACTERIZE_H
