//===- ipbc/TraceReplay.h - Trace-driven predictor evaluation ---*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay half of capture-once/replay-many: evaluate any number of
/// static predictors against one captured BranchTrace. Static
/// predictions never change during execution, so a predictor is fully
/// described by a flat per-block direction array (the same dense flat
/// block index EdgeProfile and the decoder use); replaying is then a
/// tight loop over the packed event stream — compare direction, close a
/// sequence on mismatch — with no interpretation, no virtual dispatch,
/// and no IR access. Predictors fan out across the thread pool, so the
/// marginal cost of one more predictor is one more replay pass (tens of
/// nanoseconds per million branches of module), not another multi-second
/// interpretation run.
///
/// Replayed histograms are bit-identical to the online SequenceCollector
/// for the same predictor and execution; tests/TraceReplayTest.cpp
/// enforces this differentially across the whole workload suite.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IPBC_TRACEREPLAY_H
#define BPFREE_IPBC_TRACEREPLAY_H

#include "ipbc/SequenceAnalysis.h"
#include "support/Error.h"
#include "vm/BranchTrace.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace bpfree {

class TraceStoreReader;

/// Largest predictor panel one replay call accepts, across every fused
/// entry point (replayTraceFused, replayTraceAll, replayStoreAll). The
/// widened bit-row kernel condenses the panel into rows of up to four
/// 64-bit words (256 lanes); larger panels are rejected up front with a
/// structured InvalidArgument Diag — counted under "replay.rejected" —
/// rather than degrading to a slow fallback, so callers split oversized
/// panels explicitly. The check is on the TOTAL panel size, before the
/// parallel group split, so acceptance never depends on Jobs.
inline constexpr size_t MaxReplayPredictors = 256;

/// Process-wide replay-kernel selection knob, for differential tests and
/// the benchmark's baseline legs. Wide (the default) is the widened
/// bit-row kernel: predictions condensed into rows of 1/2/4 64-bit words
/// sized to the panel, premasked per-outcome misprediction tables, and a
/// SIMD row test (support/Simd.h). Narrow32 forces the legacy kernel —
/// uint32_t bit-rows for panels of at most 32 predictors, an interleaved
/// byte matrix beyond — whose histograms the wide kernel must reproduce
/// bit-identically.
enum class ReplayKernel { Wide, Narrow32 };
void setReplayKernel(ReplayKernel K);
ReplayKernel replayKernel();

/// The simd::Path id the replay kernel's row test actually dispatches to
/// in THIS build of the ipbc library. Out-of-line on purpose: the SIMD
/// capability macros (BPFREE_SIMD / BPFREE_SIMD_TARGET_ATTR) are private
/// compile definitions of the library, so simd::pathId() inlined into
/// another translation unit reports that TU's baseline, not the
/// kernel's. Reporting code (bench manifests, tools) must use this.
int replaySimdPath();

/// Resolves \p P once per static branch into a flat array keyed by the
/// module-wide dense block index: entry flatIndex(BB) holds the
/// predicted Direction for every conditional-branch block, 0xFF
/// elsewhere.
std::vector<uint8_t> predictorDirections(const ir::Module &M,
                                         const StaticPredictor &P);

/// Checks that \p Trace is replayable: finalized (so the trailing
/// sequence has a defined end) and not overflowed (so the stored stream
/// is the complete execution, not a truncated prefix). \returns the
/// structured rejection, or nullopt when the trace is sound.
///
/// Every replay entry point below runs this check at runtime — not via
/// assert — because a truncated trace walked by the fused replay loop is
/// undefined behavior in release builds, and capture overflow is a
/// legitimate runtime condition (the byte cap exists precisely to be
/// hit), not a programming error. Rejections are also counted under the
/// "replay.rejected" metric so run manifests surface them.
std::optional<Diag> validateTraceForReplay(const BranchTrace &Trace);

/// The perfect static predictor's directions derived from the trace
/// itself: one decode pass accumulates per-branch taken/fall-thru
/// counts, then the majority rule (ties predict taken, like
/// PerfectPredictor over an EdgeProfile of the same execution) fixes
/// each branch's direction. The trace records every executed
/// conditional branch, so this is bit-identical to
/// predictorDirections(M, PerfectPredictor(Profile)) for the profile of
/// the captured run — which means IPBC replay needs no edge profile at
/// all: one unprofiled capture interpretation carries the whole
/// pipeline. An unfinalized or overflowed trace yields a Diag.
Expected<std::vector<uint8_t>>
perfectDirectionsFromTrace(const BranchTrace &Trace);

/// Replays \p Trace against one direction array. An unfinalized or
/// overflowed trace, or a direction array sized for a different module,
/// yields a Diag.
Expected<SequenceHistogram> replayTrace(const BranchTrace &Trace,
                                        const std::vector<uint8_t> &Dirs);

/// Replays \p Trace against several direction arrays in ONE decode pass:
/// directions are interleaved into a [block][predictor] matrix so each
/// event costs one decode plus P byte compares instead of P full passes.
/// Histograms are bit-identical to per-predictor replayTrace calls.
/// Rejects unsound traces and mis-sized direction arrays like
/// replayTrace.
Expected<std::vector<SequenceHistogram>>
replayTraceFused(const BranchTrace &Trace,
                 const std::vector<const std::vector<uint8_t> *> &Dirs);

/// Replays \p Trace against every predictor. A single worker (Jobs <= 1,
/// or 0 on a single-core host) runs one fused pass over the stream; with
/// more workers the predictors are split into contiguous groups, one
/// fused pass per group, fanned out across the thread pool. Histograms
/// are returned in predictor order and are identical for every Jobs
/// value (0 picks the hardware concurrency). The trace is validated
/// once, before any fan-out.
Expected<std::vector<SequenceHistogram>>
replayTraceAll(const BranchTrace &Trace,
               const std::vector<const StaticPredictor *> &Predictors,
               unsigned Jobs = 0);

/// Per-branch-site dynamic counts from one replay pass: how often the
/// site went each way, and how often the given predictor missed it.
struct SiteCounts {
  uint64_t Taken = 0;
  uint64_t Fallthru = 0;
  uint64_t Mispredicts = 0;

  uint64_t execs() const { return Taken + Fallthru; }
};

/// Replays \p Trace against one direction array, counting outcomes per
/// flat block index instead of sequencing them — the join key the
/// attribution layer (ipbc/Attribution.h) charges mispredictions with.
/// The result has one entry per flat block; sum of Mispredicts over all
/// sites equals replayTrace's histogram Breaks for the same inputs, and
/// sum of execs() equals its BranchExecs. A separate, deliberately
/// simple decode pass: the fused bit-row fast path stays untouched, and
/// per-site counting is only paid when a caller asks to explain a
/// trace. Rejects unsound traces and mis-sized arrays like replayTrace.
Expected<std::vector<SiteCounts>>
replaySiteCounts(const BranchTrace &Trace, const std::vector<uint8_t> &Dirs);

/// replayTraceAll over pre-resolved direction arrays (one per
/// predictor, in result order). This is the entry point when a
/// direction array does not come from a StaticPredictor instance —
/// e.g. perfectDirectionsFromTrace on an unprofiled capture run.
Expected<std::vector<SequenceHistogram>>
replayTraceAll(const BranchTrace &Trace,
               std::vector<std::vector<uint8_t>> Dirs, unsigned Jobs = 0);

//===----------------------------------------------------------------------===//
// Streaming replay from an on-disk trace store (vm/TraceStore.h)
//===----------------------------------------------------------------------===//
//
// The same kernels as the resident entry points, fed one verified chunk
// at a time from a TraceStream instead of from resident memory — the
// trace never needs to fit in RAM, and the histograms are bit-identical
// to resident replay of the same capture (the file holds the same words
// the chunks did). Each parallel replay group opens its own stream
// cursor, so disk replay fans out exactly like resident replay.

/// Checks that \p Store is replayable: complete (valid footer, no
/// recovered damage) and finalized. A recovered prefix is refused — it
/// has no defined trailing sequence, and silently replaying it would
/// launder damaged data into results. Counted under "replay.rejected"
/// like the resident validation.
std::optional<Diag> validateStoreForReplay(const TraceStoreReader &Store);

/// perfectDirectionsFromTrace for a store: one streaming decode pass
/// accumulates per-branch outcome counts, then \p M (verified against
/// the store's module hash) supplies the branch set for the majority
/// rule. Bit-identical to the resident derivation for the same capture.
Expected<std::vector<uint8_t>>
perfectDirectionsFromStore(const TraceStoreReader &Store, const ir::Module &M);

/// Replays \p Store against one direction array.
Expected<SequenceHistogram> replayStore(const TraceStoreReader &Store,
                                        const std::vector<uint8_t> &Dirs);

/// replayTraceAll for a store: fused groups fan out across the pool,
/// each group streaming the file through its own cursor. Histograms are
/// in predictor order, identical for every Jobs value, and bit-identical
/// to replayTraceAll on the resident trace the store was written from.
Expected<std::vector<SequenceHistogram>>
replayStoreAll(const TraceStoreReader &Store,
               std::vector<std::vector<uint8_t>> Dirs, unsigned Jobs = 0);

/// replaySiteCounts for a store: per-site outcome and misprediction
/// counts from one streaming pass.
Expected<std::vector<SiteCounts>>
replayStoreSiteCounts(const TraceStoreReader &Store,
                      const std::vector<uint8_t> &Dirs);

} // namespace bpfree

#endif // BPFREE_IPBC_TRACEREPLAY_H
