//===- ipbc/EventStreamIndex.h - Shared per-site event index ----*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-site event-stream index shared by the sharded replay passes
/// (ipbc/DynamicReplay.cpp, ipbc/Characterize.cpp). Both passes need the
/// same artifact from a captured trace: per-site outcome bitstreams in
/// first-occurrence order, plus one snapshot per trace shard — the chunk
/// index where the shard starts, how many words of that chunk belong to
/// the previous shard's straddling escape record, the instruction count,
/// and every site's occurrence count at that point. A shard owns the
/// events whose packed HEAD word lies in its chunk range.
///
/// The shard layout depends only on the trace (chunk count and the
/// caller's fixed shard ceiling), never on Jobs or on whether the source
/// is resident or a disk store — that invariance is what makes both
/// consumers' deterministic shard-order merges bit-identical across Jobs
/// values and sources. Internal header: lives next to its two consumers,
/// not in the public API.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IPBC_EVENTSTREAMINDEX_H
#define BPFREE_IPBC_EVENTSTREAMINDEX_H

#include "support/Error.h"
#include "vm/BranchTrace.h"
#include "vm/TraceStore.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace bpfree {
namespace evstream {

/// One branch site's outcome stream, bit-packed in occurrence order
/// (bit k = the site's k-th execution was taken).
struct SiteStream {
  std::vector<uint64_t> Bits;
  uint64_t Count = 0;

  /// The site's k-th outcome.
  bool taken(uint64_t K) const { return (Bits[K >> 6] >> (K & 63)) & 1; }
};

/// Where one trace shard starts. A shard owns the events whose packed
/// HEAD word lies in chunks [ChunkBegin, next shard's ChunkBegin); the
/// first SkipWords words of chunk ChunkBegin are the tail of an escape
/// record headed in the previous shard and belong to it.
struct ShardStart {
  size_t ChunkBegin = 0;
  uint32_t SkipWords = 0;
  uint64_t StartInstr = 0;        ///< IC after the previous shard's events
  std::vector<uint64_t> SiteOcc;  ///< per-site occurrence count at entry
};

/// The once-decoded per-site event-stream index of one trace.
struct EventIndex {
  uint32_t NumSites = 0;
  uint64_t NumEvents = 0;
  uint64_t TotalInstrs = 0;
  size_t NumChunks = 0;
  std::vector<SiteStream> Sites;
  std::vector<ShardStart> Shards;
};

/// Deterministic shard layout: boundaries depend only on the chunk
/// count and the caller's fixed shard ceiling, never on Jobs or the
/// source kind.
inline std::vector<size_t> shardChunkStarts(size_t NumChunks,
                                            size_t MaxShards) {
  const size_t S = NumChunks == 0 ? 0 : std::min(MaxShards, NumChunks);
  std::vector<size_t> Starts(S);
  for (size_t I = 0; I < S; ++I)
    Starts[I] = I * NumChunks / S;
  return Starts;
}

/// The build pass's inline stream decoder. TraceDecoder carries escape
/// records across feeds internally, but the build pass must OBSERVE the
/// carry — a shard snapshot at a chunk boundary needs to know how many
/// words of the new chunk complete the previous chunk's record — so it
/// mirrors TraceDecoder::feed with the pending state held here.
class IndexBuilder {
public:
  IndexBuilder(EventIndex &Ix, const std::vector<size_t> &ShardStarts)
      : Ix(Ix), Starts(ShardStarts) {}

  void feedChunk(const uint32_t *W, uint64_t N) {
    uint64_t I = 0;
    if (PendingWords != 0) {
      while (PendingWords < TraceDecoder::EscapeWords && I < N)
        Pending[PendingWords++] = W[I++];
      if (PendingWords < TraceDecoder::EscapeWords) {
        ++Chunk;
        return; // torn mid-record; validation rejects such traces
      }
      event(Pending[1], (Pending[0] & 1) != 0,
            (static_cast<uint64_t>(Pending[3]) << 32) | Pending[2]);
      PendingWords = 0;
    }
    // Snapshot AFTER completing a carried record: its head word is in
    // the previous chunk, so the event belongs to the previous shard and
    // the new shard starts I words in.
    if (NextShard < Starts.size() && Starts[NextShard] == Chunk)
      snapshot(I);
    while (I < N) {
      const uint32_t Head = W[I];
      const bool Taken = (Head & 1) != 0;
      const uint32_t DeltaField = Head >> (TraceDecoder::IdxBits + 1);
      if (DeltaField != TraceDecoder::EscapeDelta) [[likely]] {
        event((Head >> 1) & TraceDecoder::MaxCompactIdx, Taken,
              static_cast<uint64_t>(DeltaField));
        ++I;
        continue;
      }
      if (I + TraceDecoder::EscapeWords <= N) {
        event(W[I + 1], Taken,
              (static_cast<uint64_t>(W[I + 3]) << 32) | W[I + 2]);
        I += TraceDecoder::EscapeWords;
        continue;
      }
      while (I < N)
        Pending[PendingWords++] = W[I++];
    }
    ++Chunk;
  }

  /// Fixes NumSites/NumEvents and pads every snapshot's occurrence
  /// vector to the final site count (sites first seen after a snapshot
  /// had occurrence 0 there).
  void finish() {
    Ix.NumSites = static_cast<uint32_t>(Ix.Sites.size());
    Ix.NumEvents = Events;
    for (ShardStart &Sh : Ix.Shards)
      Sh.SiteOcc.resize(Ix.NumSites, 0);
  }

private:
  void event(uint32_t Idx, bool Taken, uint64_t Delta) {
    IC += Delta;
    ++Events;
    if (Idx >= Ix.Sites.size())
      Ix.Sites.resize(Idx + 1);
    SiteStream &S = Ix.Sites[Idx];
    if ((S.Count & 63) == 0)
      S.Bits.push_back(0);
    S.Bits.back() |= static_cast<uint64_t>(Taken) << (S.Count & 63);
    ++S.Count;
  }

  void snapshot(uint64_t SkipWords) {
    ShardStart Sh;
    Sh.ChunkBegin = Chunk;
    Sh.SkipWords = static_cast<uint32_t>(SkipWords);
    Sh.StartInstr = IC;
    Sh.SiteOcc.resize(Ix.Sites.size());
    for (size_t S = 0; S < Ix.Sites.size(); ++S)
      Sh.SiteOcc[S] = Ix.Sites[S].Count;
    Ix.Shards.push_back(std::move(Sh));
    ++NextShard;
  }

  EventIndex &Ix;
  const std::vector<size_t> &Starts;
  uint32_t Pending[TraceDecoder::EscapeWords];
  uint32_t PendingWords = 0;
  size_t Chunk = 0;
  size_t NextShard = 0;
  uint64_t IC = 0;
  uint64_t Events = 0;
};

//===----------------------------------------------------------------------===//
// Event sources
//===----------------------------------------------------------------------===//
//
// What the sharded passes need from a trace source, resident or on
// disk: metadata, a serial chunk walk (build pass), a shard-scoped word
// walk (shard pass; called concurrently, so the store flavor opens its
// own stream cursor per call), and a full decoded-event walk (for
// members that are inherently one sequential pass; also concurrent).

struct ResidentEventSource {
  const BranchTrace &T;

  uint64_t totalInstrs() const { return T.totalInstrs(); }
  size_t numChunks() const {
    assert(T.spilledChunks() == 0 &&
           "resident decode of a spilled trace; replay from its store");
    return static_cast<size_t>((T.storedWordCount() + BranchTrace::ChunkWords -
                                1) /
                               BranchTrace::ChunkWords);
  }
  uint64_t chunkLen(size_t C) const {
    return std::min<uint64_t>(BranchTrace::ChunkWords,
                              T.storedWordCount() -
                                  static_cast<uint64_t>(C) *
                                      BranchTrace::ChunkWords);
  }

  template <class Fn> std::optional<Diag> forEachChunkSerial(Fn &&F) const {
    const size_t N = numChunks();
    for (size_t C = 0; C < N; ++C)
      F(T.chunkWords(C), chunkLen(C));
    return std::nullopt;
  }

  /// Feeds the words of shard [Begin, End) — skipping \p Skip carried
  /// words of chunk Begin, appending \p Tail carried words of chunk End.
  template <class Fn>
  std::optional<Diag> walkShardWords(size_t Begin, size_t End, uint32_t Skip,
                                     uint32_t Tail, Fn &&OnWords) const {
    for (size_t C = Begin; C < End; ++C) {
      const uint32_t *W = T.chunkWords(C);
      const uint64_t N = chunkLen(C);
      if (C == Begin)
        OnWords(W + Skip, N - Skip);
      else
        OnWords(W, N);
    }
    if (Tail != 0)
      OnWords(T.chunkWords(End), Tail);
    return std::nullopt;
  }

  template <class Fn> std::optional<Diag> forEachEvent(Fn &&F) const {
    T.forEach(F);
    return std::nullopt;
  }
};

struct StoreEventSource {
  const TraceStoreReader &R;

  uint64_t totalInstrs() const { return R.totalInstrs(); }
  size_t numChunks() const { return static_cast<size_t>(R.numChunks()); }

  template <class Fn> std::optional<Diag> forEachChunkSerial(Fn &&F) const {
    TraceStream S;
    if (std::optional<Diag> D = R.openStream(S))
      return D;
    const uint32_t *W = nullptr;
    for (;;) {
      Expected<uint64_t> N = S.next(W);
      if (!N)
        return N.takeError();
      if (*N == 0)
        return std::nullopt;
      F(W, *N);
    }
  }

  template <class Fn>
  std::optional<Diag> walkShardWords(size_t Begin, size_t End, uint32_t Skip,
                                     uint32_t Tail, Fn &&OnWords) const {
    TraceStream S;
    if (std::optional<Diag> D = R.openStream(S))
      return D;
    const uint32_t *W = nullptr;
    for (size_t C = 0;; ++C) {
      Expected<uint64_t> N = S.next(W);
      if (!N)
        return N.takeError();
      if (*N == 0)
        return std::nullopt;
      if (C < Begin)
        continue;
      if (C < End) {
        if (C == Begin)
          OnWords(W + Skip, *N - Skip);
        else
          OnWords(W, *N);
        continue;
      }
      if (Tail != 0)
        OnWords(W, Tail);
      return std::nullopt;
    }
  }

  template <class Fn> std::optional<Diag> forEachEvent(Fn &&F) const {
    TraceDecoder D;
    return forEachChunkSerial(
        [&](const uint32_t *W, uint64_t N) { D.feed(W, N, F); });
  }
};

} // namespace evstream
} // namespace bpfree

#endif // BPFREE_IPBC_EVENTSTREAMINDEX_H
