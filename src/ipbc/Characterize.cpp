//===- ipbc/Characterize.cpp - Per-branch predictability observatory ------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Pipeline:
//
//   1. Build pass (sequential, one decode): the shared per-site
//      event-stream index (ipbc/EventStreamIndex.h) — per-site outcome
//      bitstreams plus chunk-aligned shard snapshots, the same artifact
//      the dynamic replay mode builds.
//
//   2. Shard pass (parallel over shards): re-decode each shard's events
//      in trace order and tally per-site executions, taken outcomes, and
//      transitions (each event's predecessor outcome is looked up in the
//      read-only bitstreams by (site, occurrence)). Per-shard integer
//      partials merge serially in shard order, then the merged tallies
//      are cross-checked against the build pass's streams — any
//      disagreement means the decoder or the shard layout broke, and the
//      pass refuses to report rather than ship wrong statistics.
//
//   3. Site pass (parallel over site groups): per-site doubles — run
//      lengths, marginal entropy, conditional entropy at the fixed
//      depths, the residual-entropy minimum — and the class assignment.
//      Every double is computed from one site's integers in one fixed
//      arithmetic order, so the parallel split cannot perturb a bit.
//
//   4. Join (serial): provenance capture (which rule predicted each
//      site), then the predictor-by-class table — the combined
//      Ball-Larus predictor and the perfect predictor via the per-site
//      static replay, the standard dynamic panel via the per-site
//      dynamic replay — with per-row conservation checks.
//
// Integer tallies merge in shard order and doubles are per-site, so
// reports are bit-identical across Jobs values and for resident vs.
// disk-backed sources — the same determinism contract as the other two
// replay modes, tested in tests/CharacterizeTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "ipbc/Characterize.h"

#include "ipbc/DynamicReplay.h"
#include "ipbc/EventStreamIndex.h"
#include "predict/Provenance.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/TimeTrace.h"
#include "vm/TraceStore.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace bpfree;
using namespace bpfree::evstream;

const char *bpfree::branchClassName(BranchClass C) {
  switch (C) {
  case BranchClass::Easy:
    return "easy";
  case BranchClass::Moderate:
    return "moderate";
  case BranchClass::Hard:
    return "hard";
  }
  return "easy";
}

double bpfree::charPredictBits(uint64_t Execs, double Entropy,
                               const double (&CondEntropy)[NumCharDepths]) {
  double Min = Entropy;
  for (unsigned I = 0; I < NumCharDepths; ++I) {
    const uint64_t D = CharDepths[I];
    if (Execs >= D + (CharMinContextSamples << D))
      Min = std::min(Min, CondEntropy[I]);
  }
  return Min;
}

BranchClass bpfree::classifyBranch(uint64_t Execs, double PredictBits,
                                   const CharThresholds &T) {
  if (Execs < T.MinExecs)
    return BranchClass::Easy;
  if (PredictBits >= T.HardBits)
    return BranchClass::Hard;
  if (PredictBits >= T.ModerateBits)
    return BranchClass::Moderate;
  return BranchClass::Easy;
}

namespace {

const char *SchemaName = "bpfree-char-v1";

/// Counts a rejected characterization request before returning the Diag
/// (same contract as the replay entry points: refusals surface under
/// "replay.rejected" in run manifests).
Diag rejectedChar(Diag D) {
  static metrics::Counter &Rejected = metrics::counter("replay.rejected");
  Rejected.add();
  return D;
}

/// Shannon entropy (bits) of a binary outcome with \p Taken of \p Total.
double entropyBits(uint64_t Taken, uint64_t Total) {
  if (Total == 0 || Taken == 0 || Taken == Total)
    return 0.0;
  const double P = static_cast<double>(Taken) / static_cast<double>(Total);
  const double Q = 1.0 - P;
  return -(P * std::log2(P) + Q * std::log2(Q));
}

/// Empirical conditional entropy H(outcome | last \p Depth outcomes) of
/// one site's stream, in bits. Events before the history fills (the
/// first \p Depth) carry no full context and are excluded, exactly like
/// the warm-up of a real history predictor.
double condEntropyBits(const SiteStream &S, unsigned Depth) {
  if (S.Count <= Depth)
    return 0.0;
  const size_t Ctxs = static_cast<size_t>(1) << Depth;
  const uint32_t Mask = static_cast<uint32_t>(Ctxs - 1);
  std::vector<uint64_t> Cnt(Ctxs * 2, 0);
  uint32_t Ctx = 0;
  for (uint64_t K = 0; K < S.Count; ++K) {
    const bool Taken = S.taken(K);
    if (K >= Depth)
      ++Cnt[Ctx * 2 + (Taken ? 1 : 0)];
    Ctx = ((Ctx << 1) | (Taken ? 1u : 0u)) & Mask;
  }
  const uint64_t N = S.Count - Depth;
  double H = 0.0;
  for (size_t C = 0; C < Ctxs; ++C) {
    const uint64_t Tk = Cnt[C * 2 + 1];
    const uint64_t Tot = Cnt[C * 2] + Tk;
    if (Tot == 0)
      continue;
    H += (static_cast<double>(Tot) / static_cast<double>(N)) *
         entropyBits(Tk, Tot);
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Join sources: the per-site predictor replays per trace flavor
//===----------------------------------------------------------------------===//

struct ResidentJoin {
  const BranchTrace &T;

  Expected<std::vector<uint8_t>> perfect() const {
    return perfectDirectionsFromTrace(T);
  }
  Expected<std::vector<SiteCounts>>
  counts(const std::vector<uint8_t> &Dirs) const {
    return replaySiteCounts(T, Dirs);
  }
  Expected<std::vector<std::vector<SiteCounts>>>
  dynSites(const std::vector<DynPredictorConfig> &Panel, unsigned Jobs) const {
    return replayTraceDynamicSites(T, Panel, Jobs);
  }
};

struct StoreJoin {
  const TraceStoreReader &R;
  const ir::Module &M;

  Expected<std::vector<uint8_t>> perfect() const {
    return perfectDirectionsFromStore(R, M);
  }
  Expected<std::vector<SiteCounts>>
  counts(const std::vector<uint8_t> &Dirs) const {
    return replayStoreSiteCounts(R, Dirs);
  }
  Expected<std::vector<std::vector<SiteCounts>>>
  dynSites(const std::vector<DynPredictorConfig> &Panel, unsigned Jobs) const {
    return replayStoreDynamicSites(R, Panel, Jobs);
  }
};

/// Charges one predictor's per-site counts to the report's classes.
/// \p BySite maps flat site index -> class (only executed sites are
/// meaningful). \returns the row, or an Internal Diag when the counts
/// do not partition the trace's branch executions.
Expected<ClassPredictorRow>
chargeRow(std::string Name, std::string Kind,
          const std::vector<SiteCounts> &Counts,
          const std::vector<const SiteCharacter *> &BySite,
          uint64_t BranchExecs) {
  ClassPredictorRow Row;
  Row.Name = std::move(Name);
  Row.Kind = std::move(Kind);
  uint64_t ExecSum = 0;
  for (size_t Idx = 0; Idx < Counts.size(); ++Idx) {
    const SiteCounts &C = Counts[Idx];
    if (C.execs() == 0)
      continue;
    const SiteCharacter *S = Idx < BySite.size() ? BySite[Idx] : nullptr;
    if (!S)
      return Diag(ErrorKind::Internal,
                  "characterize: predictor '" + Row.Name +
                      "' charged site " + std::to_string(Idx) +
                      " that the statistics pass never saw");
    ClassSlice &Slice = Row.Classes[static_cast<unsigned>(S->Class)];
    ++Slice.Sites;
    Slice.Execs += C.execs();
    Slice.Mispredicts += C.Mispredicts;
    Row.Mispredicts += C.Mispredicts;
    ExecSum += C.execs();
  }
  if (ExecSum != BranchExecs)
    return Diag(ErrorKind::Internal,
                "characterize: predictor '" + Row.Name + "' saw " +
                    std::to_string(ExecSum) +
                    " branch executions but the trace has " +
                    std::to_string(BranchExecs) +
                    "; per-class conservation is unprovable");
  return Row;
}

//===----------------------------------------------------------------------===//
// The pipeline
//===----------------------------------------------------------------------===//

template <class Source, class Join>
Expected<CharReport> characterizeImpl(const PredictionContext &Ctx,
                                      const Source &Src, const Join &J,
                                      const CharOptions &Opts) {
  timetrace::Span CharSpan("replay.char",
                           Opts.Workload.empty() ? "<trace>" : Opts.Workload);
  const unsigned Jobs =
      Opts.Jobs == 0 ? ThreadPool::defaultConcurrency() : Opts.Jobs;

  // ---- 1. Build pass: the shared per-site index.
  EventIndex Ix;
  Ix.NumChunks = Src.numChunks();
  Ix.TotalInstrs = Src.totalInstrs();
  const std::vector<size_t> Starts =
      shardChunkStarts(Ix.NumChunks, MaxDynamicReplayShards);
  {
    IndexBuilder B(Ix, Starts);
    if (std::optional<Diag> D = Src.forEachChunkSerial(
            [&](const uint32_t *W, uint64_t N) { B.feedChunk(W, N); }))
      return rejectedChar(*std::move(D));
    B.finish();
  }

  // ---- 2. Shard pass: per-site exec/taken/transition tallies, merged
  // in shard order. Transitions need each event's predecessor outcome,
  // which the shard finds in the read-only bitstreams by (site,
  // occurrence) — the same lookup discipline as the dynamic replay's
  // sequencing pass.
  const size_t NumShards = Ix.Shards.size();
  std::vector<std::vector<uint64_t>> ShExecs(NumShards), ShTaken(NumShards),
      ShTrans(NumShards);
  std::vector<std::optional<Diag>> ShardErrs(NumShards);
  parallelFor(Jobs, NumShards, [&](size_t ShIdx) {
    const ShardStart &Sh = Ix.Shards[ShIdx];
    const bool Last = ShIdx + 1 == NumShards;
    const size_t End = Last ? Ix.NumChunks : Ix.Shards[ShIdx + 1].ChunkBegin;
    const uint32_t Tail = Last ? 0 : Ix.Shards[ShIdx + 1].SkipWords;
    std::vector<uint64_t> &E = ShExecs[ShIdx];
    std::vector<uint64_t> &T = ShTaken[ShIdx];
    std::vector<uint64_t> &X = ShTrans[ShIdx];
    E.assign(Ix.NumSites, 0);
    T.assign(Ix.NumSites, 0);
    X.assign(Ix.NumSites, 0);
    std::vector<uint64_t> Occ = Sh.SiteOcc;
    TraceDecoder D;
    const auto OnEvent = [&](uint32_t Idx, bool Taken, uint64_t) {
      const uint64_t K = Occ[Idx]++;
      ++E[Idx];
      T[Idx] += Taken ? 1 : 0;
      if (K > 0 && Ix.Sites[Idx].taken(K - 1) != Taken)
        ++X[Idx];
    };
    ShardErrs[ShIdx] = Src.walkShardWords(
        Sh.ChunkBegin, End, Sh.SkipWords, Tail,
        [&](const uint32_t *W, uint64_t N) { D.feed(W, N, OnEvent); });
  });
  for (std::optional<Diag> &E : ShardErrs)
    if (E)
      return rejectedChar(*std::move(E));

  std::vector<uint64_t> Execs(Ix.NumSites, 0), Taken(Ix.NumSites, 0),
      Trans(Ix.NumSites, 0);
  for (size_t ShIdx = 0; ShIdx < NumShards; ++ShIdx)
    for (uint32_t S = 0; S < Ix.NumSites; ++S) {
      Execs[S] += ShExecs[ShIdx][S];
      Taken[S] += ShTaken[ShIdx][S];
      Trans[S] += ShTrans[ShIdx][S];
    }

  // Cross-check the merge against the build pass's streams: both walked
  // the same words, so any disagreement is a broken decoder or shard
  // layout — refuse rather than report wrong statistics.
  for (uint32_t S = 0; S < Ix.NumSites; ++S) {
    uint64_t Pop = 0;
    for (uint64_t W : Ix.Sites[S].Bits)
      Pop += static_cast<uint64_t>(std::popcount(W));
    if (Execs[S] != Ix.Sites[S].Count || Taken[S] != Pop)
      return Diag(ErrorKind::Internal,
                  "characterize: shard merge disagrees with the build "
                  "pass at site " +
                      std::to_string(S));
  }

  // ---- 3. Site pass: per-site doubles and class assignments.
  std::vector<SiteCharacter> ByFlat(Ix.NumSites);
  if (Ix.NumSites > 0) {
    const size_t Groups = std::min<size_t>(Ix.NumSites, 64);
    parallelFor(Jobs, Groups, [&](size_t G) {
      const uint32_t Lo = static_cast<uint32_t>(G * Ix.NumSites / Groups);
      const uint32_t Hi =
          static_cast<uint32_t>((G + 1) * Ix.NumSites / Groups);
      for (uint32_t Site = Lo; Site < Hi; ++Site) {
        const SiteStream &S = Ix.Sites[Site];
        if (S.Count == 0)
          continue;
        SiteCharacter &C = ByFlat[Site];
        C.FlatIndex = Site;
        C.Execs = Execs[Site];
        C.Taken = Taken[Site];
        C.Transitions = Trans[Site];
        uint64_t Run = 0, MaxRun = 0;
        bool Prev = false;
        for (uint64_t K = 0; K < S.Count; ++K) {
          const bool T = S.taken(K);
          if (K == 0 || T == Prev) {
            ++Run;
          } else {
            MaxRun = std::max(MaxRun, Run);
            Run = 1;
          }
          Prev = T;
        }
        C.MaxRun = std::max(MaxRun, Run);
        C.Entropy = entropyBits(C.Taken, C.Execs);
        for (unsigned I = 0; I < NumCharDepths; ++I)
          C.CondEntropy[I] = condEntropyBits(S, CharDepths[I]);
        C.PredictBits = charPredictBits(C.Execs, C.Entropy, C.CondEntropy);
        C.Class = classifyBranch(C.Execs, C.PredictBits, Opts.Thresholds);
      }
    });
  }

  // ---- 4a. Provenance join: which rule predicted each site.
  const ir::Module &M = Ctx.getModule();
  BallLarusPredictor P(Ctx);
  ProvenanceMap Prov(M);
  P.setProvenanceSink(&Prov);
  const std::vector<uint8_t> Dirs = predictorDirections(M, P);
  P.setProvenanceSink(nullptr);

  CharReport R;
  R.Workload = Opts.Workload;
  R.Dataset = Opts.Dataset;
  R.TotalInstrs = Ix.TotalInstrs;
  R.BranchExecs = Ix.NumEvents;
  R.Shards = NumShards;
  R.Thresholds = Opts.Thresholds;

  std::vector<const SiteCharacter *> BySite(Ix.NumSites, nullptr);
  for (uint32_t Site = 0; Site < Ix.NumSites; ++Site) {
    SiteCharacter &C = ByFlat[Site];
    if (C.Execs == 0)
      continue;
    if (const BranchProvenance *PR = Prov.get(Site)) {
      C.Function = PR->BB->getParent()->getName();
      C.Block = PR->BB->getName();
      C.SrcLine = PR->SrcLine;
      C.Bucket = attrBucketName(PR->Bucket);
    } else {
      // Only conditional branches appear in the trace, and provenance
      // covers every conditional branch of the module.
      assert(false && "trace event on an unpredicted block");
    }
    BySite[Site] = &C;
    ++R.NumSites;
    const unsigned Cls = static_cast<unsigned>(C.Class);
    ++R.ClassSites[Cls];
    R.ClassExecs[Cls] += C.Execs;
  }

  // ---- 4b. Predictor-by-class join: the dynamic Table-2 analogue.
  {
    Expected<std::vector<SiteCounts>> BL = J.counts(Dirs);
    if (!BL)
      return BL.takeError();
    Expected<ClassPredictorRow> Row =
        chargeRow(P.name(), "static", *BL, BySite, R.BranchExecs);
    if (!Row)
      return Row.takeError();
    R.Predictors.push_back(*std::move(Row));
  }
  {
    Expected<std::vector<uint8_t>> PerfDirs = J.perfect();
    if (!PerfDirs)
      return PerfDirs.takeError();
    Expected<std::vector<SiteCounts>> Perf = J.counts(*PerfDirs);
    if (!Perf)
      return Perf.takeError();
    Expected<ClassPredictorRow> Row =
        chargeRow("Perfect", "perfect", *Perf, BySite, R.BranchExecs);
    if (!Row)
      return Row.takeError();
    R.Predictors.push_back(*std::move(Row));
  }
  {
    const std::vector<DynPredictorConfig> Panel = standardDynamicPanel();
    Expected<std::vector<std::vector<SiteCounts>>> Dyn =
        J.dynSites(Panel, Jobs);
    if (!Dyn)
      return Dyn.takeError();
    for (size_t I = 0; I < Panel.size(); ++I) {
      Expected<ClassPredictorRow> Row = chargeRow(
          Panel[I].name(), "dynamic", (*Dyn)[I], BySite, R.BranchExecs);
      if (!Row)
        return Row.takeError();
      R.Predictors.push_back(*std::move(Row));
    }
  }

  R.Sites.reserve(R.NumSites);
  for (const SiteCharacter &C : ByFlat)
    if (C.Execs > 0)
      R.Sites.push_back(C);
  std::sort(R.Sites.begin(), R.Sites.end(),
            [](const SiteCharacter &A, const SiteCharacter &B) {
              if (A.Execs != B.Execs)
                return A.Execs > B.Execs;
              return A.FlatIndex < B.FlatIndex;
            });

  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.char.passes");
    static metrics::Counter &Events = metrics::counter("replay.char.events");
    static metrics::Counter &Sites = metrics::counter("replay.char.sites");
    static metrics::Counter &H2P = metrics::counter("replay.char.h2p_sites");
    static metrics::Counter &Shards = metrics::counter("replay.char.shards");
    Passes.add();
    Events.add(Ix.NumEvents);
    Sites.add(R.NumSites);
    H2P.add(R.ClassSites[static_cast<unsigned>(BranchClass::Hard)]);
    Shards.add(NumShards);
  }
  return R;
}

} // namespace

Expected<CharReport> bpfree::characterizeTrace(const PredictionContext &Ctx,
                                               const BranchTrace &Trace,
                                               const CharOptions &Opts) {
  if (&Ctx.getModule() != &Trace.getModule())
    return rejectedChar(
        Diag(ErrorKind::InvalidArgument,
             "characterizeTrace: the prediction context analyzes a "
             "different module than the trace captured"));
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  ResidentEventSource Src{Trace};
  ResidentJoin J{Trace};
  return characterizeImpl(Ctx, Src, J, Opts);
}

Expected<CharReport> bpfree::characterizeStore(const PredictionContext &Ctx,
                                               const TraceStoreReader &Store,
                                               const CharOptions &Opts) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  if (std::optional<Diag> D = Store.requireModule(Ctx.getModule()))
    return rejectedChar(*std::move(D));
  StoreEventSource Src{Store};
  StoreJoin J{Store, Ctx.getModule()};
  return characterizeImpl(Ctx, Src, J, Opts);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string bpfree::renderCharReport(const CharReport &R, size_t TopN) {
  std::string Out;
  char Buf[256];
  Out += "characterize: " + (R.Workload.empty() ? "<trace>" : R.Workload);
  if (!R.Dataset.empty())
    Out += " / " + R.Dataset;
  std::snprintf(Buf, sizeof(Buf),
                "\n  %llu instrs, %llu branch execs, %llu sites, "
                "%zu shards\n",
                static_cast<unsigned long long>(R.TotalInstrs),
                static_cast<unsigned long long>(R.BranchExecs),
                static_cast<unsigned long long>(R.NumSites),
                static_cast<size_t>(R.Shards));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  hard share %.1f%% (threshold %.0f%%) -> %s\n\n",
                100.0 * R.hardShare(), 100.0 * R.Thresholds.HardShare,
                R.h2p() ? "H2P workload" : "regular workload");
  Out += Buf;

  TablePrinter Classes({"Class", "Sites", "Execs", "ExecShare"});
  for (unsigned C = 0; C < NumBranchClasses; ++C) {
    char Share[32];
    std::snprintf(Share, sizeof(Share), "%.1f%%",
                  R.BranchExecs == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(R.ClassExecs[C]) /
                            static_cast<double>(R.BranchExecs));
    Classes.addRow({branchClassName(static_cast<BranchClass>(C)),
                    std::to_string(R.ClassSites[C]),
                    std::to_string(R.ClassExecs[C]), Share});
  }
  std::ostringstream ClassOS;
  Classes.print(ClassOS);
  Out += ClassOS.str();

  Out += "\nmiss rate by class (the dynamic Table-2 analogue):\n";
  TablePrinter Preds(
      {"Predictor", "Kind", "EasyMiss", "ModMiss", "HardMiss", "Miss"});
  for (const ClassPredictorRow &Row : R.Predictors) {
    char Cells[3][32];
    for (unsigned C = 0; C < NumBranchClasses; ++C) {
      if (Row.Classes[C].Execs == 0)
        std::snprintf(Cells[C], sizeof(Cells[C]), "-");
      else
        std::snprintf(Cells[C], sizeof(Cells[C]), "%.1f%%",
                      100.0 * Row.missRate(C));
    }
    Preds.addRow({Row.Name, Row.Kind, Cells[0], Cells[1], Cells[2],
                  std::to_string(Row.Mispredicts)});
  }
  std::ostringstream PredOS;
  Preds.print(PredOS);
  Out += PredOS.str();

  // Hardest sites first: class descending, then residual entropy, then
  // execution weight.
  std::vector<const SiteCharacter *> Hardest;
  Hardest.reserve(R.Sites.size());
  for (const SiteCharacter &S : R.Sites)
    Hardest.push_back(&S);
  std::sort(Hardest.begin(), Hardest.end(),
            [](const SiteCharacter *A, const SiteCharacter *B) {
              if (A->Class != B->Class)
                return static_cast<unsigned>(A->Class) >
                       static_cast<unsigned>(B->Class);
              if (A->PredictBits != B->PredictBits)
                return A->PredictBits > B->PredictBits;
              if (A->Execs != B->Execs)
                return A->Execs > B->Execs;
              return A->FlatIndex < B->FlatIndex;
            });
  Out += "\nhardest branches:\n";
  if (Hardest.empty())
    Out += "  (no executed branches)\n";
  const size_t N = std::min(TopN, Hardest.size());
  for (size_t I = 0; I < N; ++I) {
    const SiteCharacter &S = *Hardest[I];
    std::string Where = S.Function + ":" + S.Block;
    if (S.SrcLine > 0)
      Where += " (line " + std::to_string(S.SrcLine) + ")";
    std::snprintf(
        Buf, sizeof(Buf),
        "  #%zu  %-40s %-8s %8llu execs  taken %4.1f%%  H %.2fb  "
        "H|8 %.2fb  resid %.2fb  [%s]\n",
        I + 1, Where.c_str(), branchClassName(S.Class),
        static_cast<unsigned long long>(S.Execs), 100.0 * S.takenRate(),
        S.Entropy, S.CondEntropy[NumCharDepths - 1], S.PredictBits,
        S.Bucket.c_str());
    Out += Buf;
  }
  if (Hardest.size() > N) {
    std::snprintf(Buf, sizeof(Buf), "  ... and %zu more sites\n",
                  Hardest.size() - N);
    Out += Buf;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// bpfree-char-v1 writer
//===----------------------------------------------------------------------===//

bool bpfree::writeCharJson(const CharReport &R, const std::string &Path,
                           size_t TopN) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"%s\",\n", SchemaName);
  std::fprintf(Out, "  \"workload\": \"%s\",\n",
               json::escape(R.Workload).c_str());
  std::fprintf(Out, "  \"dataset\": \"%s\",\n",
               json::escape(R.Dataset).c_str());
  std::fprintf(Out, "  \"total_instrs\": %llu,\n",
               static_cast<unsigned long long>(R.TotalInstrs));
  std::fprintf(Out, "  \"branch_execs\": %llu,\n",
               static_cast<unsigned long long>(R.BranchExecs));
  std::fprintf(Out, "  \"num_sites\": %llu,\n",
               static_cast<unsigned long long>(R.NumSites));
  std::fprintf(Out, "  \"shards\": %llu,\n",
               static_cast<unsigned long long>(R.Shards));
  std::fprintf(Out,
               "  \"thresholds\": {\"min_execs\": %llu, "
               "\"hard_bits\": %.17g, \"moderate_bits\": %.17g, "
               "\"hard_share\": %.17g},\n",
               static_cast<unsigned long long>(R.Thresholds.MinExecs),
               R.Thresholds.HardBits, R.Thresholds.ModerateBits,
               R.Thresholds.HardShare);
  std::fprintf(Out, "  \"classes\": [\n");
  for (unsigned C = 0; C < NumBranchClasses; ++C)
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"sites\": %llu, "
                 "\"execs\": %llu}%s\n",
                 branchClassName(static_cast<BranchClass>(C)),
                 static_cast<unsigned long long>(R.ClassSites[C]),
                 static_cast<unsigned long long>(R.ClassExecs[C]),
                 C + 1 == NumBranchClasses ? "" : ",");
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"hard_share\": %.17g,\n", R.hardShare());
  std::fprintf(Out, "  \"h2p\": %s,\n", R.h2p() ? "true" : "false");
  const size_t N = TopN == 0 ? R.Sites.size() : std::min(TopN, R.Sites.size());
  std::fprintf(Out, "  \"sites\": [\n");
  for (size_t I = 0; I < N; ++I) {
    const SiteCharacter &S = R.Sites[I];
    std::fprintf(
        Out,
        "    {\"flat_index\": %u, \"function\": \"%s\", "
        "\"block\": \"%s\", \"line\": %d, \"bucket\": \"%s\", "
        "\"class\": \"%s\", \"execs\": %llu, \"taken\": %llu, "
        "\"transitions\": %llu, \"max_run\": %llu, "
        "\"entropy\": %.17g, \"cond_entropy\": [%.17g, %.17g, %.17g], "
        "\"predict_bits\": %.17g}%s\n",
        S.FlatIndex, json::escape(S.Function).c_str(),
        json::escape(S.Block).c_str(), S.SrcLine,
        json::escape(S.Bucket).c_str(), branchClassName(S.Class),
        static_cast<unsigned long long>(S.Execs),
        static_cast<unsigned long long>(S.Taken),
        static_cast<unsigned long long>(S.Transitions),
        static_cast<unsigned long long>(S.MaxRun), S.Entropy,
        S.CondEntropy[0], S.CondEntropy[1], S.CondEntropy[2], S.PredictBits,
        I + 1 == N ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"predictors\": [\n");
  for (size_t I = 0; I < R.Predictors.size(); ++I) {
    const ClassPredictorRow &Row = R.Predictors[I];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"kind\": \"%s\", "
                 "\"mispredicts\": %llu, \"classes\": [",
                 json::escape(Row.Name).c_str(),
                 json::escape(Row.Kind).c_str(),
                 static_cast<unsigned long long>(Row.Mispredicts));
    for (unsigned C = 0; C < NumBranchClasses; ++C)
      std::fprintf(Out,
                   "{\"name\": \"%s\", \"sites\": %llu, \"execs\": %llu, "
                   "\"mispredicts\": %llu}%s",
                   branchClassName(static_cast<BranchClass>(C)),
                   static_cast<unsigned long long>(Row.Classes[C].Sites),
                   static_cast<unsigned long long>(Row.Classes[C].Execs),
                   static_cast<unsigned long long>(
                       Row.Classes[C].Mispredicts),
                   C + 1 == NumBranchClasses ? "" : ", ");
    std::fprintf(Out, "]}%s\n",
                 I + 1 == R.Predictors.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n");
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// bpfree-char-v1 reader / validator
//===----------------------------------------------------------------------===//

namespace {

/// Validation helper: \p V must hold member \p Key as a non-negative
/// number; writes it through \p Dst and reports the first violation.
bool takeCount(const json::Value &V, const char *Key, uint64_t &Dst,
               std::string &Err) {
  const json::Value *F = V.find(Key);
  if (!F || F->K != json::Value::Number) {
    Err = std::string("missing numeric field '") + Key + "'";
    return false;
  }
  if (F->Num < 0) {
    Err = std::string("negative count in field '") + Key + "'";
    return false;
  }
  Dst = json::asU64(F->Num);
  return true;
}

/// Like takeCount but for the report's real-valued statistics (entropy,
/// thresholds) — preserved exactly, required non-negative.
bool takeReal(const json::Value &V, const char *Key, double &Dst,
              std::string &Err) {
  const json::Value *F = V.find(Key);
  if (!F || F->K != json::Value::Number) {
    Err = std::string("missing numeric field '") + Key + "'";
    return false;
  }
  if (F->Num < 0) {
    Err = std::string("negative value in field '") + Key + "'";
    return false;
  }
  Dst = F->Num;
  return true;
}

bool classFromName(const std::string &Name, BranchClass &C) {
  for (unsigned I = 0; I < NumBranchClasses; ++I)
    if (Name == branchClassName(static_cast<BranchClass>(I))) {
      C = static_cast<BranchClass>(I);
      return true;
    }
  return false;
}

} // namespace

Expected<CharReport> bpfree::readCharJson(const std::string &Path) {
  Expected<json::Value> Parsed = json::parseFile(Path);
  if (!Parsed)
    return Parsed.takeError();
  const json::Value &Root = *Parsed;
  auto invalid = [&](const std::string &Why) {
    return Diag(ErrorKind::InvalidArgument, "'" + Path + "': " + Why);
  };
  if (Root.K != json::Value::Object)
    return invalid("document is not a JSON object");
  if (Root.str("schema") != SchemaName)
    return invalid(std::string("not a ") + SchemaName + " document");
  for (const char *Key : {"workload", "dataset"})
    if (!Root.has(Key))
      return invalid(std::string("missing field '") + Key + "'");

  CharReport R;
  R.Workload = Root.str("workload");
  R.Dataset = Root.str("dataset");
  std::string Err;
  if (!takeCount(Root, "total_instrs", R.TotalInstrs, Err) ||
      !takeCount(Root, "branch_execs", R.BranchExecs, Err) ||
      !takeCount(Root, "num_sites", R.NumSites, Err) ||
      !takeCount(Root, "shards", R.Shards, Err))
    return invalid(Err);

  const json::Value *Th = Root.find("thresholds");
  if (!Th || Th->K != json::Value::Object)
    return invalid("missing 'thresholds' object");
  if (!takeCount(*Th, "min_execs", R.Thresholds.MinExecs, Err) ||
      !takeReal(*Th, "hard_bits", R.Thresholds.HardBits, Err) ||
      !takeReal(*Th, "moderate_bits", R.Thresholds.ModerateBits, Err) ||
      !takeReal(*Th, "hard_share", R.Thresholds.HardShare, Err))
    return invalid("thresholds: " + Err);

  const json::Value *Cs = Root.find("classes");
  if (!Cs || Cs->K != json::Value::Array)
    return invalid("missing 'classes' array");
  if (Cs->Arr.size() != NumBranchClasses)
    return invalid("expected " + std::to_string(NumBranchClasses) +
                   " classes, found " + std::to_string(Cs->Arr.size()));
  uint64_t SiteSum = 0, ExecSum = 0;
  for (unsigned C = 0; C < NumBranchClasses; ++C) {
    const json::Value &V = Cs->Arr[C];
    const char *Want = branchClassName(static_cast<BranchClass>(C));
    if (V.str("name") != Want)
      return invalid("class " + std::to_string(C) + " is named '" +
                     V.str("name") + "', expected '" + Want + "'");
    if (!takeCount(V, "sites", R.ClassSites[C], Err) ||
        !takeCount(V, "execs", R.ClassExecs[C], Err))
      return invalid(std::string("class '") + Want + "': " + Err);
    SiteSum += R.ClassSites[C];
    ExecSum += R.ClassExecs[C];
  }
  if (SiteSum != R.NumSites)
    return invalid("conservation violated: class sites sum to " +
                   std::to_string(SiteSum) + " but the report has " +
                   std::to_string(R.NumSites) + " sites");
  if (ExecSum != R.BranchExecs)
    return invalid("conservation violated: class execs sum to " +
                   std::to_string(ExecSum) +
                   " but the trace has " + std::to_string(R.BranchExecs) +
                   " branch executions");

  double HardShare = 0.0;
  if (!takeReal(Root, "hard_share", HardShare, Err))
    return invalid(Err);
  if (HardShare != R.hardShare())
    return invalid("hard_share does not match the class exec totals");
  const json::Value *H2P = Root.find("h2p");
  if (!H2P || H2P->K != json::Value::Bool)
    return invalid("missing boolean field 'h2p'");
  if (H2P->B != R.h2p())
    return invalid("h2p verdict does not match hard_share against the "
                   "threshold");

  const json::Value *Ss = Root.find("sites");
  if (!Ss || Ss->K != json::Value::Array)
    return invalid("missing 'sites' array");
  if (Ss->Arr.size() > R.NumSites)
    return invalid("more sites listed than num_sites");
  for (const json::Value &V : Ss->Arr) {
    SiteCharacter S;
    uint64_t Flat = 0;
    if (!takeCount(V, "flat_index", Flat, Err) ||
        !takeCount(V, "execs", S.Execs, Err) ||
        !takeCount(V, "taken", S.Taken, Err) ||
        !takeCount(V, "transitions", S.Transitions, Err) ||
        !takeCount(V, "max_run", S.MaxRun, Err) ||
        !takeReal(V, "entropy", S.Entropy, Err) ||
        !takeReal(V, "predict_bits", S.PredictBits, Err))
      return invalid("site: " + Err);
    S.FlatIndex = static_cast<uint32_t>(Flat);
    S.Function = V.str("function");
    S.Block = V.str("block");
    S.SrcLine = static_cast<int>(V.num("line"));
    S.Bucket = V.str("bucket");
    const std::string Tag = "site " + std::to_string(S.FlatIndex);
    if (S.Execs == 0)
      return invalid(Tag + " has zero executions; only executed sites "
                           "are characterized");
    if (S.Taken > S.Execs)
      return invalid(Tag + " has more taken outcomes than executions");
    if (S.Transitions + 1 > S.Execs)
      return invalid(Tag + " has more transitions than executions allow");
    if (S.MaxRun == 0 || S.MaxRun > S.Execs)
      return invalid(Tag + " has an impossible max run length");
    const json::Value *CE = V.find("cond_entropy");
    if (!CE || CE->K != json::Value::Array ||
        CE->Arr.size() != NumCharDepths)
      return invalid(Tag + " is missing the " +
                     std::to_string(NumCharDepths) +
                     "-depth 'cond_entropy' array");
    for (unsigned I = 0; I < NumCharDepths; ++I) {
      const json::Value &E = CE->Arr[I];
      if (E.K != json::Value::Number || E.Num < 0)
        return invalid(Tag + " has a non-numeric or negative "
                             "conditional entropy");
      S.CondEntropy[I] = E.Num;
    }
    if (S.Entropy > 1.0 + 1e-9)
      return invalid(Tag + " claims more than one bit of binary entropy");
    if (S.PredictBits != charPredictBits(S.Execs, S.Entropy, S.CondEntropy))
      return invalid(Tag + "'s predict_bits is not the residual-entropy "
                           "minimum of its own statistics");
    if (!classFromName(V.str("class"), S.Class))
      return invalid(Tag + " names unknown class '" + V.str("class") + "'");
    if (S.Class != classifyBranch(S.Execs, S.PredictBits, R.Thresholds))
      return invalid(Tag + "'s class does not follow from its residual "
                           "entropy under the report's thresholds");
    R.Sites.push_back(std::move(S));
  }

  const json::Value *Ps = Root.find("predictors");
  if (!Ps || Ps->K != json::Value::Array)
    return invalid("missing 'predictors' array");
  for (const json::Value &V : Ps->Arr) {
    ClassPredictorRow Row;
    Row.Name = V.str("name");
    Row.Kind = V.str("kind");
    if (Row.Name.empty())
      return invalid("predictor row without a name");
    if (Row.Kind != "static" && Row.Kind != "perfect" &&
        Row.Kind != "dynamic")
      return invalid("predictor '" + Row.Name + "' has unknown kind '" +
                     Row.Kind + "'");
    if (!takeCount(V, "mispredicts", Row.Mispredicts, Err))
      return invalid("predictor '" + Row.Name + "': " + Err);
    const json::Value *RC = V.find("classes");
    if (!RC || RC->K != json::Value::Array ||
        RC->Arr.size() != NumBranchClasses)
      return invalid("predictor '" + Row.Name + "' is missing its " +
                     std::to_string(NumBranchClasses) +
                     "-class breakdown");
    uint64_t RowSites = 0, RowExecs = 0, RowMiss = 0;
    for (unsigned C = 0; C < NumBranchClasses; ++C) {
      const json::Value &CV = RC->Arr[C];
      const char *Want = branchClassName(static_cast<BranchClass>(C));
      if (CV.str("name") != Want)
        return invalid("predictor '" + Row.Name + "' class " +
                       std::to_string(C) + " is named '" + CV.str("name") +
                       "', expected '" + Want + "'");
      ClassSlice &Slice = Row.Classes[C];
      if (!takeCount(CV, "sites", Slice.Sites, Err) ||
          !takeCount(CV, "execs", Slice.Execs, Err) ||
          !takeCount(CV, "mispredicts", Slice.Mispredicts, Err))
        return invalid("predictor '" + Row.Name + "' class '" +
                       std::string(Want) + "': " + Err);
      if (Slice.Mispredicts > Slice.Execs)
        return invalid("predictor '" + Row.Name + "' mispredicts class '" +
                       std::string(Want) + "' more often than it executes");
      RowSites += Slice.Sites;
      RowExecs += Slice.Execs;
      RowMiss += Slice.Mispredicts;
    }
    if (RowExecs != R.BranchExecs)
      return invalid("conservation violated: predictor '" + Row.Name +
                     "' class execs sum to " + std::to_string(RowExecs) +
                     " but the trace has " + std::to_string(R.BranchExecs) +
                     " branch executions");
    if (RowSites != R.NumSites)
      return invalid("conservation violated: predictor '" + Row.Name +
                     "' class sites sum to " + std::to_string(RowSites) +
                     " but the report has " + std::to_string(R.NumSites) +
                     " sites");
    if (RowMiss != Row.Mispredicts)
      return invalid("predictor '" + Row.Name +
                     "' class mispredicts do not sum to its total");
    R.Predictors.push_back(std::move(Row));
  }
  return R;
}
