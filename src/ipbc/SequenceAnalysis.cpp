//===- ipbc/SequenceAnalysis.cpp - Break-in-control run lengths -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipbc/SequenceAnalysis.h"

#include "vm/BranchTrace.h"

#include <cassert>
#include <cmath>

using namespace bpfree;
using namespace bpfree::ir;

double SequenceHistogram::dividingLength() const {
  if (TotalInstrs == 0)
    return 0.0;
  uint64_t Half = TotalInstrs / 2;
  uint64_t Cum = 0;
  for (size_t J = 0; J < NumBuckets; ++J) {
    Cum += SumLengths[J];
    if (Cum >= Half)
      return static_cast<double>(J * BucketWidth + BucketWidth / 2);
  }
  return static_cast<double>(NumBuckets * BucketWidth);
}

std::vector<std::pair<uint64_t, double>> SequenceHistogram::instrCurve() const {
  std::vector<std::pair<uint64_t, double>> Curve;
  if (TotalInstrs == 0)
    return Curve;
  uint64_t Cum = 0;
  for (size_t J = 0; J < NumBuckets; ++J) {
    Cum += SumLengths[J];
    Curve.emplace_back((J + 1) * BucketWidth,
                       static_cast<double>(Cum) /
                           static_cast<double>(TotalInstrs));
  }
  return Curve;
}

std::vector<std::pair<uint64_t, double>> SequenceHistogram::breakCurve() const {
  std::vector<std::pair<uint64_t, double>> Curve;
  uint64_t TotalSeqs = 0;
  for (uint64_t N : NumSequences)
    TotalSeqs += N;
  if (TotalSeqs == 0)
    return Curve;
  uint64_t Cum = 0;
  for (size_t J = 0; J < NumBuckets; ++J) {
    Cum += NumSequences[J];
    Curve.emplace_back((J + 1) * BucketWidth,
                       static_cast<double>(Cum) /
                           static_cast<double>(TotalSeqs));
  }
  return Curve;
}

SequenceCollector::SequenceCollector(
    const Module &M, std::vector<const StaticPredictor *> Predictors)
    : M(M), Predictors(std::move(Predictors)),
      FuncOffsets(flatBlockOffsets(M)) {
  Hists.resize(this->Predictors.size());
  LastBreak.assign(this->Predictors.size(), 0);
  DirCache.assign(this->Predictors.size() * FuncOffsets.back(), 0xFF);
}

uint8_t SequenceCollector::cachedDirection(size_t PredIdx,
                                           const BasicBlock &BB) {
  uint8_t &Slot = DirCache[PredIdx * FuncOffsets.back() +
                           FuncOffsets[BB.getParent()->getIndex()] +
                           BB.getId()];
  if (Slot == 0xFF)
    Slot = static_cast<uint8_t>(Predictors[PredIdx]->predict(BB));
  return Slot;
}

void SequenceCollector::onCondBranch(const BasicBlock &BB, bool Taken,
                                     uint64_t InstrCount) {
  assert(!Finalized && "collector already finalized");
  Direction Actual = Taken ? DirTaken : DirFallthru;
  for (size_t P = 0; P < Predictors.size(); ++P) {
    ++Hists[P].BranchExecs;
    if (cachedDirection(P, BB) != static_cast<uint8_t>(Actual)) {
      // A break in control: close the sequence ending at this branch.
      Hists[P].record(InstrCount - LastBreak[P]);
      ++Hists[P].Breaks;
      LastBreak[P] = InstrCount;
    }
  }
}

void SequenceCollector::finalize(uint64_t TotalInstrCount) {
  assert(!Finalized && "collector finalized twice");
  Finalized = true;
  // The trailing instructions after the last break form one final
  // (unterminated) sequence, so that summed lengths equal the total
  // instruction count.
  for (size_t P = 0; P < Predictors.size(); ++P)
    if (TotalInstrCount > LastBreak[P])
      Hists[P].record(TotalInstrCount - LastBreak[P]);
}

double bpfree::sequenceModel(double M, double S) {
  return 1.0 - std::pow(1.0 - M, S);
}
