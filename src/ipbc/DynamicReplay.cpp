//===- ipbc/DynamicReplay.cpp - Dynamic-predictor trace replay ------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Pipeline (see the header for the why):
//
//   1. Build pass (sequential, one decode of the packed stream): the
//      shared per-site event-stream index (ipbc/EventStreamIndex.h) —
//      per-site outcome bitstreams in first-occurrence order, plus one
//      snapshot per trace shard.
//
//   2. Site pass (parallel over site groups): per-site-decomposable panel
//      members simulate each site's stream independently, emitting
//      per-site misprediction bitstreams. Distinct sites touch disjoint
//      predictor state, so one shared predictor object per member is
//      driven from many threads without synchronization.
//
//   3. Shard pass (parallel over shards): re-decode each shard's events
//      in trace order, look each event's misprediction bit up by (site,
//      occurrence), and accumulate per-shard histogram partials — bucket
//      arrays for sequences both of whose endpoints lie inside the
//      shard, plus the first/last break instruction counts for the
//      sequences that cross shard boundaries.
//
//   4. Merge (serial, in shard order): stitch partials into the exact
//      histogram the sequential loop produces — the cross-shard sequence
//      ending at a shard's first break is bucketed against the previous
//      shard's last break, interior buckets add element-wise, and the
//      trailing unbroken sequence closes against totalInstrs without
//      counting a break, exactly like replayTrace.
//
//   Global-state members skip 2-4 and run one sequential pass each
//   (parallel across members).
//
// Every count is a u64 add, the shard layout depends only on the trace,
// and phases are barriers — so histograms are bit-identical across Jobs
// values and for resident vs. disk-backed sources.
//
//===----------------------------------------------------------------------===//

#include "ipbc/DynamicReplay.h"

#include "ipbc/EventStreamIndex.h"
#include "ipbc/TraceReplay.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/TimeTrace.h"
#include "vm/TraceStore.h"

#include <algorithm>
#include <cassert>

using namespace bpfree;
using namespace bpfree::evstream;

namespace {

/// Counts a rejected replay request before returning the Diag (same
/// contract as the static entry points: run manifests surface refusals
/// under "replay.rejected").
Diag rejectedDyn(Diag D) {
  static metrics::Counter &Rejected = metrics::counter("replay.rejected");
  Rejected.add();
  return D;
}

Diag dynPanelSizeDiag(size_t Got) {
  return rejectedDyn(
      Diag(ErrorKind::InvalidArgument,
           "dynamic replay panel has " + std::to_string(Got) +
               " predictors but replay supports at most " +
               std::to_string(MaxReplayPredictors) +
               "; split the panel across multiple replay calls"));
}

/// Validates the panel and builds the shared index; the common prefix
/// of every dynamic entry point. \returns the first rejection, if any.
template <class Source>
std::optional<Diag> buildIndex(const Source &Src,
                               const std::vector<DynPredictorConfig> &Panel,
                               EventIndex &Ix) {
  if (Panel.size() > MaxReplayPredictors)
    return dynPanelSizeDiag(Panel.size());
  for (const DynPredictorConfig &C : Panel)
    if (std::optional<Diag> D = validateDynConfig(C))
      return rejectedDyn(*D);
  Ix.NumChunks = Src.numChunks();
  Ix.TotalInstrs = Src.totalInstrs();
  const std::vector<size_t> Starts =
      shardChunkStarts(Ix.NumChunks, MaxDynamicReplayShards);
  IndexBuilder B(Ix, Starts);
  if (std::optional<Diag> D = Src.forEachChunkSerial(
          [&](const uint32_t *W, uint64_t N) { B.feedChunk(W, N); }))
    return rejectedDyn(*D);
  B.finish();
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Shard partials and the serial merge
//===----------------------------------------------------------------------===//

/// Histogram contribution of one shard for one panel member. Sequences
/// wholly inside the shard land in the bucket arrays; the boundary
/// sequences are carried as the first/last break positions and resolved
/// by the serial merge.
struct ShardPartial {
  bool HasBreak = false;
  uint64_t FirstBreak = 0;
  uint64_t LastBreak = 0;
  uint64_t Breaks = 0;
  std::vector<uint64_t> NumSeq;
  std::vector<uint64_t> SumLen;

  void init() {
    NumSeq.assign(SequenceHistogram::NumBuckets, 0);
    SumLen.assign(SequenceHistogram::NumBuckets, 0);
  }

  void onBreak(uint64_t IC) {
    if (HasBreak) {
      const uint64_t Len = IC - LastBreak;
      const size_t B = SequenceHistogram::bucketFor(Len);
      ++NumSeq[B];
      SumLen[B] += Len;
    } else {
      HasBreak = true;
      FirstBreak = IC;
    }
    LastBreak = IC;
    ++Breaks;
  }
};

/// Stitches per-shard partials (in shard order) into the histogram the
/// sequential replay loop produces for the same misprediction stream.
SequenceHistogram mergePartials(const std::vector<const ShardPartial *> &Parts,
                                uint64_t NumEvents, uint64_t TotalInstrs) {
  SequenceHistogram H;
  uint64_t LastBreak = 0;
  for (const ShardPartial *P : Parts) {
    if (!P->HasBreak)
      continue;
    const uint64_t Len = P->FirstBreak - LastBreak;
    const size_t B = SequenceHistogram::bucketFor(Len);
    ++H.NumSequences[B];
    H.SumLengths[B] += Len;
    for (size_t I = 0; I < SequenceHistogram::NumBuckets; ++I) {
      H.NumSequences[I] += P->NumSeq[I];
      H.SumLengths[I] += P->SumLen[I];
    }
    H.Breaks += P->Breaks;
    LastBreak = P->LastBreak;
  }
  if (TotalInstrs > LastBreak) {
    const uint64_t Len = TotalInstrs - LastBreak;
    const size_t B = SequenceHistogram::bucketFor(Len);
    ++H.NumSequences[B];
    H.SumLengths[B] += Len;
  }
  // The recorded sequences partition [0, totalInstrs), same as the
  // sequential loop's record() accumulation.
  H.TotalInstrs = TotalInstrs;
  H.BranchExecs = NumEvents;
  return H;
}

//===----------------------------------------------------------------------===//
// The histogram pipeline
//===----------------------------------------------------------------------===//

template <class Source>
Expected<std::vector<SequenceHistogram>>
replayDynamicImpl(const Source &Src,
                  const std::vector<DynPredictorConfig> &Panel,
                  unsigned Jobs) {
  std::vector<SequenceHistogram> Hists(Panel.size());
  if (Panel.size() <= MaxReplayPredictors && Panel.empty())
    return Hists;

  timetrace::Span ReplaySpan("replay.dynamic",
                             std::to_string(Panel.size()) + " predictors");
  const unsigned J = Jobs == 0 ? ThreadPool::defaultConcurrency() : Jobs;

  // ---- 1. Build pass: per-site streams + shard snapshots.
  EventIndex Ix;
  if (std::optional<Diag> D = buildIndex(Src, Panel, Ix))
    return *std::move(D);
  const uint64_t TotalInstrs = Ix.TotalInstrs;

  std::vector<size_t> Decomp, Global;
  for (size_t P = 0; P < Panel.size(); ++P)
    (Panel[P].perSiteDecomposable() ? Decomp : Global).push_back(P);

  if (Ix.NumEvents == 0) {
    // No branches executed: every member sees one unbroken sequence.
    for (SequenceHistogram &H : Hists)
      if (TotalInstrs > 0)
        H.record(TotalInstrs);
    return Hists;
  }

  // ---- 2. Site pass: decomposable members' per-site miss bitstreams.
  // Miss[D][Site] has the same word layout as the site's outcome stream.
  std::vector<std::vector<std::vector<uint64_t>>> Miss(Decomp.size());
  if (!Decomp.empty()) {
    std::vector<DynamicPredictor> Preds;
    Preds.reserve(Decomp.size());
    for (size_t D : Decomp)
      Preds.emplace_back(Panel[D], Ix.NumSites);
    for (size_t DI = 0; DI < Decomp.size(); ++DI) {
      Miss[DI].resize(Ix.NumSites);
      for (uint32_t S = 0; S < Ix.NumSites; ++S)
        Miss[DI][S].assign(Ix.Sites[S].Bits.size(), 0);
    }
    const size_t Groups = std::min<size_t>(Ix.NumSites, 64);
    parallelFor(J, Groups, [&](size_t G) {
      const uint32_t Lo = static_cast<uint32_t>(G * Ix.NumSites / Groups);
      const uint32_t Hi =
          static_cast<uint32_t>((G + 1) * Ix.NumSites / Groups);
      for (uint32_t Site = Lo; Site < Hi; ++Site) {
        const SiteStream &S = Ix.Sites[Site];
        for (size_t DI = 0; DI < Decomp.size(); ++DI) {
          // Shared predictor object, disjoint per-site state: safe by
          // perSiteDecomposable()'s contract.
          DynamicPredictor &P = Preds[DI];
          std::vector<uint64_t> &Out = Miss[DI][Site];
          for (uint64_t K = 0; K < S.Count; ++K) {
            const bool Taken = (S.Bits[K >> 6] >> (K & 63)) & 1;
            const bool Pred = P.predictAndUpdate(Site, Taken);
            Out[K >> 6] |= static_cast<uint64_t>(Pred != Taken) << (K & 63);
          }
        }
      }
    });
  }

  // ---- 3. Shard pass: sequence the miss bits back into partials.
  const size_t NumShards = Ix.Shards.size();
  std::vector<ShardPartial> Partials(Decomp.size() * NumShards);
  std::vector<std::optional<Diag>> ShardErrs(NumShards);
  if (!Decomp.empty()) {
    parallelFor(J, NumShards, [&](size_t ShIdx) {
      const ShardStart &Sh = Ix.Shards[ShIdx];
      const bool Last = ShIdx + 1 == NumShards;
      const size_t End = Last ? Ix.NumChunks : Ix.Shards[ShIdx + 1].ChunkBegin;
      const uint32_t Tail = Last ? 0 : Ix.Shards[ShIdx + 1].SkipWords;
      std::vector<ShardPartial *> Parts(Decomp.size());
      for (size_t DI = 0; DI < Decomp.size(); ++DI) {
        Parts[DI] = &Partials[DI * NumShards + ShIdx];
        Parts[DI]->init();
      }
      uint64_t IC = Sh.StartInstr;
      std::vector<uint64_t> Occ = Sh.SiteOcc;
      TraceDecoder D;
      const auto OnEvent = [&](uint32_t Idx, bool, uint64_t Delta) {
        IC += Delta;
        const uint64_t K = Occ[Idx]++;
        const size_t WordI = static_cast<size_t>(K >> 6);
        const uint64_t Bit = 1ull << (K & 63);
        for (size_t DI = 0; DI < Decomp.size(); ++DI)
          if (Miss[DI][Idx][WordI] & Bit)
            Parts[DI]->onBreak(IC);
      };
      ShardErrs[ShIdx] = Src.walkShardWords(
          Sh.ChunkBegin, End, Sh.SkipWords, Tail,
          [&](const uint32_t *W, uint64_t N) { D.feed(W, N, OnEvent); });
    });
    for (std::optional<Diag> &E : ShardErrs)
      if (E)
        return rejectedDyn(*std::move(E));
    // ---- 4. Serial ordered merge.
    for (size_t DI = 0; DI < Decomp.size(); ++DI) {
      std::vector<const ShardPartial *> Parts(NumShards);
      for (size_t ShIdx = 0; ShIdx < NumShards; ++ShIdx)
        Parts[ShIdx] = &Partials[DI * NumShards + ShIdx];
      Hists[Decomp[DI]] = mergePartials(Parts, Ix.NumEvents, TotalInstrs);
    }
  }

  // ---- Global-state members: one sequential pass each, fanned out
  // across the pool (each store pass streams through its own cursor).
  std::vector<std::optional<Diag>> GlobalErrs(Global.size());
  parallelFor(J, Global.size(), [&](size_t GI) {
    DynamicPredictor P(Panel[Global[GI]], Ix.NumSites);
    SequenceHistogram H;
    uint64_t IC = 0;
    uint64_t LastBreak = 0;
    GlobalErrs[GI] = Src.forEachEvent(
        [&](uint32_t Idx, bool Taken, uint64_t Delta) {
          IC += Delta;
          ++H.BranchExecs;
          if (P.predictAndUpdate(Idx, Taken) != Taken) {
            H.record(IC - LastBreak);
            ++H.Breaks;
            LastBreak = IC;
          }
        });
    if (TotalInstrs > LastBreak)
      H.record(TotalInstrs - LastBreak);
    Hists[Global[GI]] = std::move(H);
  });
  for (std::optional<Diag> &E : GlobalErrs)
    if (E)
      return rejectedDyn(*std::move(E));

  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.dynamic.passes");
    static metrics::Counter &Events = metrics::counter("replay.dynamic.events");
    static metrics::Counter &Breaks = metrics::counter("replay.dynamic.breaks");
    static metrics::Counter &Preds =
        metrics::counter("replay.dynamic.predictors");
    static metrics::Counter &Shards = metrics::counter("replay.dynamic.shards");
    Passes.add();
    Events.add(Ix.NumEvents);
    Preds.add(Panel.size());
    Shards.add(NumShards);
    uint64_t TotalBreaks = 0;
    for (const SequenceHistogram &H : Hists)
      TotalBreaks += H.Breaks;
    Breaks.add(TotalBreaks);
  }
  return Hists;
}

//===----------------------------------------------------------------------===//
// The per-site counting pipeline
//===----------------------------------------------------------------------===//
//
// The join shape ipbc/Characterize.h consumes: SiteCounts per (member,
// site) instead of one histogram per member. No sequencing is involved —
// every count is a per-site sum — so decomposable members simulate their
// site streams directly (sites fan out across the pool) and global
// members run their usual sequential pass; both tallies are independent
// of Jobs and of the source kind by construction.

template <class Source>
Expected<std::vector<std::vector<SiteCounts>>>
replayDynamicSitesImpl(const Source &Src,
                       const std::vector<DynPredictorConfig> &Panel,
                       unsigned Jobs) {
  std::vector<std::vector<SiteCounts>> Counts(Panel.size());
  if (Panel.size() <= MaxReplayPredictors && Panel.empty())
    return Counts;

  timetrace::Span ReplaySpan("replay.dynamic.sites",
                             std::to_string(Panel.size()) + " predictors");
  const unsigned J = Jobs == 0 ? ThreadPool::defaultConcurrency() : Jobs;

  EventIndex Ix;
  if (std::optional<Diag> D = buildIndex(Src, Panel, Ix))
    return *std::move(D);

  for (std::vector<SiteCounts> &C : Counts)
    C.assign(Ix.NumSites, SiteCounts());
  if (Ix.NumEvents == 0)
    return Counts;

  std::vector<size_t> Decomp, Global;
  for (size_t P = 0; P < Panel.size(); ++P)
    (Panel[P].perSiteDecomposable() ? Decomp : Global).push_back(P);

  // Decomposable members: simulate each site's stream and tally misses
  // in place — no occurrence bookkeeping needed, counts are order-free.
  if (!Decomp.empty()) {
    std::vector<DynamicPredictor> Preds;
    Preds.reserve(Decomp.size());
    for (size_t D : Decomp)
      Preds.emplace_back(Panel[D], Ix.NumSites);
    const size_t Groups = std::min<size_t>(Ix.NumSites, 64);
    parallelFor(J, Groups, [&](size_t G) {
      const uint32_t Lo = static_cast<uint32_t>(G * Ix.NumSites / Groups);
      const uint32_t Hi =
          static_cast<uint32_t>((G + 1) * Ix.NumSites / Groups);
      for (uint32_t Site = Lo; Site < Hi; ++Site) {
        const SiteStream &S = Ix.Sites[Site];
        for (size_t DI = 0; DI < Decomp.size(); ++DI) {
          DynamicPredictor &P = Preds[DI];
          SiteCounts &C = Counts[Decomp[DI]][Site];
          for (uint64_t K = 0; K < S.Count; ++K) {
            const bool Taken = S.taken(K);
            if (Taken)
              ++C.Taken;
            else
              ++C.Fallthru;
            if (P.predictAndUpdate(Site, Taken) != Taken)
              ++C.Mispredicts;
          }
        }
      }
    });
  }

  // Global members: the one sequential pass each member needs anyway,
  // fanned out across the pool.
  std::vector<std::optional<Diag>> GlobalErrs(Global.size());
  parallelFor(J, Global.size(), [&](size_t GI) {
    DynamicPredictor P(Panel[Global[GI]], Ix.NumSites);
    std::vector<SiteCounts> &C = Counts[Global[GI]];
    GlobalErrs[GI] = Src.forEachEvent(
        [&](uint32_t Idx, bool Taken, uint64_t) {
          SiteCounts &SC = C[Idx];
          if (Taken)
            ++SC.Taken;
          else
            ++SC.Fallthru;
          if (P.predictAndUpdate(Idx, Taken) != Taken)
            ++SC.Mispredicts;
        });
  });
  for (std::optional<Diag> &E : GlobalErrs)
    if (E)
      return rejectedDyn(*std::move(E));
  return Counts;
}

} // namespace

Expected<std::vector<SequenceHistogram>>
bpfree::replayTraceDynamic(const BranchTrace &Trace,
                           const std::vector<DynPredictorConfig> &Panel,
                           unsigned Jobs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  ResidentEventSource Src{Trace};
  return replayDynamicImpl(Src, Panel, Jobs);
}

Expected<std::vector<SequenceHistogram>>
bpfree::replayStoreDynamic(const TraceStoreReader &Store,
                           const std::vector<DynPredictorConfig> &Panel,
                           unsigned Jobs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  StoreEventSource Src{Store};
  return replayDynamicImpl(Src, Panel, Jobs);
}

Expected<std::vector<std::vector<SiteCounts>>>
bpfree::replayTraceDynamicSites(const BranchTrace &Trace,
                                const std::vector<DynPredictorConfig> &Panel,
                                unsigned Jobs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  ResidentEventSource Src{Trace};
  return replayDynamicSitesImpl(Src, Panel, Jobs);
}

Expected<std::vector<std::vector<SiteCounts>>>
bpfree::replayStoreDynamicSites(const TraceStoreReader &Store,
                                const std::vector<DynPredictorConfig> &Panel,
                                unsigned Jobs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  StoreEventSource Src{Store};
  return replayDynamicSitesImpl(Src, Panel, Jobs);
}
