//===- ipbc/DynamicReplay.cpp - Dynamic-predictor trace replay ------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Pipeline (see the header for the why):
//
//   1. Build pass (sequential, one decode of the packed stream): per-site
//      outcome bitstreams in first-occurrence order, plus one snapshot
//      per trace shard — the chunk index where the shard starts, how many
//      words of that chunk belong to the previous shard's straddling
//      escape record, the instruction count, and every site's occurrence
//      count at that point. A shard owns the events whose HEAD word lies
//      in its chunk range.
//
//   2. Site pass (parallel over site groups): per-site-decomposable panel
//      members simulate each site's stream independently, emitting
//      per-site misprediction bitstreams. Distinct sites touch disjoint
//      predictor state, so one shared predictor object per member is
//      driven from many threads without synchronization.
//
//   3. Shard pass (parallel over shards): re-decode each shard's events
//      in trace order, look each event's misprediction bit up by (site,
//      occurrence), and accumulate per-shard histogram partials — bucket
//      arrays for sequences both of whose endpoints lie inside the
//      shard, plus the first/last break instruction counts for the
//      sequences that cross shard boundaries.
//
//   4. Merge (serial, in shard order): stitch partials into the exact
//      histogram the sequential loop produces — the cross-shard sequence
//      ending at a shard's first break is bucketed against the previous
//      shard's last break, interior buckets add element-wise, and the
//      trailing unbroken sequence closes against totalInstrs without
//      counting a break, exactly like replayTrace.
//
//   Global-state members skip 2-4 and run one sequential pass each
//   (parallel across members).
//
// Every count is a u64 add, the shard layout depends only on the trace,
// and phases are barriers — so histograms are bit-identical across Jobs
// values and for resident vs. disk-backed sources.
//
//===----------------------------------------------------------------------===//

#include "ipbc/DynamicReplay.h"

#include "ipbc/TraceReplay.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/TimeTrace.h"
#include "vm/TraceStore.h"

#include <algorithm>
#include <cassert>

using namespace bpfree;

namespace {

/// Counts a rejected replay request before returning the Diag (same
/// contract as the static entry points: run manifests surface refusals
/// under "replay.rejected").
Diag rejectedDyn(Diag D) {
  static metrics::Counter &Rejected = metrics::counter("replay.rejected");
  Rejected.add();
  return D;
}

Diag dynPanelSizeDiag(size_t Got) {
  return rejectedDyn(
      Diag(ErrorKind::InvalidArgument,
           "dynamic replay panel has " + std::to_string(Got) +
               " predictors but replay supports at most " +
               std::to_string(MaxReplayPredictors) +
               "; split the panel across multiple replay calls"));
}

/// One branch site's outcome stream, bit-packed in occurrence order
/// (bit k = the site's k-th execution was taken).
struct SiteStream {
  std::vector<uint64_t> Bits;
  uint64_t Count = 0;
};

/// Where one trace shard starts. A shard owns the events whose packed
/// HEAD word lies in chunks [ChunkBegin, next shard's ChunkBegin); the
/// first SkipWords words of chunk ChunkBegin are the tail of an escape
/// record headed in the previous shard and belong to it.
struct ShardStart {
  size_t ChunkBegin = 0;
  uint32_t SkipWords = 0;
  uint64_t StartInstr = 0;        ///< IC after the previous shard's events
  std::vector<uint64_t> SiteOcc;  ///< per-site occurrence count at entry
};

/// The once-decoded per-site event-stream index of one trace.
struct DynIndex {
  uint32_t NumSites = 0;
  uint64_t NumEvents = 0;
  uint64_t TotalInstrs = 0;
  size_t NumChunks = 0;
  std::vector<SiteStream> Sites;
  std::vector<ShardStart> Shards;
};

/// Deterministic shard layout: boundaries depend only on the chunk
/// count, never on Jobs or the source kind.
std::vector<size_t> shardChunkStarts(size_t NumChunks) {
  const size_t S =
      NumChunks == 0 ? 0 : std::min(MaxDynamicReplayShards, NumChunks);
  std::vector<size_t> Starts(S);
  for (size_t I = 0; I < S; ++I)
    Starts[I] = I * NumChunks / S;
  return Starts;
}

/// The build pass's inline stream decoder. TraceDecoder carries escape
/// records across feeds internally, but the build pass must OBSERVE the
/// carry — a shard snapshot at a chunk boundary needs to know how many
/// words of the new chunk complete the previous chunk's record — so it
/// mirrors TraceDecoder::feed with the pending state held here.
class IndexBuilder {
public:
  IndexBuilder(DynIndex &Ix, const std::vector<size_t> &ShardStarts)
      : Ix(Ix), Starts(ShardStarts) {}

  void feedChunk(const uint32_t *W, uint64_t N) {
    uint64_t I = 0;
    if (PendingWords != 0) {
      while (PendingWords < TraceDecoder::EscapeWords && I < N)
        Pending[PendingWords++] = W[I++];
      if (PendingWords < TraceDecoder::EscapeWords) {
        ++Chunk;
        return; // torn mid-record; validation rejects such traces
      }
      event(Pending[1], (Pending[0] & 1) != 0,
            (static_cast<uint64_t>(Pending[3]) << 32) | Pending[2]);
      PendingWords = 0;
    }
    // Snapshot AFTER completing a carried record: its head word is in
    // the previous chunk, so the event belongs to the previous shard and
    // the new shard starts I words in.
    if (NextShard < Starts.size() && Starts[NextShard] == Chunk)
      snapshot(I);
    while (I < N) {
      const uint32_t Head = W[I];
      const bool Taken = (Head & 1) != 0;
      const uint32_t DeltaField = Head >> (TraceDecoder::IdxBits + 1);
      if (DeltaField != TraceDecoder::EscapeDelta) [[likely]] {
        event((Head >> 1) & TraceDecoder::MaxCompactIdx, Taken,
              static_cast<uint64_t>(DeltaField));
        ++I;
        continue;
      }
      if (I + TraceDecoder::EscapeWords <= N) {
        event(W[I + 1], Taken,
              (static_cast<uint64_t>(W[I + 3]) << 32) | W[I + 2]);
        I += TraceDecoder::EscapeWords;
        continue;
      }
      while (I < N)
        Pending[PendingWords++] = W[I++];
    }
    ++Chunk;
  }

  /// Fixes NumSites/NumEvents and pads every snapshot's occurrence
  /// vector to the final site count (sites first seen after a snapshot
  /// had occurrence 0 there).
  void finish() {
    Ix.NumSites = static_cast<uint32_t>(Ix.Sites.size());
    Ix.NumEvents = Events;
    for (ShardStart &Sh : Ix.Shards)
      Sh.SiteOcc.resize(Ix.NumSites, 0);
  }

private:
  void event(uint32_t Idx, bool Taken, uint64_t Delta) {
    IC += Delta;
    ++Events;
    if (Idx >= Ix.Sites.size())
      Ix.Sites.resize(Idx + 1);
    SiteStream &S = Ix.Sites[Idx];
    if ((S.Count & 63) == 0)
      S.Bits.push_back(0);
    S.Bits.back() |= static_cast<uint64_t>(Taken) << (S.Count & 63);
    ++S.Count;
  }

  void snapshot(uint64_t SkipWords) {
    ShardStart Sh;
    Sh.ChunkBegin = Chunk;
    Sh.SkipWords = static_cast<uint32_t>(SkipWords);
    Sh.StartInstr = IC;
    Sh.SiteOcc.resize(Ix.Sites.size());
    for (size_t S = 0; S < Ix.Sites.size(); ++S)
      Sh.SiteOcc[S] = Ix.Sites[S].Count;
    Ix.Shards.push_back(std::move(Sh));
    ++NextShard;
  }

  DynIndex &Ix;
  const std::vector<size_t> &Starts;
  uint32_t Pending[TraceDecoder::EscapeWords];
  uint32_t PendingWords = 0;
  size_t Chunk = 0;
  size_t NextShard = 0;
  uint64_t IC = 0;
  uint64_t Events = 0;
};

//===----------------------------------------------------------------------===//
// Event sources
//===----------------------------------------------------------------------===//
//
// What the pipeline needs from a trace source, resident or on disk:
// metadata, a serial chunk walk (build pass), a shard-scoped word walk
// (shard pass; called concurrently, so the store flavor opens its own
// stream cursor per call), and a full decoded-event walk (global
// members; also concurrent).

struct ResidentDynSource {
  const BranchTrace &T;

  uint64_t totalInstrs() const { return T.totalInstrs(); }
  size_t numChunks() const {
    assert(T.spilledChunks() == 0 &&
           "resident decode of a spilled trace; replay from its store");
    return static_cast<size_t>((T.storedWordCount() + BranchTrace::ChunkWords -
                                1) /
                               BranchTrace::ChunkWords);
  }
  uint64_t chunkLen(size_t C) const {
    return std::min<uint64_t>(BranchTrace::ChunkWords,
                              T.storedWordCount() -
                                  static_cast<uint64_t>(C) *
                                      BranchTrace::ChunkWords);
  }

  template <class Fn> std::optional<Diag> forEachChunkSerial(Fn &&F) const {
    const size_t N = numChunks();
    for (size_t C = 0; C < N; ++C)
      F(T.chunkWords(C), chunkLen(C));
    return std::nullopt;
  }

  /// Feeds the words of shard [Begin, End) — skipping \p Skip carried
  /// words of chunk Begin, appending \p Tail carried words of chunk End.
  template <class Fn>
  std::optional<Diag> walkShardWords(size_t Begin, size_t End, uint32_t Skip,
                                     uint32_t Tail, Fn &&OnWords) const {
    for (size_t C = Begin; C < End; ++C) {
      const uint32_t *W = T.chunkWords(C);
      const uint64_t N = chunkLen(C);
      if (C == Begin)
        OnWords(W + Skip, N - Skip);
      else
        OnWords(W, N);
    }
    if (Tail != 0)
      OnWords(T.chunkWords(End), Tail);
    return std::nullopt;
  }

  template <class Fn> std::optional<Diag> forEachEvent(Fn &&F) const {
    T.forEach(F);
    return std::nullopt;
  }
};

struct StoreDynSource {
  const TraceStoreReader &R;

  uint64_t totalInstrs() const { return R.totalInstrs(); }
  size_t numChunks() const { return static_cast<size_t>(R.numChunks()); }

  template <class Fn> std::optional<Diag> forEachChunkSerial(Fn &&F) const {
    TraceStream S;
    if (std::optional<Diag> D = R.openStream(S))
      return D;
    const uint32_t *W = nullptr;
    for (;;) {
      Expected<uint64_t> N = S.next(W);
      if (!N)
        return N.takeError();
      if (*N == 0)
        return std::nullopt;
      F(W, *N);
    }
  }

  template <class Fn>
  std::optional<Diag> walkShardWords(size_t Begin, size_t End, uint32_t Skip,
                                     uint32_t Tail, Fn &&OnWords) const {
    TraceStream S;
    if (std::optional<Diag> D = R.openStream(S))
      return D;
    const uint32_t *W = nullptr;
    for (size_t C = 0;; ++C) {
      Expected<uint64_t> N = S.next(W);
      if (!N)
        return N.takeError();
      if (*N == 0)
        return std::nullopt;
      if (C < Begin)
        continue;
      if (C < End) {
        if (C == Begin)
          OnWords(W + Skip, *N - Skip);
        else
          OnWords(W, *N);
        continue;
      }
      if (Tail != 0)
        OnWords(W, Tail);
      return std::nullopt;
    }
  }

  template <class Fn> std::optional<Diag> forEachEvent(Fn &&F) const {
    TraceDecoder D;
    return forEachChunkSerial(
        [&](const uint32_t *W, uint64_t N) { D.feed(W, N, F); });
  }
};

//===----------------------------------------------------------------------===//
// Shard partials and the serial merge
//===----------------------------------------------------------------------===//

/// Histogram contribution of one shard for one panel member. Sequences
/// wholly inside the shard land in the bucket arrays; the boundary
/// sequences are carried as the first/last break positions and resolved
/// by the serial merge.
struct ShardPartial {
  bool HasBreak = false;
  uint64_t FirstBreak = 0;
  uint64_t LastBreak = 0;
  uint64_t Breaks = 0;
  std::vector<uint64_t> NumSeq;
  std::vector<uint64_t> SumLen;

  void init() {
    NumSeq.assign(SequenceHistogram::NumBuckets, 0);
    SumLen.assign(SequenceHistogram::NumBuckets, 0);
  }

  void onBreak(uint64_t IC) {
    if (HasBreak) {
      const uint64_t Len = IC - LastBreak;
      const size_t B = SequenceHistogram::bucketFor(Len);
      ++NumSeq[B];
      SumLen[B] += Len;
    } else {
      HasBreak = true;
      FirstBreak = IC;
    }
    LastBreak = IC;
    ++Breaks;
  }
};

/// Stitches per-shard partials (in shard order) into the histogram the
/// sequential replay loop produces for the same misprediction stream.
SequenceHistogram mergePartials(const std::vector<const ShardPartial *> &Parts,
                                uint64_t NumEvents, uint64_t TotalInstrs) {
  SequenceHistogram H;
  uint64_t LastBreak = 0;
  for (const ShardPartial *P : Parts) {
    if (!P->HasBreak)
      continue;
    const uint64_t Len = P->FirstBreak - LastBreak;
    const size_t B = SequenceHistogram::bucketFor(Len);
    ++H.NumSequences[B];
    H.SumLengths[B] += Len;
    for (size_t I = 0; I < SequenceHistogram::NumBuckets; ++I) {
      H.NumSequences[I] += P->NumSeq[I];
      H.SumLengths[I] += P->SumLen[I];
    }
    H.Breaks += P->Breaks;
    LastBreak = P->LastBreak;
  }
  if (TotalInstrs > LastBreak) {
    const uint64_t Len = TotalInstrs - LastBreak;
    const size_t B = SequenceHistogram::bucketFor(Len);
    ++H.NumSequences[B];
    H.SumLengths[B] += Len;
  }
  // The recorded sequences partition [0, totalInstrs), same as the
  // sequential loop's record() accumulation.
  H.TotalInstrs = TotalInstrs;
  H.BranchExecs = NumEvents;
  return H;
}

//===----------------------------------------------------------------------===//
// The pipeline
//===----------------------------------------------------------------------===//

template <class Source>
Expected<std::vector<SequenceHistogram>>
replayDynamicImpl(const Source &Src,
                  const std::vector<DynPredictorConfig> &Panel,
                  unsigned Jobs) {
  if (Panel.size() > MaxReplayPredictors)
    return dynPanelSizeDiag(Panel.size());
  for (const DynPredictorConfig &C : Panel)
    if (std::optional<Diag> D = validateDynConfig(C))
      return rejectedDyn(*D);

  std::vector<SequenceHistogram> Hists(Panel.size());
  if (Panel.empty())
    return Hists;

  timetrace::Span ReplaySpan("replay.dynamic",
                             std::to_string(Panel.size()) + " predictors");
  const unsigned J = Jobs == 0 ? ThreadPool::defaultConcurrency() : Jobs;
  const uint64_t TotalInstrs = Src.totalInstrs();

  // ---- 1. Build pass: per-site streams + shard snapshots.
  DynIndex Ix;
  Ix.NumChunks = Src.numChunks();
  Ix.TotalInstrs = TotalInstrs;
  const std::vector<size_t> Starts = shardChunkStarts(Ix.NumChunks);
  {
    IndexBuilder B(Ix, Starts);
    if (std::optional<Diag> D = Src.forEachChunkSerial(
            [&](const uint32_t *W, uint64_t N) { B.feedChunk(W, N); }))
      return rejectedDyn(*D);
    B.finish();
  }

  std::vector<size_t> Decomp, Global;
  for (size_t P = 0; P < Panel.size(); ++P)
    (Panel[P].perSiteDecomposable() ? Decomp : Global).push_back(P);

  if (Ix.NumEvents == 0) {
    // No branches executed: every member sees one unbroken sequence.
    for (SequenceHistogram &H : Hists)
      if (TotalInstrs > 0)
        H.record(TotalInstrs);
    return Hists;
  }

  // ---- 2. Site pass: decomposable members' per-site miss bitstreams.
  // Miss[D][Site] has the same word layout as the site's outcome stream.
  std::vector<std::vector<std::vector<uint64_t>>> Miss(Decomp.size());
  if (!Decomp.empty()) {
    std::vector<DynamicPredictor> Preds;
    Preds.reserve(Decomp.size());
    for (size_t D : Decomp)
      Preds.emplace_back(Panel[D], Ix.NumSites);
    for (size_t DI = 0; DI < Decomp.size(); ++DI) {
      Miss[DI].resize(Ix.NumSites);
      for (uint32_t S = 0; S < Ix.NumSites; ++S)
        Miss[DI][S].assign(Ix.Sites[S].Bits.size(), 0);
    }
    const size_t Groups = std::min<size_t>(Ix.NumSites, 64);
    parallelFor(J, Groups, [&](size_t G) {
      const uint32_t Lo = static_cast<uint32_t>(G * Ix.NumSites / Groups);
      const uint32_t Hi =
          static_cast<uint32_t>((G + 1) * Ix.NumSites / Groups);
      for (uint32_t Site = Lo; Site < Hi; ++Site) {
        const SiteStream &S = Ix.Sites[Site];
        for (size_t DI = 0; DI < Decomp.size(); ++DI) {
          // Shared predictor object, disjoint per-site state: safe by
          // perSiteDecomposable()'s contract.
          DynamicPredictor &P = Preds[DI];
          std::vector<uint64_t> &Out = Miss[DI][Site];
          for (uint64_t K = 0; K < S.Count; ++K) {
            const bool Taken = (S.Bits[K >> 6] >> (K & 63)) & 1;
            const bool Pred = P.predictAndUpdate(Site, Taken);
            Out[K >> 6] |= static_cast<uint64_t>(Pred != Taken) << (K & 63);
          }
        }
      }
    });
  }

  // ---- 3. Shard pass: sequence the miss bits back into partials.
  const size_t NumShards = Ix.Shards.size();
  std::vector<ShardPartial> Partials(Decomp.size() * NumShards);
  std::vector<std::optional<Diag>> ShardErrs(NumShards);
  if (!Decomp.empty()) {
    parallelFor(J, NumShards, [&](size_t ShIdx) {
      const ShardStart &Sh = Ix.Shards[ShIdx];
      const bool Last = ShIdx + 1 == NumShards;
      const size_t End = Last ? Ix.NumChunks : Ix.Shards[ShIdx + 1].ChunkBegin;
      const uint32_t Tail = Last ? 0 : Ix.Shards[ShIdx + 1].SkipWords;
      std::vector<ShardPartial *> Parts(Decomp.size());
      for (size_t DI = 0; DI < Decomp.size(); ++DI) {
        Parts[DI] = &Partials[DI * NumShards + ShIdx];
        Parts[DI]->init();
      }
      uint64_t IC = Sh.StartInstr;
      std::vector<uint64_t> Occ = Sh.SiteOcc;
      TraceDecoder D;
      const auto OnEvent = [&](uint32_t Idx, bool, uint64_t Delta) {
        IC += Delta;
        const uint64_t K = Occ[Idx]++;
        const size_t WordI = static_cast<size_t>(K >> 6);
        const uint64_t Bit = 1ull << (K & 63);
        for (size_t DI = 0; DI < Decomp.size(); ++DI)
          if (Miss[DI][Idx][WordI] & Bit)
            Parts[DI]->onBreak(IC);
      };
      ShardErrs[ShIdx] = Src.walkShardWords(
          Sh.ChunkBegin, End, Sh.SkipWords, Tail,
          [&](const uint32_t *W, uint64_t N) { D.feed(W, N, OnEvent); });
    });
    for (std::optional<Diag> &E : ShardErrs)
      if (E)
        return rejectedDyn(*std::move(E));
    // ---- 4. Serial ordered merge.
    for (size_t DI = 0; DI < Decomp.size(); ++DI) {
      std::vector<const ShardPartial *> Parts(NumShards);
      for (size_t ShIdx = 0; ShIdx < NumShards; ++ShIdx)
        Parts[ShIdx] = &Partials[DI * NumShards + ShIdx];
      Hists[Decomp[DI]] = mergePartials(Parts, Ix.NumEvents, TotalInstrs);
    }
  }

  // ---- Global-state members: one sequential pass each, fanned out
  // across the pool (each store pass streams through its own cursor).
  std::vector<std::optional<Diag>> GlobalErrs(Global.size());
  parallelFor(J, Global.size(), [&](size_t GI) {
    DynamicPredictor P(Panel[Global[GI]], Ix.NumSites);
    SequenceHistogram H;
    uint64_t IC = 0;
    uint64_t LastBreak = 0;
    GlobalErrs[GI] = Src.forEachEvent(
        [&](uint32_t Idx, bool Taken, uint64_t Delta) {
          IC += Delta;
          ++H.BranchExecs;
          if (P.predictAndUpdate(Idx, Taken) != Taken) {
            H.record(IC - LastBreak);
            ++H.Breaks;
            LastBreak = IC;
          }
        });
    if (TotalInstrs > LastBreak)
      H.record(TotalInstrs - LastBreak);
    Hists[Global[GI]] = std::move(H);
  });
  for (std::optional<Diag> &E : GlobalErrs)
    if (E)
      return rejectedDyn(*std::move(E));

  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.dynamic.passes");
    static metrics::Counter &Events = metrics::counter("replay.dynamic.events");
    static metrics::Counter &Breaks = metrics::counter("replay.dynamic.breaks");
    static metrics::Counter &Preds =
        metrics::counter("replay.dynamic.predictors");
    static metrics::Counter &Shards = metrics::counter("replay.dynamic.shards");
    Passes.add();
    Events.add(Ix.NumEvents);
    Preds.add(Panel.size());
    Shards.add(NumShards);
    uint64_t TotalBreaks = 0;
    for (const SequenceHistogram &H : Hists)
      TotalBreaks += H.Breaks;
    Breaks.add(TotalBreaks);
  }
  return Hists;
}

} // namespace

Expected<std::vector<SequenceHistogram>>
bpfree::replayTraceDynamic(const BranchTrace &Trace,
                           const std::vector<DynPredictorConfig> &Panel,
                           unsigned Jobs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  ResidentDynSource Src{Trace};
  return replayDynamicImpl(Src, Panel, Jobs);
}

Expected<std::vector<SequenceHistogram>>
bpfree::replayStoreDynamic(const TraceStoreReader &Store,
                           const std::vector<DynPredictorConfig> &Panel,
                           unsigned Jobs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  StoreDynSource Src{Store};
  return replayDynamicImpl(Src, Panel, Jobs);
}
