//===- ipbc/TraceReplay.cpp - Trace-driven predictor evaluation -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipbc/TraceReplay.h"

#include "support/Metrics.h"
#include "support/Simd.h"
#include "support/ThreadPool.h"
#include "support/TimeTrace.h"
#include "vm/TraceStore.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

std::vector<uint8_t> bpfree::predictorDirections(const Module &M,
                                                 const StaticPredictor &P) {
  const std::vector<uint32_t> Offsets = flatBlockOffsets(M);
  std::vector<uint8_t> Dirs(Offsets.back(), 0xFF);
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = *M.getFunction(F);
    for (const auto &BB : Fn)
      if (BB->isCondBranch())
        Dirs[Offsets[F] + BB->getId()] =
            static_cast<uint8_t>(P.predict(*BB));
  }
  return Dirs;
}

namespace {

/// Counts a rejected replay request before returning the Diag, so run
/// manifests surface how many replays were refused.
Diag rejected(Diag D) {
  static metrics::Counter &Rejected = metrics::counter("replay.rejected");
  Rejected.add();
  return D;
}

/// Diag for a direction array whose size does not match the trace's
/// module (Blocks flat blocks).
Diag dirSizeDiag(size_t Got, size_t Blocks) {
  return rejected(
      Diag(ErrorKind::InvalidArgument,
           "direction array has " + std::to_string(Got) +
               " entries but the trace's module has " +
               std::to_string(Blocks) + " blocks"));
}

/// Diag for a predictor panel wider than the replay kernel's lane limit.
/// Checked on the TOTAL panel size at every fused entry point, before
/// any parallel group split, so acceptance never depends on Jobs.
Diag panelSizeDiag(size_t Got) {
  return rejected(
      Diag(ErrorKind::InvalidArgument,
           "replay panel has " + std::to_string(Got) +
               " predictors but the replay kernel supports at most " +
               std::to_string(MaxReplayPredictors) +
               "; split the panel across multiple replay calls"));
}

/// Process-wide kernel-selection knob (see the header).
std::atomic<ReplayKernel> GReplayKernel{ReplayKernel::Wide};

/// Event sources the replay kernels are generic over: numEvents(),
/// totalInstrs(), a single-pass forEach(F) over decoded events, and a
/// single-pass forEachWords(F) over raw packed stream words (runs of
/// consecutive words; the widened kernel decodes inline because a
/// compact word's low bits are directly its misprediction-table key).
/// The resident source is a thin view of a BranchTrace; the store source
/// streams verified chunks off disk, recording (not throwing) the first
/// stream failure so the kernel's caller can surface it after the pass.
struct ResidentTraceSource {
  const BranchTrace &T;
  uint64_t numEvents() const { return T.numEvents(); }
  uint64_t totalInstrs() const { return T.totalInstrs(); }
  bool failed() const { return false; }
  template <class Fn> void forEach(Fn &&F) { T.forEach(F); }
  template <class Fn> void forEachWords(Fn &&F) {
    assert(T.spilledChunks() == 0 &&
           "resident decode of a spilled trace; replay from its store");
    uint64_t Remaining = T.storedWordCount();
    for (size_t C = 0; Remaining > 0; ++C) {
      const uint64_t N =
          std::min<uint64_t>(BranchTrace::ChunkWords, Remaining);
      F(T.chunkWords(C), N);
      Remaining -= N;
    }
  }
};

class StoreTraceSource {
public:
  explicit StoreTraceSource(const TraceStoreReader &R) : R(R) {}
  std::optional<Diag> open() { return R.openStream(S); }
  uint64_t numEvents() const { return R.numEvents(); }
  uint64_t totalInstrs() const { return R.totalInstrs(); }
  bool failed() const { return Err.has_value(); }
  Diag takeError() { return *std::move(Err); }
  template <class Fn> void forEach(Fn &&F) {
    TraceDecoder D;
    forEachWords([&](const uint32_t *W, uint64_t N) { D.feed(W, N, F); });
  }
  template <class Fn> void forEachWords(Fn &&F) {
    const uint32_t *W = nullptr;
    for (;;) {
      Expected<uint64_t> N = S.next(W);
      if (!N) {
        Err = N.takeError();
        return;
      }
      if (*N == 0)
        return;
      F(W, *N);
    }
  }

private:
  const TraceStoreReader &R;
  TraceStream S;
  std::optional<Diag> Err;
};

/// The majority rule over per-branch outcome counts (indexed
/// [2 * flat index + taken]): ties predict taken, exactly
/// PerfectPredictor's rule, so a never-executed branch (0 >= 0) predicts
/// taken there too. Shared by the resident and streaming perfect-
/// direction derivations so they cannot drift.
std::vector<uint8_t> majorityDirections(const Module &M,
                                        const std::vector<uint64_t> &Counts) {
  const std::vector<uint32_t> Offsets = flatBlockOffsets(M);
  std::vector<uint8_t> Dirs(Offsets.back(), 0xFF);
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = *M.getFunction(F);
    for (const auto &BB : Fn)
      if (BB->isCondBranch()) {
        const size_t I = Offsets[F] + BB->getId();
        Dirs[I] = static_cast<uint8_t>(
            Counts[2 * I + 1] >= Counts[2 * I] ? DirTaken : DirFallthru);
      }
  }
  return Dirs;
}

/// One per-site counting pass, shared by the resident and streaming
/// entry points. Preconditions already checked by the caller:
/// Dirs.size() equals the trace's flat block count.
template <class Source>
std::vector<SiteCounts> siteCountsPass(Source &Src,
                                       const std::vector<uint8_t> &Dirs) {
  std::vector<SiteCounts> Counts(Dirs.size());
  SiteCounts *C = Counts.data();
  const uint8_t *D = Dirs.data();
  Src.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    SiteCounts &S = C[Idx];
    if (Taken)
      ++S.Taken;
    else
      ++S.Fallthru;
    if (D[Idx] != static_cast<uint8_t>(Taken ? DirTaken : DirFallthru))
      ++S.Mispredicts;
  });
  return Counts;
}

} // namespace

void bpfree::setReplayKernel(ReplayKernel K) {
  GReplayKernel.store(K, std::memory_order_relaxed);
}

ReplayKernel bpfree::replayKernel() {
  return GReplayKernel.load(std::memory_order_relaxed);
}

int bpfree::replaySimdPath() { return simd::pathId(); }

std::optional<Diag>
bpfree::validateTraceForReplay(const BranchTrace &Trace) {
  if (Trace.spilling())
    return rejected(Diag(
        ErrorKind::InvalidArgument,
        "cannot replay a spilled trace from memory: its chunks live in "
        "the on-disk store at '" +
            Trace.spillPath() +
            "'; open it with TraceStoreReader and replay from the store"));
  if (!Trace.finalized())
    return rejected(
        Diag(ErrorKind::InvalidArgument,
             "cannot replay an unfinalized trace: the trailing sequence "
             "has no defined end (call finalize() after the run)"));
  if (Trace.overflowed())
    return rejected(Diag(
        ErrorKind::InvalidArgument,
        "cannot replay an overflowed trace: the stored stream is a "
        "truncated prefix (" +
            std::to_string(Trace.numEvents()) + " events stored, " +
            std::to_string(Trace.droppedEvents()) +
            " dropped past the byte cap); recapture with a larger "
            "MaxBytes"));
  return std::nullopt;
}

Expected<std::vector<uint8_t>>
bpfree::perfectDirectionsFromTrace(const BranchTrace &Trace) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const Module &M = Trace.getModule();
  // [2 * flat index + taken] execution counts, accumulated branchlessly.
  std::vector<uint64_t> Counts(
      2 * static_cast<size_t>(flatBlockOffsets(M).back()), 0);
  uint64_t *C = Counts.data();
  Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    ++C[2 * static_cast<size_t>(Idx) + (Taken ? 1 : 0)];
  });
  return majorityDirections(M, Counts);
}

Expected<SequenceHistogram>
bpfree::replayTrace(const BranchTrace &Trace,
                    const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  if (Dirs.size() != Blocks)
    return dirSizeDiag(Dirs.size(), Blocks);
  SequenceHistogram H;
  const uint8_t *D = Dirs.data();
  uint64_t IC = 0;
  uint64_t LastBreak = 0;
  Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
    IC += Delta;
    ++H.BranchExecs;
    const uint8_t Actual =
        static_cast<uint8_t>(Taken ? DirTaken : DirFallthru);
    if (D[Idx] != Actual) {
      // A break in control: close the sequence ending at this branch.
      H.record(IC - LastBreak);
      ++H.Breaks;
      LastBreak = IC;
    }
  });
  // The trailing instructions after the last break form one final
  // (unterminated) sequence — same closing rule as
  // SequenceCollector::finalize, so histograms stay bit-identical.
  if (Trace.totalInstrs() > LastBreak)
    H.record(Trace.totalInstrs() - LastBreak);
  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    static metrics::Counter &Breaks = metrics::counter("replay.breaks");
    Passes.add();
    Events.add(Trace.numEvents());
    Breaks.add(H.Breaks);
  }
  return H;
}

Expected<std::vector<SiteCounts>>
bpfree::replaySiteCounts(const BranchTrace &Trace,
                         const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  if (Dirs.size() != Blocks)
    return dirSizeDiag(Dirs.size(), Blocks);
  ResidentTraceSource Src{Trace};
  std::vector<SiteCounts> Counts = siteCountsPass(Src, Dirs);
  if (metrics::enabled()) {
    static metrics::Counter &Passes =
        metrics::counter("replay.site_passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    Passes.add();
    Events.add(Trace.numEvents());
  }
  return Counts;
}

namespace {

/// The legacy fused kernel (uint32_t bit-rows for panels of at most 32
/// predictors, an interleaved byte matrix beyond), retained behind the
/// ReplayKernel::Narrow32 knob as the differential-testing baseline for
/// the widened kernel below. Fills \p Hists completely (buckets, derived
/// totals, trailing sequence).
template <class Source>
void replayNarrowSource(Source &Src,
                        const std::vector<const std::vector<uint8_t> *> &Dirs,
                        std::vector<SequenceHistogram> &Hists) {
  const size_t P = Dirs.size();
  const size_t Blocks = Dirs[0]->size();
  std::vector<uint64_t> LastBreak(P, 0);
  uint64_t IC = 0;
  // Per-break bookkeeping is the hot path: a full panel averages ~5
  // breaks per decoded event, so replay cost is breaks-bound. Three
  // choices keep each break cheap: (1) Breaks and TotalInstrs are
  // derivable after the pass — Breaks is the number of closed sequences,
  // and the sequences partition [0, totalInstrs()) — so the loop skips
  // those read-modify-writes entirely; (2) each predictor's buckets live
  // in a (count, sum) interleaved scratch row, so closing a sequence
  // touches one cache line instead of two (the split NumSequences /
  // SumLengths arrays sit ~8 KiB apart); (3) the bucket clamp compiles
  // to a cmov, not a branch.
  std::vector<uint64_t> Scratch(P * 2 * SequenceHistogram::NumBuckets, 0);
  uint64_t *S = Scratch.data();
  uint64_t *LB = LastBreak.data();
  auto Close = [&](size_t J) {
    const uint64_t Length = IC - LB[J];
    const size_t Bucket = SequenceHistogram::bucketFor(Length);
    uint64_t *Slot =
        S + J * 2 * SequenceHistogram::NumBuckets + 2 * Bucket;
    ++Slot[0];
    Slot[1] += Length;
    LB[J] = IC;
  };

  if (P <= 32) {
    // Fast path: condense the panel's predictions into one bit-row per
    // block — bit J set iff predictor J predicts taken. Every event
    // lands on a conditional-branch block, whose direction bytes are
    // always DirTaken or DirFallthru, so a byte carries one bit of
    // information and the whole panel fits a uint32_t. The mispredicting
    // lanes of a taken branch are the clear bits (predicted fall-thru),
    // of a not-taken branch the set bits — one 4-byte load and one AND
    // per event, and correct predictions (the overwhelmingly common
    // case) cost no per-predictor work at all.
    std::vector<uint32_t> Rows(Blocks, 0);
    for (size_t J = 0; J < P; ++J) {
      assert(Dirs[J]->size() == Blocks &&
             "direction arrays disagree on size");
      const uint8_t *Src = Dirs[J]->data();
      for (size_t I = 0; I < Blocks; ++I)
        if (Src[I] == static_cast<uint8_t>(DirTaken))
          Rows[I] |= 1u << J;
    }
    const uint32_t Valid =
        P >= 32 ? ~0u : ((1u << P) - 1);
    const uint32_t *R = Rows.data();
    Src.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
      IC += Delta;
      // Branchless select: taken flips every lane (mispredictors are the
      // clear bits), not-taken flips none. Branch outcomes are data and
      // essentially unpredictable, so a conditional here would eat a
      // pipeline flush per event.
      const uint32_t Flip = 0u - static_cast<uint32_t>(Taken);
      uint32_t Mis = (R[Idx] ^ Flip) & Valid;
      if (Mis == 0) [[likely]]
        return;
      do {
        Close(static_cast<size_t>(std::countr_zero(Mis)));
        Mis &= Mis - 1;
      } while (Mis);
    });
  } else {
    // Wide panels: plain interleaved byte matrix with a per-lane loop.
    std::vector<uint8_t> Mat(Blocks * P);
    for (size_t J = 0; J < P; ++J) {
      assert(Dirs[J]->size() == Blocks &&
             "direction arrays disagree on size");
      const uint8_t *Src = Dirs[J]->data();
      for (size_t I = 0; I < Blocks; ++I)
        Mat[I * P + J] = Src[I];
    }
    const uint8_t *M = Mat.data();
    Src.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
      IC += Delta;
      const uint8_t Actual =
          static_cast<uint8_t>(Taken ? DirTaken : DirFallthru);
      const uint8_t *Row = M + static_cast<size_t>(Idx) * P;
      for (size_t J = 0; J < P; ++J)
        if (Row[J] != Actual)
          Close(J);
    });
  }

  for (size_t J = 0; J < P; ++J) {
    SequenceHistogram &H = Hists[J];
    // De-interleave the scratch row into the histogram's split arrays.
    const uint64_t *Row = S + J * 2 * SequenceHistogram::NumBuckets;
    for (size_t B = 0; B < SequenceHistogram::NumBuckets; ++B) {
      H.NumSequences[B] = Row[2 * B];
      H.SumLengths[B] = Row[2 * B + 1];
    }
    // Every decoded event is one executed conditional branch, for every
    // predictor alike; every recorded sequence so far ended in a break.
    H.BranchExecs = Src.numEvents();
    for (uint64_t N : H.NumSequences)
      H.Breaks += N;
    // Same trailing-sequence rule as SequenceCollector::finalize and
    // replayTrace, so histograms stay bit-identical across all paths.
    if (Src.totalInstrs() > LastBreak[J]) {
      const uint64_t Length = Src.totalInstrs() - LastBreak[J];
      const size_t Bucket = SequenceHistogram::bucketFor(Length);
      ++H.NumSequences[Bucket];
      H.SumLengths[Bucket] += Length;
    }
    // The closed sequences plus the trailing one partition the whole
    // execution, so their lengths sum to the run's instruction count.
    H.TotalInstrs = Src.totalInstrs();
  }
}

/// The widened fused kernel: the tentpole replacement for the legacy
/// paths above. Three structural changes over the narrow kernel:
///
///  * Bit-rows are \p W 64-bit words (W = 1, 2, 4 — up to 256 lanes),
///    so the panel ceiling the uint32_t row imposed is gone and wide
///    panels never fall back to the byte matrix's per-lane loop.
///  * Predictions are condensed into premasked per-outcome misprediction
///    tables keyed exactly like the packed event words:
///    MisTab[((Idx << 1) | Taken) * W ..] holds the lanes that mispredict
///    outcome Taken at block Idx. A compact event's low 16 bits ARE that
///    key, so the per-event work is one table load and one SIMD all-zero
///    row test (support/Simd.h) — no field extraction, no flip/mask
///    arithmetic, and no per-lane work when no lane missed (the
///    overwhelmingly common case).
///  * The kernel consumes raw stream words (Source::forEachWords) and
///    decodes inline, carrying escape records across word runs exactly
///    like TraceDecoder::feed — the callback-per-event indirection of
///    forEach costs ~10% at these per-event costs.
///
/// \p Packed selects the scratch layout: one u64 per (lane, bucket) with
/// the close count in the high half and the sum of in-bucket length
/// remainders in the low half (SumLengths reconstructs after the pass as
/// count * bucket_base + remainder_sum), halving the memory the break
/// path touches. Remainders are at most BucketWidth - 1 = 9, so the low
/// half cannot wrap while 9 * numEvents() fits 32 bits; the dispatcher
/// falls back to the unpacked (count, sum) pairs beyond that. The last
/// bucket is open-ended (lengths unbounded), so packed mode closes it
/// into a separate per-lane (count, sum) tail instead.
///
/// Histograms are bit-identical to the narrow kernel and to scalar
/// replayTrace; tests/TraceReplayTest.cpp enforces both differentially.
template <size_t W, bool Packed, class Source>
void replayWideSource(Source &Src,
                      const std::vector<const std::vector<uint8_t> *> &Dirs,
                      std::vector<SequenceHistogram> &Hists) {
  const size_t P = Dirs.size();
  const size_t Blocks = Dirs[0]->size();
  constexpr size_t NumBuckets = SequenceHistogram::NumBuckets;
  constexpr uint64_t BucketWidth = SequenceHistogram::BucketWidth;
  assert(P <= W * 64 && "row width too narrow for the panel");

  std::vector<uint64_t> MisTab(2 * Blocks * W, 0);
  for (size_t J = 0; J < P; ++J) {
    assert(Dirs[J]->size() == Blocks &&
           "direction arrays disagree on size");
    const uint8_t *D = Dirs[J]->data();
    const size_t Word = J / 64;
    const uint64_t Bit = 1ull << (J % 64);
    for (size_t I = 0; I < Blocks; ++I) {
      // A lane predicting taken misses fall-thru outcomes (key bit 0
      // clear); any other byte at an executed branch block is a
      // fall-thru prediction and misses taken outcomes. Only lanes < P
      // are ever set, so the rows need no separate valid mask.
      if (D[I] == static_cast<uint8_t>(DirTaken))
        MisTab[(2 * I + 0) * W + Word] |= Bit;
      else
        MisTab[(2 * I + 1) * W + Word] |= Bit;
    }
  }
  const uint64_t *MT = MisTab.data();

  constexpr size_t SlotWords = Packed ? 1 : 2;
  std::vector<uint64_t> Scratch(P * NumBuckets * SlotWords, 0);
  std::vector<uint64_t> Tail(2 * P, 0); // packed open-ended bucket
  std::vector<uint64_t> LastBreak(P, 0);
  uint64_t IC = 0;
  uint64_t *S = Scratch.data();
  uint64_t *TL = Tail.data();
  uint64_t *LB = LastBreak.data();

  auto Close = [&](size_t J) {
    const uint64_t Length = IC - LB[J];
    LB[J] = IC;
    const size_t Bucket = SequenceHistogram::bucketFor(Length);
    if constexpr (Packed) {
      if (Bucket == NumBuckets - 1) [[unlikely]] {
        ++TL[2 * J];
        TL[2 * J + 1] += Length;
        return;
      }
      S[J * NumBuckets + Bucket] +=
          (1ull << 32) | (Length - Bucket * BucketWidth);
    } else {
      uint64_t *Slot = S + (J * NumBuckets + Bucket) * 2;
      ++Slot[0];
      Slot[1] += Length;
    }
  };

  auto Event = [&](uint64_t Key, uint64_t Delta) {
    IC += Delta;
    const uint64_t *Row = MT + Key * W;
    if (simd::allZero<W>(Row)) [[likely]]
      return;
    for (size_t K = 0; K < W; ++K) {
      uint64_t Mis = Row[K];
      while (Mis) {
        Close(K * 64 + static_cast<size_t>(std::countr_zero(Mis)));
        Mis &= Mis - 1;
      }
    }
  };

  // Inline word decode with escape carry across word runs — the same
  // state machine as TraceDecoder::feed, emitting table keys directly.
  uint32_t Pending[TraceDecoder::EscapeWords];
  uint32_t PendingWords = 0;
  Src.forEachWords([&](const uint32_t *Wd, uint64_t N) {
    constexpr uint32_t KeyMask = (1u << (TraceDecoder::IdxBits + 1)) - 1;
    uint64_t I = 0;
    if (PendingWords != 0) [[unlikely]] {
      while (PendingWords < TraceDecoder::EscapeWords && I < N)
        Pending[PendingWords++] = Wd[I++];
      if (PendingWords < TraceDecoder::EscapeWords)
        return;
      Event((static_cast<uint64_t>(Pending[1]) << 1) | (Pending[0] & 1),
            (static_cast<uint64_t>(Pending[3]) << 32) | Pending[2]);
      PendingWords = 0;
    }
    while (I < N) {
      const uint32_t Head = Wd[I];
      const uint32_t DeltaField = Head >> (TraceDecoder::IdxBits + 1);
      if (DeltaField != TraceDecoder::EscapeDelta) [[likely]] {
        Event(Head & KeyMask, DeltaField);
        ++I;
        continue;
      }
      if (I + TraceDecoder::EscapeWords <= N) {
        Event((static_cast<uint64_t>(Wd[I + 1]) << 1) | (Head & 1),
              (static_cast<uint64_t>(Wd[I + 3]) << 32) | Wd[I + 2]);
        I += TraceDecoder::EscapeWords;
        continue;
      }
      // The escape's tail lives in the next word run; stash the head.
      while (I < N)
        Pending[PendingWords++] = Wd[I++];
    }
  });

  for (size_t J = 0; J < P; ++J) {
    SequenceHistogram &H = Hists[J];
    if constexpr (Packed) {
      const uint64_t *Row = S + J * NumBuckets;
      for (size_t B = 0; B + 1 < NumBuckets; ++B) {
        const uint64_t Count = Row[B] >> 32;
        H.NumSequences[B] = Count;
        H.SumLengths[B] =
            Count * (B * BucketWidth) + (Row[B] & 0xFFFFFFFFull);
      }
      H.NumSequences[NumBuckets - 1] = TL[2 * J];
      H.SumLengths[NumBuckets - 1] = TL[2 * J + 1];
    } else {
      const uint64_t *Row = S + J * NumBuckets * 2;
      for (size_t B = 0; B < NumBuckets; ++B) {
        H.NumSequences[B] = Row[2 * B];
        H.SumLengths[B] = Row[2 * B + 1];
      }
    }
    // Derived totals and the trailing sequence: identical rules to the
    // narrow kernel (see the comments there).
    H.BranchExecs = Src.numEvents();
    for (uint64_t N : H.NumSequences)
      H.Breaks += N;
    if (Src.totalInstrs() > LB[J]) {
      const uint64_t Length = Src.totalInstrs() - LB[J];
      const size_t Bucket = SequenceHistogram::bucketFor(Length);
      ++H.NumSequences[Bucket];
      H.SumLengths[Bucket] += Length;
    }
    H.TotalInstrs = Src.totalInstrs();
  }
}

/// Packed-scratch eligibility (see replayWideSource): per-bucket close
/// counts and remainder sums both stay within their 32-bit halves as
/// long as 9 * numEvents() does.
template <size_t W, class Source>
void replayWideSelect(Source &Src,
                      const std::vector<const std::vector<uint8_t> *> &Dirs,
                      std::vector<SequenceHistogram> &Hists) {
  if (Src.numEvents() <= 0xFFFFFFFFull / (SequenceHistogram::BucketWidth - 1))
    replayWideSource<W, true>(Src, Dirs, Hists);
  else
    replayWideSource<W, false>(Src, Dirs, Hists);
}

/// The fused replay kernel dispatcher, shared by replayTraceFused (which
/// validates its inputs), replayTraceAll (which validates once, before
/// the parallel fan-out), and the streaming replayStore* entry points.
/// Generic over the event source (resident trace or disk stream); a
/// streaming source that fails mid-pass records the Diag for the caller
/// to check — the kernel's partial result is then discarded unread.
/// Preconditions: the trace is finalized and not overflowed (or the
/// store complete), every direction array has exactly as many entries as
/// the trace's module has flat blocks, and the panel is within
/// MaxReplayPredictors (entry points reject wider ones).
template <class Source>
std::vector<SequenceHistogram>
replayFusedSource(Source &Src,
                  const std::vector<const std::vector<uint8_t> *> &Dirs) {
  const size_t P = Dirs.size();
  std::vector<SequenceHistogram> Hists(P);
  if (P == 0)
    return Hists;
  assert(P <= MaxReplayPredictors && "panel checked at the entry points");
  timetrace::Span ReplaySpan("replay.fused",
                             std::to_string(P) + " predictors");
  const size_t RowWords = P <= 64 ? 1 : P <= 128 ? 2 : 4;
  const bool Narrow = replayKernel() == ReplayKernel::Narrow32;
  if (Narrow)
    replayNarrowSource(Src, Dirs, Hists);
  else if (RowWords == 1)
    replayWideSelect<1>(Src, Dirs, Hists);
  else if (RowWords == 2)
    replayWideSelect<2>(Src, Dirs, Hists);
  else
    replayWideSelect<4>(Src, Dirs, Hists);
  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    static metrics::Counter &Breaks = metrics::counter("replay.breaks");
    static metrics::Counter &FusedRows =
        metrics::counter("replay.fused_rows");
    static metrics::Gauge &RowWordsG = metrics::gauge("replay.row_words");
    static metrics::Gauge &SimdPath = metrics::gauge("replay.simd_path");
    uint64_t TotalBreaks = 0;
    for (const SequenceHistogram &H : Hists)
      TotalBreaks += H.Breaks;
    Passes.add();
    Events.add(Src.numEvents());
    Breaks.add(TotalBreaks);
    FusedRows.add(P);
    // Row words of the last fused pass (0 = the legacy kernel ran) and
    // the SIMD path its row test takes (0 scalar, 1 SSE2, 2 AVX2,
    // 3 NEON).
    RowWordsG.set(Narrow ? 0 : RowWords);
    SimdPath.set(static_cast<uint64_t>(simd::pathId()));
  }
  return Hists;
}

/// The resident-trace instantiation, for the existing call sites.
std::vector<SequenceHistogram>
replayFusedUnchecked(const BranchTrace &Trace,
                     const std::vector<const std::vector<uint8_t> *> &Dirs) {
  ResidentTraceSource Src{Trace};
  return replayFusedSource(Src, Dirs);
}

} // namespace

Expected<std::vector<SequenceHistogram>> bpfree::replayTraceFused(
    const BranchTrace &Trace,
    const std::vector<const std::vector<uint8_t> *> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  if (Dirs.size() > MaxReplayPredictors)
    return panelSizeDiag(Dirs.size());
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  for (const std::vector<uint8_t> *D : Dirs)
    if (D->size() != Blocks)
      return dirSizeDiag(D->size(), Blocks);
  return replayFusedUnchecked(Trace, Dirs);
}

Expected<std::vector<SequenceHistogram>> bpfree::replayTraceAll(
    const BranchTrace &Trace,
    const std::vector<const StaticPredictor *> &Predictors, unsigned Jobs) {
  // Validate before resolving directions: a rejected trace (or an
  // oversized panel) should not pay for |Predictors| analysis passes
  // first.
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  if (Predictors.size() > MaxReplayPredictors)
    return panelSizeDiag(Predictors.size());
  // Direction arrays touch the IR and the prediction analyses, which are
  // shared and read-only but not uniformly cheap; resolve them up front
  // so the parallel section is pure replay over private state.
  std::vector<std::vector<uint8_t>> Dirs(Predictors.size());
  for (size_t P = 0; P < Predictors.size(); ++P)
    Dirs[P] = predictorDirections(Trace.getModule(), *Predictors[P]);
  return replayTraceAll(Trace, std::move(Dirs), Jobs);
}

Expected<std::vector<SequenceHistogram>>
bpfree::replayTraceAll(const BranchTrace &Trace,
                       std::vector<std::vector<uint8_t>> Dirs,
                       unsigned Jobs) {
  // Validate once, before any fan-out: the parallel groups then run the
  // unchecked kernel on a trace known to be sound. The panel ceiling is
  // on the TOTAL predictor count, before the group split, so acceptance
  // never depends on Jobs.
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  if (Dirs.size() > MaxReplayPredictors)
    return panelSizeDiag(Dirs.size());
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  for (const std::vector<uint8_t> &D : Dirs)
    if (D.size() != Blocks)
      return dirSizeDiag(D.size(), Blocks);
  const size_t N = Dirs.size();
  std::vector<SequenceHistogram> Hists(N);
  if (N == 0)
    return Hists;
  timetrace::Span ReplaySpan("replay.all",
                             std::to_string(N) + " predictors");
  if (Jobs == 0)
    Jobs = ThreadPool::defaultConcurrency();
  // Split the predictors into one contiguous group per worker; each
  // group is replayed in a single fused pass. Group boundaries never
  // change a histogram, only how the decode cost is shared.
  const size_t Groups = std::max<size_t>(1, std::min<size_t>(Jobs, N));
  parallelFor(static_cast<unsigned>(Groups), Groups, [&](size_t G) {
    const size_t Begin = G * N / Groups;
    const size_t End = (G + 1) * N / Groups;
    std::vector<const std::vector<uint8_t> *> Slice;
    Slice.reserve(End - Begin);
    for (size_t P = Begin; P < End; ++P)
      Slice.push_back(&Dirs[P]);
    std::vector<SequenceHistogram> Part = replayFusedUnchecked(Trace, Slice);
    for (size_t P = Begin; P < End; ++P)
      Hists[P] = std::move(Part[P - Begin]);
  });
  return Hists;
}

//===----------------------------------------------------------------------===//
// Streaming replay from an on-disk trace store
//===----------------------------------------------------------------------===//

std::optional<Diag>
bpfree::validateStoreForReplay(const TraceStoreReader &Store) {
  const TraceStoreStats &S = Store.stats();
  if (S.Recovered || !S.FooterValid)
    return rejected(Diag(
        ErrorKind::CorruptData,
        "cannot replay damaged trace store '" + Store.path() + "': " +
            (S.Detail.empty() ? std::string("store is incomplete")
                              : S.Detail) +
            "; the recovered prefix (" + std::to_string(S.RecoveredEvents) +
            " events) has no defined trailing sequence"));
  if (!Store.complete())
    return rejected(Diag(
        ErrorKind::InvalidArgument,
        "cannot replay trace store '" + Store.path() +
            "': the capture was not finalized before the store was "
            "sealed"));
  return std::nullopt;
}

Expected<std::vector<uint8_t>>
bpfree::perfectDirectionsFromStore(const TraceStoreReader &Store,
                                   const Module &M) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  if (std::optional<Diag> D = Store.requireModule(M))
    return rejected(*std::move(D));
  // [2 * flat index + taken] execution counts, accumulated branchlessly
  // — the same pass as the resident derivation, fed off disk.
  std::vector<uint64_t> Counts(
      2 * static_cast<size_t>(flatBlockOffsets(M).back()), 0);
  uint64_t *C = Counts.data();
  StoreTraceSource Src(Store);
  if (std::optional<Diag> D = Src.open())
    return *std::move(D);
  Src.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    ++C[2 * static_cast<size_t>(Idx) + (Taken ? 1 : 0)];
  });
  if (Src.failed())
    return Src.takeError();
  return majorityDirections(M, Counts);
}

Expected<SequenceHistogram>
bpfree::replayStore(const TraceStoreReader &Store,
                    const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  if (Dirs.size() != Store.numBlocks())
    return dirSizeDiag(Dirs.size(), Store.numBlocks());
  StoreTraceSource Src(Store);
  if (std::optional<Diag> D = Src.open())
    return *std::move(D);
  // One fused pass with a single lane is bit-identical to the scalar
  // replayTrace loop (tests enforce it transitively via the resident
  // fused/scalar equivalence), so the streaming path needs no second
  // scalar kernel.
  const std::vector<const std::vector<uint8_t> *> Slice{&Dirs};
  std::vector<SequenceHistogram> H = replayFusedSource(Src, Slice);
  if (Src.failed())
    return Src.takeError();
  return std::move(H[0]);
}

Expected<std::vector<SequenceHistogram>>
bpfree::replayStoreAll(const TraceStoreReader &Store,
                       std::vector<std::vector<uint8_t>> Dirs,
                       unsigned Jobs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  // Same TOTAL-panel ceiling as the resident replayTraceAll, before the
  // group split.
  if (Dirs.size() > MaxReplayPredictors)
    return panelSizeDiag(Dirs.size());
  const size_t Blocks = Store.numBlocks();
  for (const std::vector<uint8_t> &D : Dirs)
    if (D.size() != Blocks)
      return dirSizeDiag(D.size(), Blocks);
  const size_t N = Dirs.size();
  std::vector<SequenceHistogram> Hists(N);
  if (N == 0)
    return Hists;
  timetrace::Span ReplaySpan("replay.store_all",
                             std::to_string(N) + " predictors");
  if (Jobs == 0)
    Jobs = ThreadPool::defaultConcurrency();
  // The same contiguous-group split as the resident replayTraceAll —
  // group boundaries never change a histogram — but each group walks the
  // file through its own stream cursor, so workers share nothing except
  // the immutable reader. I/O or checksum failures are collected per
  // group and the first one wins; histograms from a failed run are never
  // returned.
  const size_t Groups = std::max<size_t>(1, std::min<size_t>(Jobs, N));
  std::vector<std::optional<Diag>> Errs(Groups);
  parallelFor(static_cast<unsigned>(Groups), Groups, [&](size_t G) {
    const size_t Begin = G * N / Groups;
    const size_t End = (G + 1) * N / Groups;
    std::vector<const std::vector<uint8_t> *> Slice;
    Slice.reserve(End - Begin);
    for (size_t P = Begin; P < End; ++P)
      Slice.push_back(&Dirs[P]);
    StoreTraceSource Src(Store);
    if (std::optional<Diag> D = Src.open()) {
      Errs[G] = std::move(D);
      return;
    }
    std::vector<SequenceHistogram> Part = replayFusedSource(Src, Slice);
    if (Src.failed()) {
      Errs[G] = Src.takeError();
      return;
    }
    for (size_t P = Begin; P < End; ++P)
      Hists[P] = std::move(Part[P - Begin]);
  });
  for (std::optional<Diag> &E : Errs)
    if (E)
      return *std::move(E);
  return Hists;
}

Expected<std::vector<SiteCounts>>
bpfree::replayStoreSiteCounts(const TraceStoreReader &Store,
                              const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  if (Dirs.size() != Store.numBlocks())
    return dirSizeDiag(Dirs.size(), Store.numBlocks());
  StoreTraceSource Src(Store);
  if (std::optional<Diag> D = Src.open())
    return *std::move(D);
  std::vector<SiteCounts> Counts = siteCountsPass(Src, Dirs);
  if (Src.failed())
    return Src.takeError();
  if (metrics::enabled()) {
    static metrics::Counter &Passes =
        metrics::counter("replay.site_passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    Passes.add();
    Events.add(Store.numEvents());
  }
  return Counts;
}
