//===- ipbc/TraceReplay.cpp - Trace-driven predictor evaluation -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipbc/TraceReplay.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/TimeTrace.h"
#include "vm/TraceStore.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

std::vector<uint8_t> bpfree::predictorDirections(const Module &M,
                                                 const StaticPredictor &P) {
  const std::vector<uint32_t> Offsets = flatBlockOffsets(M);
  std::vector<uint8_t> Dirs(Offsets.back(), 0xFF);
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = *M.getFunction(F);
    for (const auto &BB : Fn)
      if (BB->isCondBranch())
        Dirs[Offsets[F] + BB->getId()] =
            static_cast<uint8_t>(P.predict(*BB));
  }
  return Dirs;
}

namespace {

/// Counts a rejected replay request before returning the Diag, so run
/// manifests surface how many replays were refused.
Diag rejected(Diag D) {
  static metrics::Counter &Rejected = metrics::counter("replay.rejected");
  Rejected.add();
  return D;
}

/// Diag for a direction array whose size does not match the trace's
/// module (Blocks flat blocks).
Diag dirSizeDiag(size_t Got, size_t Blocks) {
  return rejected(
      Diag(ErrorKind::InvalidArgument,
           "direction array has " + std::to_string(Got) +
               " entries but the trace's module has " +
               std::to_string(Blocks) + " blocks"));
}

/// Event sources the replay kernels are generic over: numEvents(),
/// totalInstrs(), and a single-pass forEach(F). The resident source is a
/// thin view of a BranchTrace; the store source streams verified chunks
/// off disk through an incremental decoder, recording (not throwing) the
/// first stream failure so the kernel's caller can surface it after the
/// pass.
struct ResidentTraceSource {
  const BranchTrace &T;
  uint64_t numEvents() const { return T.numEvents(); }
  uint64_t totalInstrs() const { return T.totalInstrs(); }
  bool failed() const { return false; }
  template <class Fn> void forEach(Fn &&F) { T.forEach(F); }
};

class StoreTraceSource {
public:
  explicit StoreTraceSource(const TraceStoreReader &R) : R(R) {}
  std::optional<Diag> open() { return R.openStream(S); }
  uint64_t numEvents() const { return R.numEvents(); }
  uint64_t totalInstrs() const { return R.totalInstrs(); }
  bool failed() const { return Err.has_value(); }
  Diag takeError() { return *std::move(Err); }
  template <class Fn> void forEach(Fn &&F) {
    TraceDecoder D;
    const uint32_t *W = nullptr;
    for (;;) {
      Expected<uint64_t> N = S.next(W);
      if (!N) {
        Err = N.takeError();
        return;
      }
      if (*N == 0)
        return;
      D.feed(W, *N, F);
    }
  }

private:
  const TraceStoreReader &R;
  TraceStream S;
  std::optional<Diag> Err;
};

/// The majority rule over per-branch outcome counts (indexed
/// [2 * flat index + taken]): ties predict taken, exactly
/// PerfectPredictor's rule, so a never-executed branch (0 >= 0) predicts
/// taken there too. Shared by the resident and streaming perfect-
/// direction derivations so they cannot drift.
std::vector<uint8_t> majorityDirections(const Module &M,
                                        const std::vector<uint64_t> &Counts) {
  const std::vector<uint32_t> Offsets = flatBlockOffsets(M);
  std::vector<uint8_t> Dirs(Offsets.back(), 0xFF);
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = *M.getFunction(F);
    for (const auto &BB : Fn)
      if (BB->isCondBranch()) {
        const size_t I = Offsets[F] + BB->getId();
        Dirs[I] = static_cast<uint8_t>(
            Counts[2 * I + 1] >= Counts[2 * I] ? DirTaken : DirFallthru);
      }
  }
  return Dirs;
}

/// One per-site counting pass, shared by the resident and streaming
/// entry points. Preconditions already checked by the caller:
/// Dirs.size() equals the trace's flat block count.
template <class Source>
std::vector<SiteCounts> siteCountsPass(Source &Src,
                                       const std::vector<uint8_t> &Dirs) {
  std::vector<SiteCounts> Counts(Dirs.size());
  SiteCounts *C = Counts.data();
  const uint8_t *D = Dirs.data();
  Src.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    SiteCounts &S = C[Idx];
    if (Taken)
      ++S.Taken;
    else
      ++S.Fallthru;
    if (D[Idx] != static_cast<uint8_t>(Taken ? DirTaken : DirFallthru))
      ++S.Mispredicts;
  });
  return Counts;
}

} // namespace

std::optional<Diag>
bpfree::validateTraceForReplay(const BranchTrace &Trace) {
  if (Trace.spilling())
    return rejected(Diag(
        ErrorKind::InvalidArgument,
        "cannot replay a spilled trace from memory: its chunks live in "
        "the on-disk store at '" +
            Trace.spillPath() +
            "'; open it with TraceStoreReader and replay from the store"));
  if (!Trace.finalized())
    return rejected(
        Diag(ErrorKind::InvalidArgument,
             "cannot replay an unfinalized trace: the trailing sequence "
             "has no defined end (call finalize() after the run)"));
  if (Trace.overflowed())
    return rejected(Diag(
        ErrorKind::InvalidArgument,
        "cannot replay an overflowed trace: the stored stream is a "
        "truncated prefix (" +
            std::to_string(Trace.numEvents()) + " events stored, " +
            std::to_string(Trace.droppedEvents()) +
            " dropped past the byte cap); recapture with a larger "
            "MaxBytes"));
  return std::nullopt;
}

Expected<std::vector<uint8_t>>
bpfree::perfectDirectionsFromTrace(const BranchTrace &Trace) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const Module &M = Trace.getModule();
  // [2 * flat index + taken] execution counts, accumulated branchlessly.
  std::vector<uint64_t> Counts(
      2 * static_cast<size_t>(flatBlockOffsets(M).back()), 0);
  uint64_t *C = Counts.data();
  Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    ++C[2 * static_cast<size_t>(Idx) + (Taken ? 1 : 0)];
  });
  return majorityDirections(M, Counts);
}

Expected<SequenceHistogram>
bpfree::replayTrace(const BranchTrace &Trace,
                    const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  if (Dirs.size() != Blocks)
    return dirSizeDiag(Dirs.size(), Blocks);
  SequenceHistogram H;
  const uint8_t *D = Dirs.data();
  uint64_t IC = 0;
  uint64_t LastBreak = 0;
  Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
    IC += Delta;
    ++H.BranchExecs;
    const uint8_t Actual =
        static_cast<uint8_t>(Taken ? DirTaken : DirFallthru);
    if (D[Idx] != Actual) {
      // A break in control: close the sequence ending at this branch.
      H.record(IC - LastBreak);
      ++H.Breaks;
      LastBreak = IC;
    }
  });
  // The trailing instructions after the last break form one final
  // (unterminated) sequence — same closing rule as
  // SequenceCollector::finalize, so histograms stay bit-identical.
  if (Trace.totalInstrs() > LastBreak)
    H.record(Trace.totalInstrs() - LastBreak);
  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    static metrics::Counter &Breaks = metrics::counter("replay.breaks");
    Passes.add();
    Events.add(Trace.numEvents());
    Breaks.add(H.Breaks);
  }
  return H;
}

Expected<std::vector<SiteCounts>>
bpfree::replaySiteCounts(const BranchTrace &Trace,
                         const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  if (Dirs.size() != Blocks)
    return dirSizeDiag(Dirs.size(), Blocks);
  ResidentTraceSource Src{Trace};
  std::vector<SiteCounts> Counts = siteCountsPass(Src, Dirs);
  if (metrics::enabled()) {
    static metrics::Counter &Passes =
        metrics::counter("replay.site_passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    Passes.add();
    Events.add(Trace.numEvents());
  }
  return Counts;
}

namespace {

/// The fused replay kernel, shared by replayTraceFused (which validates
/// its inputs), replayTraceAll (which validates once, before the
/// parallel fan-out), and the streaming replayStore* entry points.
/// Generic over the event source (resident trace or disk stream); a
/// streaming source that fails mid-pass records the Diag for the caller
/// to check — the kernel's partial result is then discarded unread.
/// Preconditions: the trace is finalized and not overflowed (or the
/// store complete), and every direction array has exactly as many
/// entries as the trace's module has flat blocks.
template <class Source>
std::vector<SequenceHistogram>
replayFusedSource(Source &Src,
                  const std::vector<const std::vector<uint8_t> *> &Dirs) {
  const size_t P = Dirs.size();
  std::vector<SequenceHistogram> Hists(P);
  if (P == 0)
    return Hists;
  timetrace::Span ReplaySpan("replay.fused",
                             std::to_string(P) + " predictors");
  const size_t Blocks = Dirs[0]->size();
  std::vector<uint64_t> LastBreak(P, 0);
  uint64_t IC = 0;
  // Per-break bookkeeping is the hot path: a full panel averages ~5
  // breaks per decoded event, so replay cost is breaks-bound. Three
  // choices keep each break cheap: (1) Breaks and TotalInstrs are
  // derivable after the pass — Breaks is the number of closed sequences,
  // and the sequences partition [0, totalInstrs()) — so the loop skips
  // those read-modify-writes entirely; (2) each predictor's buckets live
  // in a (count, sum) interleaved scratch row, so closing a sequence
  // touches one cache line instead of two (the split NumSequences /
  // SumLengths arrays sit ~8 KiB apart); (3) the bucket clamp compiles
  // to a cmov, not a branch.
  std::vector<uint64_t> Scratch(P * 2 * SequenceHistogram::NumBuckets, 0);
  uint64_t *S = Scratch.data();
  uint64_t *LB = LastBreak.data();
  auto Close = [&](size_t J) {
    const uint64_t Length = IC - LB[J];
    const size_t Bucket = SequenceHistogram::bucketFor(Length);
    uint64_t *Slot =
        S + J * 2 * SequenceHistogram::NumBuckets + 2 * Bucket;
    ++Slot[0];
    Slot[1] += Length;
    LB[J] = IC;
  };

  if (P <= 32) {
    // Fast path: condense the panel's predictions into one bit-row per
    // block — bit J set iff predictor J predicts taken. Every event
    // lands on a conditional-branch block, whose direction bytes are
    // always DirTaken or DirFallthru, so a byte carries one bit of
    // information and the whole panel fits a uint32_t. The mispredicting
    // lanes of a taken branch are the clear bits (predicted fall-thru),
    // of a not-taken branch the set bits — one 4-byte load and one AND
    // per event, and correct predictions (the overwhelmingly common
    // case) cost no per-predictor work at all.
    std::vector<uint32_t> Rows(Blocks, 0);
    for (size_t J = 0; J < P; ++J) {
      assert(Dirs[J]->size() == Blocks &&
             "direction arrays disagree on size");
      const uint8_t *Src = Dirs[J]->data();
      for (size_t I = 0; I < Blocks; ++I)
        if (Src[I] == static_cast<uint8_t>(DirTaken))
          Rows[I] |= 1u << J;
    }
    const uint32_t Valid =
        P >= 32 ? ~0u : ((1u << P) - 1);
    const uint32_t *R = Rows.data();
    Src.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
      IC += Delta;
      // Branchless select: taken flips every lane (mispredictors are the
      // clear bits), not-taken flips none. Branch outcomes are data and
      // essentially unpredictable, so a conditional here would eat a
      // pipeline flush per event.
      const uint32_t Flip = 0u - static_cast<uint32_t>(Taken);
      uint32_t Mis = (R[Idx] ^ Flip) & Valid;
      if (Mis == 0) [[likely]]
        return;
      do {
        Close(static_cast<size_t>(std::countr_zero(Mis)));
        Mis &= Mis - 1;
      } while (Mis);
    });
  } else {
    // Wide panels: plain interleaved byte matrix with a per-lane loop.
    std::vector<uint8_t> Mat(Blocks * P);
    for (size_t J = 0; J < P; ++J) {
      assert(Dirs[J]->size() == Blocks &&
             "direction arrays disagree on size");
      const uint8_t *Src = Dirs[J]->data();
      for (size_t I = 0; I < Blocks; ++I)
        Mat[I * P + J] = Src[I];
    }
    const uint8_t *M = Mat.data();
    Src.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
      IC += Delta;
      const uint8_t Actual =
          static_cast<uint8_t>(Taken ? DirTaken : DirFallthru);
      const uint8_t *Row = M + static_cast<size_t>(Idx) * P;
      for (size_t J = 0; J < P; ++J)
        if (Row[J] != Actual)
          Close(J);
    });
  }

  uint64_t TotalBreaks = 0;
  for (size_t J = 0; J < P; ++J) {
    SequenceHistogram &H = Hists[J];
    // De-interleave the scratch row into the histogram's split arrays.
    const uint64_t *Row = S + J * 2 * SequenceHistogram::NumBuckets;
    for (size_t B = 0; B < SequenceHistogram::NumBuckets; ++B) {
      H.NumSequences[B] = Row[2 * B];
      H.SumLengths[B] = Row[2 * B + 1];
    }
    // Every decoded event is one executed conditional branch, for every
    // predictor alike; every recorded sequence so far ended in a break.
    H.BranchExecs = Src.numEvents();
    for (uint64_t N : H.NumSequences)
      H.Breaks += N;
    TotalBreaks += H.Breaks;
    // Same trailing-sequence rule as SequenceCollector::finalize and
    // replayTrace, so histograms stay bit-identical across all paths.
    if (Src.totalInstrs() > LastBreak[J]) {
      const uint64_t Length = Src.totalInstrs() - LastBreak[J];
      const size_t Bucket = SequenceHistogram::bucketFor(Length);
      ++H.NumSequences[Bucket];
      H.SumLengths[Bucket] += Length;
    }
    // The closed sequences plus the trailing one partition the whole
    // execution, so their lengths sum to the run's instruction count.
    H.TotalInstrs = Src.totalInstrs();
  }
  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    static metrics::Counter &Breaks = metrics::counter("replay.breaks");
    static metrics::Counter &FusedRows =
        metrics::counter("replay.fused_rows");
    Passes.add();
    Events.add(Src.numEvents());
    Breaks.add(TotalBreaks);
    FusedRows.add(P);
  }
  return Hists;
}

/// The resident-trace instantiation, for the existing call sites.
std::vector<SequenceHistogram>
replayFusedUnchecked(const BranchTrace &Trace,
                     const std::vector<const std::vector<uint8_t> *> &Dirs) {
  ResidentTraceSource Src{Trace};
  return replayFusedSource(Src, Dirs);
}

} // namespace

Expected<std::vector<SequenceHistogram>> bpfree::replayTraceFused(
    const BranchTrace &Trace,
    const std::vector<const std::vector<uint8_t> *> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  for (const std::vector<uint8_t> *D : Dirs)
    if (D->size() != Blocks)
      return dirSizeDiag(D->size(), Blocks);
  return replayFusedUnchecked(Trace, Dirs);
}

Expected<std::vector<SequenceHistogram>> bpfree::replayTraceAll(
    const BranchTrace &Trace,
    const std::vector<const StaticPredictor *> &Predictors, unsigned Jobs) {
  // Validate before resolving directions: a rejected trace should not
  // pay for |Predictors| analysis passes first.
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  // Direction arrays touch the IR and the prediction analyses, which are
  // shared and read-only but not uniformly cheap; resolve them up front
  // so the parallel section is pure replay over private state.
  std::vector<std::vector<uint8_t>> Dirs(Predictors.size());
  for (size_t P = 0; P < Predictors.size(); ++P)
    Dirs[P] = predictorDirections(Trace.getModule(), *Predictors[P]);
  return replayTraceAll(Trace, std::move(Dirs), Jobs);
}

Expected<std::vector<SequenceHistogram>>
bpfree::replayTraceAll(const BranchTrace &Trace,
                       std::vector<std::vector<uint8_t>> Dirs,
                       unsigned Jobs) {
  // Validate once, before any fan-out: the parallel groups then run the
  // unchecked kernel on a trace known to be sound.
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  for (const std::vector<uint8_t> &D : Dirs)
    if (D.size() != Blocks)
      return dirSizeDiag(D.size(), Blocks);
  const size_t N = Dirs.size();
  std::vector<SequenceHistogram> Hists(N);
  if (N == 0)
    return Hists;
  timetrace::Span ReplaySpan("replay.all",
                             std::to_string(N) + " predictors");
  if (Jobs == 0)
    Jobs = ThreadPool::defaultConcurrency();
  // Split the predictors into one contiguous group per worker; each
  // group is replayed in a single fused pass. Group boundaries never
  // change a histogram, only how the decode cost is shared.
  const size_t Groups = std::max<size_t>(1, std::min<size_t>(Jobs, N));
  parallelFor(static_cast<unsigned>(Groups), Groups, [&](size_t G) {
    const size_t Begin = G * N / Groups;
    const size_t End = (G + 1) * N / Groups;
    std::vector<const std::vector<uint8_t> *> Slice;
    Slice.reserve(End - Begin);
    for (size_t P = Begin; P < End; ++P)
      Slice.push_back(&Dirs[P]);
    std::vector<SequenceHistogram> Part = replayFusedUnchecked(Trace, Slice);
    for (size_t P = Begin; P < End; ++P)
      Hists[P] = std::move(Part[P - Begin]);
  });
  return Hists;
}

//===----------------------------------------------------------------------===//
// Streaming replay from an on-disk trace store
//===----------------------------------------------------------------------===//

std::optional<Diag>
bpfree::validateStoreForReplay(const TraceStoreReader &Store) {
  const TraceStoreStats &S = Store.stats();
  if (S.Recovered || !S.FooterValid)
    return rejected(Diag(
        ErrorKind::CorruptData,
        "cannot replay damaged trace store '" + Store.path() + "': " +
            (S.Detail.empty() ? std::string("store is incomplete")
                              : S.Detail) +
            "; the recovered prefix (" + std::to_string(S.RecoveredEvents) +
            " events) has no defined trailing sequence"));
  if (!Store.complete())
    return rejected(Diag(
        ErrorKind::InvalidArgument,
        "cannot replay trace store '" + Store.path() +
            "': the capture was not finalized before the store was "
            "sealed"));
  return std::nullopt;
}

Expected<std::vector<uint8_t>>
bpfree::perfectDirectionsFromStore(const TraceStoreReader &Store,
                                   const Module &M) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  if (std::optional<Diag> D = Store.requireModule(M))
    return rejected(*std::move(D));
  // [2 * flat index + taken] execution counts, accumulated branchlessly
  // — the same pass as the resident derivation, fed off disk.
  std::vector<uint64_t> Counts(
      2 * static_cast<size_t>(flatBlockOffsets(M).back()), 0);
  uint64_t *C = Counts.data();
  StoreTraceSource Src(Store);
  if (std::optional<Diag> D = Src.open())
    return *std::move(D);
  Src.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    ++C[2 * static_cast<size_t>(Idx) + (Taken ? 1 : 0)];
  });
  if (Src.failed())
    return Src.takeError();
  return majorityDirections(M, Counts);
}

Expected<SequenceHistogram>
bpfree::replayStore(const TraceStoreReader &Store,
                    const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  if (Dirs.size() != Store.numBlocks())
    return dirSizeDiag(Dirs.size(), Store.numBlocks());
  StoreTraceSource Src(Store);
  if (std::optional<Diag> D = Src.open())
    return *std::move(D);
  // One fused pass with a single lane is bit-identical to the scalar
  // replayTrace loop (tests enforce it transitively via the resident
  // fused/scalar equivalence), so the streaming path needs no second
  // scalar kernel.
  const std::vector<const std::vector<uint8_t> *> Slice{&Dirs};
  std::vector<SequenceHistogram> H = replayFusedSource(Src, Slice);
  if (Src.failed())
    return Src.takeError();
  return std::move(H[0]);
}

Expected<std::vector<SequenceHistogram>>
bpfree::replayStoreAll(const TraceStoreReader &Store,
                       std::vector<std::vector<uint8_t>> Dirs,
                       unsigned Jobs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  const size_t Blocks = Store.numBlocks();
  for (const std::vector<uint8_t> &D : Dirs)
    if (D.size() != Blocks)
      return dirSizeDiag(D.size(), Blocks);
  const size_t N = Dirs.size();
  std::vector<SequenceHistogram> Hists(N);
  if (N == 0)
    return Hists;
  timetrace::Span ReplaySpan("replay.store_all",
                             std::to_string(N) + " predictors");
  if (Jobs == 0)
    Jobs = ThreadPool::defaultConcurrency();
  // The same contiguous-group split as the resident replayTraceAll —
  // group boundaries never change a histogram — but each group walks the
  // file through its own stream cursor, so workers share nothing except
  // the immutable reader. I/O or checksum failures are collected per
  // group and the first one wins; histograms from a failed run are never
  // returned.
  const size_t Groups = std::max<size_t>(1, std::min<size_t>(Jobs, N));
  std::vector<std::optional<Diag>> Errs(Groups);
  parallelFor(static_cast<unsigned>(Groups), Groups, [&](size_t G) {
    const size_t Begin = G * N / Groups;
    const size_t End = (G + 1) * N / Groups;
    std::vector<const std::vector<uint8_t> *> Slice;
    Slice.reserve(End - Begin);
    for (size_t P = Begin; P < End; ++P)
      Slice.push_back(&Dirs[P]);
    StoreTraceSource Src(Store);
    if (std::optional<Diag> D = Src.open()) {
      Errs[G] = std::move(D);
      return;
    }
    std::vector<SequenceHistogram> Part = replayFusedSource(Src, Slice);
    if (Src.failed()) {
      Errs[G] = Src.takeError();
      return;
    }
    for (size_t P = Begin; P < End; ++P)
      Hists[P] = std::move(Part[P - Begin]);
  });
  for (std::optional<Diag> &E : Errs)
    if (E)
      return *std::move(E);
  return Hists;
}

Expected<std::vector<SiteCounts>>
bpfree::replayStoreSiteCounts(const TraceStoreReader &Store,
                              const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateStoreForReplay(Store))
    return *std::move(D);
  if (Dirs.size() != Store.numBlocks())
    return dirSizeDiag(Dirs.size(), Store.numBlocks());
  StoreTraceSource Src(Store);
  if (std::optional<Diag> D = Src.open())
    return *std::move(D);
  std::vector<SiteCounts> Counts = siteCountsPass(Src, Dirs);
  if (Src.failed())
    return Src.takeError();
  if (metrics::enabled()) {
    static metrics::Counter &Passes =
        metrics::counter("replay.site_passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    Passes.add();
    Events.add(Store.numEvents());
  }
  return Counts;
}
