//===- ipbc/TraceReplay.cpp - Trace-driven predictor evaluation -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipbc/TraceReplay.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/TimeTrace.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

std::vector<uint8_t> bpfree::predictorDirections(const Module &M,
                                                 const StaticPredictor &P) {
  const std::vector<uint32_t> Offsets = flatBlockOffsets(M);
  std::vector<uint8_t> Dirs(Offsets.back(), 0xFF);
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = *M.getFunction(F);
    for (const auto &BB : Fn)
      if (BB->isCondBranch())
        Dirs[Offsets[F] + BB->getId()] =
            static_cast<uint8_t>(P.predict(*BB));
  }
  return Dirs;
}

namespace {

/// Counts a rejected replay request before returning the Diag, so run
/// manifests surface how many replays were refused.
Diag rejected(Diag D) {
  static metrics::Counter &Rejected = metrics::counter("replay.rejected");
  Rejected.add();
  return D;
}

/// Diag for a direction array whose size does not match the trace's
/// module (Blocks flat blocks).
Diag dirSizeDiag(size_t Got, size_t Blocks) {
  return rejected(
      Diag(ErrorKind::InvalidArgument,
           "direction array has " + std::to_string(Got) +
               " entries but the trace's module has " +
               std::to_string(Blocks) + " blocks"));
}

} // namespace

std::optional<Diag>
bpfree::validateTraceForReplay(const BranchTrace &Trace) {
  if (!Trace.finalized())
    return rejected(
        Diag(ErrorKind::InvalidArgument,
             "cannot replay an unfinalized trace: the trailing sequence "
             "has no defined end (call finalize() after the run)"));
  if (Trace.overflowed())
    return rejected(Diag(
        ErrorKind::InvalidArgument,
        "cannot replay an overflowed trace: the stored stream is a "
        "truncated prefix (" +
            std::to_string(Trace.numEvents()) + " events stored, " +
            std::to_string(Trace.droppedEvents()) +
            " dropped past the byte cap); recapture with a larger "
            "MaxBytes"));
  return std::nullopt;
}

Expected<std::vector<uint8_t>>
bpfree::perfectDirectionsFromTrace(const BranchTrace &Trace) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const Module &M = Trace.getModule();
  const std::vector<uint32_t> Offsets = flatBlockOffsets(M);
  // [2 * flat index + taken] execution counts, accumulated branchlessly.
  std::vector<uint64_t> Counts(2 * static_cast<size_t>(Offsets.back()), 0);
  uint64_t *C = Counts.data();
  Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    ++C[2 * static_cast<size_t>(Idx) + (Taken ? 1 : 0)];
  });
  std::vector<uint8_t> Dirs(Offsets.back(), 0xFF);
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = *M.getFunction(F);
    for (const auto &BB : Fn)
      if (BB->isCondBranch()) {
        const size_t I = Offsets[F] + BB->getId();
        // Majority with ties taken: exactly PerfectPredictor's rule, so
        // a never-executed branch (0 >= 0) predicts taken there too.
        Dirs[I] = static_cast<uint8_t>(
            Counts[2 * I + 1] >= Counts[2 * I] ? DirTaken : DirFallthru);
      }
  }
  return Dirs;
}

Expected<SequenceHistogram>
bpfree::replayTrace(const BranchTrace &Trace,
                    const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  if (Dirs.size() != Blocks)
    return dirSizeDiag(Dirs.size(), Blocks);
  SequenceHistogram H;
  const uint8_t *D = Dirs.data();
  uint64_t IC = 0;
  uint64_t LastBreak = 0;
  Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
    IC += Delta;
    ++H.BranchExecs;
    const uint8_t Actual =
        static_cast<uint8_t>(Taken ? DirTaken : DirFallthru);
    if (D[Idx] != Actual) {
      // A break in control: close the sequence ending at this branch.
      H.record(IC - LastBreak);
      ++H.Breaks;
      LastBreak = IC;
    }
  });
  // The trailing instructions after the last break form one final
  // (unterminated) sequence — same closing rule as
  // SequenceCollector::finalize, so histograms stay bit-identical.
  if (Trace.totalInstrs() > LastBreak)
    H.record(Trace.totalInstrs() - LastBreak);
  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    static metrics::Counter &Breaks = metrics::counter("replay.breaks");
    Passes.add();
    Events.add(Trace.numEvents());
    Breaks.add(H.Breaks);
  }
  return H;
}

Expected<std::vector<SiteCounts>>
bpfree::replaySiteCounts(const BranchTrace &Trace,
                         const std::vector<uint8_t> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  if (Dirs.size() != Blocks)
    return dirSizeDiag(Dirs.size(), Blocks);
  std::vector<SiteCounts> Counts(Blocks);
  SiteCounts *C = Counts.data();
  const uint8_t *D = Dirs.data();
  Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t) {
    SiteCounts &S = C[Idx];
    if (Taken)
      ++S.Taken;
    else
      ++S.Fallthru;
    if (D[Idx] != static_cast<uint8_t>(Taken ? DirTaken : DirFallthru))
      ++S.Mispredicts;
  });
  if (metrics::enabled()) {
    static metrics::Counter &Passes =
        metrics::counter("replay.site_passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    Passes.add();
    Events.add(Trace.numEvents());
  }
  return Counts;
}

namespace {

/// The fused replay kernel, shared by replayTraceFused (which validates
/// its inputs) and replayTraceAll (which validates once, before the
/// parallel fan-out). Preconditions: the trace is finalized and not
/// overflowed, and every direction array has exactly as many entries as
/// the trace's module has flat blocks.
std::vector<SequenceHistogram>
replayFusedUnchecked(const BranchTrace &Trace,
                     const std::vector<const std::vector<uint8_t> *> &Dirs) {
  const size_t P = Dirs.size();
  std::vector<SequenceHistogram> Hists(P);
  if (P == 0)
    return Hists;
  timetrace::Span ReplaySpan("replay.fused",
                             std::to_string(P) + " predictors");
  const size_t Blocks = Dirs[0]->size();
  std::vector<uint64_t> LastBreak(P, 0);
  uint64_t IC = 0;
  // Per-break bookkeeping is the hot path: a full panel averages ~5
  // breaks per decoded event, so replay cost is breaks-bound. Three
  // choices keep each break cheap: (1) Breaks and TotalInstrs are
  // derivable after the pass — Breaks is the number of closed sequences,
  // and the sequences partition [0, totalInstrs()) — so the loop skips
  // those read-modify-writes entirely; (2) each predictor's buckets live
  // in a (count, sum) interleaved scratch row, so closing a sequence
  // touches one cache line instead of two (the split NumSequences /
  // SumLengths arrays sit ~8 KiB apart); (3) the bucket clamp compiles
  // to a cmov, not a branch.
  std::vector<uint64_t> Scratch(P * 2 * SequenceHistogram::NumBuckets, 0);
  uint64_t *S = Scratch.data();
  uint64_t *LB = LastBreak.data();
  auto Close = [&](size_t J) {
    const uint64_t Length = IC - LB[J];
    const size_t Bucket = SequenceHistogram::bucketFor(Length);
    uint64_t *Slot =
        S + J * 2 * SequenceHistogram::NumBuckets + 2 * Bucket;
    ++Slot[0];
    Slot[1] += Length;
    LB[J] = IC;
  };

  if (P <= 32) {
    // Fast path: condense the panel's predictions into one bit-row per
    // block — bit J set iff predictor J predicts taken. Every event
    // lands on a conditional-branch block, whose direction bytes are
    // always DirTaken or DirFallthru, so a byte carries one bit of
    // information and the whole panel fits a uint32_t. The mispredicting
    // lanes of a taken branch are the clear bits (predicted fall-thru),
    // of a not-taken branch the set bits — one 4-byte load and one AND
    // per event, and correct predictions (the overwhelmingly common
    // case) cost no per-predictor work at all.
    std::vector<uint32_t> Rows(Blocks, 0);
    for (size_t J = 0; J < P; ++J) {
      assert(Dirs[J]->size() == Blocks &&
             "direction arrays disagree on size");
      const uint8_t *Src = Dirs[J]->data();
      for (size_t I = 0; I < Blocks; ++I)
        if (Src[I] == static_cast<uint8_t>(DirTaken))
          Rows[I] |= 1u << J;
    }
    const uint32_t Valid =
        P >= 32 ? ~0u : ((1u << P) - 1);
    const uint32_t *R = Rows.data();
    Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
      IC += Delta;
      // Branchless select: taken flips every lane (mispredictors are the
      // clear bits), not-taken flips none. Branch outcomes are data and
      // essentially unpredictable, so a conditional here would eat a
      // pipeline flush per event.
      const uint32_t Flip = 0u - static_cast<uint32_t>(Taken);
      uint32_t Mis = (R[Idx] ^ Flip) & Valid;
      if (Mis == 0) [[likely]]
        return;
      do {
        Close(static_cast<size_t>(std::countr_zero(Mis)));
        Mis &= Mis - 1;
      } while (Mis);
    });
  } else {
    // Wide panels: plain interleaved byte matrix with a per-lane loop.
    std::vector<uint8_t> Mat(Blocks * P);
    for (size_t J = 0; J < P; ++J) {
      assert(Dirs[J]->size() == Blocks &&
             "direction arrays disagree on size");
      const uint8_t *Src = Dirs[J]->data();
      for (size_t I = 0; I < Blocks; ++I)
        Mat[I * P + J] = Src[I];
    }
    const uint8_t *M = Mat.data();
    Trace.forEach([&](uint32_t Idx, bool Taken, uint64_t Delta) {
      IC += Delta;
      const uint8_t Actual =
          static_cast<uint8_t>(Taken ? DirTaken : DirFallthru);
      const uint8_t *Row = M + static_cast<size_t>(Idx) * P;
      for (size_t J = 0; J < P; ++J)
        if (Row[J] != Actual)
          Close(J);
    });
  }

  uint64_t TotalBreaks = 0;
  for (size_t J = 0; J < P; ++J) {
    SequenceHistogram &H = Hists[J];
    // De-interleave the scratch row into the histogram's split arrays.
    const uint64_t *Row = S + J * 2 * SequenceHistogram::NumBuckets;
    for (size_t B = 0; B < SequenceHistogram::NumBuckets; ++B) {
      H.NumSequences[B] = Row[2 * B];
      H.SumLengths[B] = Row[2 * B + 1];
    }
    // Every decoded event is one executed conditional branch, for every
    // predictor alike; every recorded sequence so far ended in a break.
    H.BranchExecs = Trace.numEvents();
    for (uint64_t N : H.NumSequences)
      H.Breaks += N;
    TotalBreaks += H.Breaks;
    // Same trailing-sequence rule as SequenceCollector::finalize and
    // replayTrace, so histograms stay bit-identical across all paths.
    if (Trace.totalInstrs() > LastBreak[J]) {
      const uint64_t Length = Trace.totalInstrs() - LastBreak[J];
      const size_t Bucket = SequenceHistogram::bucketFor(Length);
      ++H.NumSequences[Bucket];
      H.SumLengths[Bucket] += Length;
    }
    // The closed sequences plus the trailing one partition the whole
    // execution, so their lengths sum to the run's instruction count.
    H.TotalInstrs = Trace.totalInstrs();
  }
  if (metrics::enabled()) {
    static metrics::Counter &Passes = metrics::counter("replay.passes");
    static metrics::Counter &Events = metrics::counter("replay.events");
    static metrics::Counter &Breaks = metrics::counter("replay.breaks");
    static metrics::Counter &FusedRows =
        metrics::counter("replay.fused_rows");
    Passes.add();
    Events.add(Trace.numEvents());
    Breaks.add(TotalBreaks);
    FusedRows.add(P);
  }
  return Hists;
}

} // namespace

Expected<std::vector<SequenceHistogram>> bpfree::replayTraceFused(
    const BranchTrace &Trace,
    const std::vector<const std::vector<uint8_t> *> &Dirs) {
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  for (const std::vector<uint8_t> *D : Dirs)
    if (D->size() != Blocks)
      return dirSizeDiag(D->size(), Blocks);
  return replayFusedUnchecked(Trace, Dirs);
}

Expected<std::vector<SequenceHistogram>> bpfree::replayTraceAll(
    const BranchTrace &Trace,
    const std::vector<const StaticPredictor *> &Predictors, unsigned Jobs) {
  // Validate before resolving directions: a rejected trace should not
  // pay for |Predictors| analysis passes first.
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  // Direction arrays touch the IR and the prediction analyses, which are
  // shared and read-only but not uniformly cheap; resolve them up front
  // so the parallel section is pure replay over private state.
  std::vector<std::vector<uint8_t>> Dirs(Predictors.size());
  for (size_t P = 0; P < Predictors.size(); ++P)
    Dirs[P] = predictorDirections(Trace.getModule(), *Predictors[P]);
  return replayTraceAll(Trace, std::move(Dirs), Jobs);
}

Expected<std::vector<SequenceHistogram>>
bpfree::replayTraceAll(const BranchTrace &Trace,
                       std::vector<std::vector<uint8_t>> Dirs,
                       unsigned Jobs) {
  // Validate once, before any fan-out: the parallel groups then run the
  // unchecked kernel on a trace known to be sound.
  if (std::optional<Diag> D = validateTraceForReplay(Trace))
    return *std::move(D);
  const size_t Blocks = flatBlockOffsets(Trace.getModule()).back();
  for (const std::vector<uint8_t> &D : Dirs)
    if (D.size() != Blocks)
      return dirSizeDiag(D.size(), Blocks);
  const size_t N = Dirs.size();
  std::vector<SequenceHistogram> Hists(N);
  if (N == 0)
    return Hists;
  timetrace::Span ReplaySpan("replay.all",
                             std::to_string(N) + " predictors");
  if (Jobs == 0)
    Jobs = ThreadPool::defaultConcurrency();
  // Split the predictors into one contiguous group per worker; each
  // group is replayed in a single fused pass. Group boundaries never
  // change a histogram, only how the decode cost is shared.
  const size_t Groups = std::max<size_t>(1, std::min<size_t>(Jobs, N));
  parallelFor(static_cast<unsigned>(Groups), Groups, [&](size_t G) {
    const size_t Begin = G * N / Groups;
    const size_t End = (G + 1) * N / Groups;
    std::vector<const std::vector<uint8_t> *> Slice;
    Slice.reserve(End - Begin);
    for (size_t P = Begin; P < End; ++P)
      Slice.push_back(&Dirs[P]);
    std::vector<SequenceHistogram> Part = replayFusedUnchecked(Trace, Slice);
    for (size_t P = Begin; P < End; ++P)
      Hists[P] = std::move(Part[P - Begin]);
  });
  return Hists;
}
