//===- ipbc/SequenceAnalysis.h - Break-in-control run lengths --*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6 measurement: instructions executed per break in
/// control. A break in control is a mispredicted branch (our IR has no
/// indirect jumps or calls; returns are explicitly not breaks). Each
/// break defines a sequence of instructions since the previous break;
/// the collector histograms sequence lengths exactly as the paper does:
/// bucket j in [0, 999) counts sequences of length [10j, 10j+9], bucket
/// 999 counts everything at or beyond 9990, and each bucket also records
/// the summed lengths of its sequences.
///
/// Because traces are consumed online (via ExecObserver) rather than
/// stored, arbitrary-length executions are analyzed in O(1) memory —
/// this is the trace-based methodology the paper argues is preferable to
/// profile-based IPBC averages.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IPBC_SEQUENCEANALYSIS_H
#define BPFREE_IPBC_SEQUENCEANALYSIS_H

#include "predict/Predictors.h"
#include "vm/ExecObserver.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {

/// Run-length distribution for one predictor over one execution.
struct SequenceHistogram {
  static constexpr size_t NumBuckets = 1000;
  static constexpr uint64_t BucketWidth = 10;

  std::array<uint64_t, NumBuckets> NumSequences{};
  std::array<uint64_t, NumBuckets> SumLengths{};
  uint64_t Breaks = 0;         ///< mispredicted branches
  uint64_t TotalInstrs = 0;    ///< instructions in recorded sequences
  uint64_t BranchExecs = 0;    ///< all executed conditional branches

  static size_t bucketFor(uint64_t Length) {
    const size_t Bucket = static_cast<size_t>(Length / BucketWidth);
    return Bucket >= NumBuckets ? NumBuckets - 1 : Bucket;
  }

  void record(uint64_t Length) {
    const size_t Bucket = bucketFor(Length);
    ++NumSequences[Bucket];
    SumLengths[Bucket] += Length;
    TotalInstrs += Length;
  }

  /// Fisher-Freudenberger profile-based average: instructions executed
  /// per break in control.
  double ipbcAverage() const {
    return Breaks == 0 ? static_cast<double>(TotalInstrs)
                       : static_cast<double>(TotalInstrs) /
                             static_cast<double>(Breaks);
  }

  /// Overall miss rate of the predictor on this execution.
  double missRate() const {
    return BranchExecs == 0 ? 0.0
                            : static_cast<double>(Breaks) /
                                  static_cast<double>(BranchExecs);
  }

  /// The paper's "dividing length": the sequence length at which 50% of
  /// the executed instructions are accounted for (bucket midpoint).
  double dividingLength() const;

  /// Cumulative fraction of executed instructions accounted for by
  /// sequences of length < x, sampled at bucket boundaries:
  /// (x, fraction) pairs. This is the curve of Graphs 4 and 6-11.
  std::vector<std::pair<uint64_t, double>> instrCurve() const;

  /// Cumulative fraction of breaks accounted for by sequences of length
  /// < x (the curve of Graph 5).
  std::vector<std::pair<uint64_t, double>> breakCurve() const;
};

/// Observes one execution and maintains a SequenceHistogram per
/// predictor. Predictions are resolved once per static branch and
/// memoized (predictions are static, so this is sound).
class SequenceCollector : public ExecObserver {
public:
  /// \p Predictors must outlive the collector. One histogram per
  /// predictor is produced, in the same order.
  SequenceCollector(const ir::Module &M,
                    std::vector<const StaticPredictor *> Predictors);

  void onCondBranch(const ir::BasicBlock &BB, bool Taken,
                    uint64_t InstrCount) override;

  /// Closes the final (unbroken) sequence using the run's total
  /// instruction count; call once, after the run finishes.
  void finalize(uint64_t TotalInstrCount);

  const std::vector<SequenceHistogram> &histograms() const { return Hists; }
  const StaticPredictor &predictor(size_t I) const { return *Predictors[I]; }
  size_t numPredictors() const { return Predictors.size(); }

private:
  /// Cached direction per block, lazily resolved; 0xFF = not yet
  /// computed.
  uint8_t cachedDirection(size_t PredIdx, const ir::BasicBlock &BB);

  const ir::Module &M;
  std::vector<const StaticPredictor *> Predictors;
  std::vector<SequenceHistogram> Hists;
  std::vector<uint64_t> LastBreak; ///< instr count at previous break
  /// Flat block index of each function's block 0, plus a trailing total
  /// (flatBlockOffsets) — the same dense layout as EdgeProfile's counter
  /// arrays and the decoder's DecodedBlock::FlatIndex.
  std::vector<uint32_t> FuncOffsets;
  /// [predictor * numFlatBlocks + flat block index] -> direction.
  std::vector<uint8_t> DirCache;
  bool Finalized = false;
};

/// The paper's Graph 12 analytic model: with unit basic blocks and
/// independent branches of miss rate \p M, the fraction of executed
/// instructions in sequences of length <= \p S is 1 - (1-m)^s.
double sequenceModel(double M, double S);

} // namespace bpfree

#endif // BPFREE_IPBC_SEQUENCEANALYSIS_H
