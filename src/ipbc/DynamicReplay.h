//===- ipbc/DynamicReplay.h - Dynamic-predictor trace replay ----*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second replay mode: evaluating *stateful* predictors
/// (predict/DynamicPredictors.h) against a captured trace. The fused
/// bit-row engine (TraceReplay.h) condenses a static predictor into a
/// per-block direction array and tests events independently; a dynamic
/// predictor's answer depends on every prior event, so that engine
/// structurally cannot express it. This mode decodes the packed stream
/// ONCE into per-site event streams plus chunk-aligned shard snapshots,
/// then exploits whatever structure each panel member has:
///
///  * Per-site-decomposable members (per-site bimodal, per-site-exact
///    PAp) simulate each site's outcome stream independently — sites fan
///    out across ThreadPool::shared() — producing per-site misprediction
///    bitstreams. Sequencing those misses back into the paper's
///    break-in-control histogram is then a data-parallel pass over trace
///    shards (contiguous chunk ranges) with a serial, order-preserving
///    merge of per-shard partials. The shard layout depends only on the
///    trace (never on Jobs, and identically for resident and disk-backed
///    sources), and the merge is pure u64 arithmetic, so histograms are
///    bit-identical across Jobs values and sources.
///
///  * Global-state members (tabled bimodal, gshare, GAg/GAp/PAg/PAp,
///    tournament) are inherently one sequential pass each; passes fan
///    out across the pool, one stream cursor per member.
///
/// Histograms use the same Breaks/misprediction accounting as static
/// replay (a dynamic mispredict is a break in control exactly like a
/// static one), so dynamic panels report side-by-side with the static
/// heuristics in every table. docs/dynamic.md walks the stream format
/// and the determinism argument; replays are billed under the
/// replay.dynamic.* metrics.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IPBC_DYNAMICREPLAY_H
#define BPFREE_IPBC_DYNAMICREPLAY_H

#include "ipbc/SequenceAnalysis.h"
#include "ipbc/TraceReplay.h"
#include "predict/DynamicPredictors.h"
#include "support/Error.h"
#include "vm/BranchTrace.h"

#include <vector>

namespace bpfree {

class TraceStoreReader;

/// Upper bound on the trace shards the decomposable-member sequencing
/// pass splits a trace into. Fixed (not derived from Jobs or core
/// count) because the shard layout is part of the deterministic merge:
/// shard boundaries are chunk indices i * numChunks / min(this,
/// numChunks), identical for every Jobs value and for resident vs.
/// disk-backed sources of the same capture.
inline constexpr size_t MaxDynamicReplayShards = 32;

/// Replays \p Trace against a panel of dynamic predictor configs, one
/// SequenceHistogram per config in panel order — the same accounting as
/// replayTraceAll, with each member's mispredictions as the breaks.
/// Rejects unsound traces (validateTraceForReplay), panels wider than
/// MaxReplayPredictors, and invalid configs (validateDynConfig), all
/// counted under "replay.rejected". Jobs = 0 uses the hardware
/// concurrency; results are bit-identical for every Jobs value.
Expected<std::vector<SequenceHistogram>>
replayTraceDynamic(const BranchTrace &Trace,
                   const std::vector<DynPredictorConfig> &Panel,
                   unsigned Jobs = 0);

/// replayTraceDynamic for an on-disk store: every parallel worker opens
/// its own stream cursor, and histograms are bit-identical to
/// replayTraceDynamic on the resident trace the store was written from.
/// Rejects incomplete stores (validateStoreForReplay) like the static
/// streaming entry points.
Expected<std::vector<SequenceHistogram>>
replayStoreDynamic(const TraceStoreReader &Store,
                   const std::vector<DynPredictorConfig> &Panel,
                   unsigned Jobs = 0);

/// The per-site view of a dynamic panel replay: one SiteCounts vector
/// per panel member (in panel order), indexed by flat site index up to
/// the highest site the trace executed — the join key the
/// characterization layer (ipbc/Characterize.h) charges each member's
/// misses to a branch class with. For every member, the sum of
/// Mispredicts over sites equals the member's replayTraceDynamic
/// histogram Breaks for the same trace, and the sum of execs() equals
/// its BranchExecs. Same validation, rejection accounting, and
/// Jobs-independence contract as replayTraceDynamic.
Expected<std::vector<std::vector<SiteCounts>>>
replayTraceDynamicSites(const BranchTrace &Trace,
                        const std::vector<DynPredictorConfig> &Panel,
                        unsigned Jobs = 0);

/// replayTraceDynamicSites for an on-disk store; counts are
/// bit-identical to the resident entry point on the trace the store was
/// written from.
Expected<std::vector<std::vector<SiteCounts>>>
replayStoreDynamicSites(const TraceStoreReader &Store,
                        const std::vector<DynPredictorConfig> &Panel,
                        unsigned Jobs = 0);

} // namespace bpfree

#endif // BPFREE_IPBC_DYNAMICREPLAY_H
