//===- ipbc/Attribution.h - Misprediction attribution and explain -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explain layer: joins static prediction provenance
/// (predict/Provenance.h — which rule decided each branch) against a
/// captured BranchTrace (vm/BranchTrace.h — what each branch actually
/// did) to charge every executed branch and every misprediction to its
/// deciding attribution bucket. The result answers the questions the
/// aggregate metrics cannot:
///
///  * the dynamic analogue of the paper's Table 3 — per heuristic, how
///    many branch executions it decided, how accurate it was, and what
///    share of all mispredicts it is paying for;
///  * a misprediction hotspot list — the few static branches driving
///    most breaks in control, with source locations and per-site
///    taken / not-taken counts;
///  * a machine-readable bpfree-explain-v1 JSON document for tooling
///    (tools/bpfree_explain.cpp, scripts/ci.sh's schema gate).
///
/// Conservation invariant, enforced by readExplainJson and the test
/// suite: the per-bucket mispredicts sum to the report total, which
/// equals the replay histogram's Breaks for the same trace and
/// predictor — attribution never loses or double-counts a miss. This
/// holds because every static branch lands in exactly one bucket (the
/// default policy has its own — see DefaultBucket) and replaySiteCounts
/// partitions the event stream by flat block index.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IPBC_ATTRIBUTION_H
#define BPFREE_IPBC_ATTRIBUTION_H

#include "ipbc/TraceReplay.h"
#include "predict/Predictors.h"
#include "predict/Provenance.h"

#include <array>
#include <string>
#include <vector>

namespace bpfree {

/// One attribution bucket's line in the dynamic Table 3.
struct BucketStats {
  std::string Name;         ///< attrBucketName — the JSON key
  uint64_t StaticSites = 0; ///< static branches this bucket decided
  uint64_t Execs = 0;       ///< dynamic executions of those branches
  uint64_t Mispredicts = 0;

  /// Fraction of this bucket's executions predicted correctly (1.0 for
  /// an unexercised bucket, matching the paper's convention of leaving
  /// inapplicable cells blank rather than charging them).
  double correctRate() const {
    return Execs == 0
               ? 1.0
               : static_cast<double>(Execs - Mispredicts) /
                     static_cast<double>(Execs);
  }
};

/// One entry of the misprediction hotspot list.
struct HotspotEntry {
  uint32_t FlatIndex = 0;
  std::string Function;
  std::string Block;
  int SrcLine = 0;      ///< 0 when the IR carries no source lines
  std::string Bucket;   ///< deciding bucket's name
  /// Cascade position of the deciding heuristic; -1 when the decision
  /// did not come from the ordered cascade (loop predictor, default
  /// policy, single-heuristic predictors) — see BranchProvenance.
  int Priority = -1;
  Direction Predicted = DirTaken;
  uint64_t Taken = 0;
  uint64_t Fallthru = 0;
  uint64_t Mispredicts = 0;
};

/// The joined attribution result for one (workload, trace, predictor).
struct ExplainReport {
  std::string Workload; ///< "" when not produced through the driver
  std::string Dataset;
  std::string Predictor; ///< StaticPredictor::name()
  std::string Order;     ///< orderToString of the cascade, "" otherwise
  uint64_t TotalInstrs = 0;
  uint64_t BranchExecs = 0;
  uint64_t Mispredicts = 0; ///< == sum of Buckets[*].Mispredicts
  std::array<BucketStats, NumAttrBuckets> Buckets;
  /// Every executed branch site charged at least one mispredict, sorted
  /// by Mispredicts descending, flat index ascending on ties — the
  /// full list; renderers truncate to their top-N.
  std::vector<HotspotEntry> Hotspots;

  /// Bucket \p B's share of all mispredicts (0 when there were none).
  double mispredictShare(unsigned B) const {
    return Mispredicts == 0
               ? 0.0
               : static_cast<double>(Buckets[B].Mispredicts) /
                     static_cast<double>(Mispredicts);
  }
};

/// Options for explainTrace.
struct ExplainOptions {
  HeuristicOrder Order = paperOrder();
  HeuristicConfig Config = {};
  DefaultPolicy Default = DefaultPolicy::Random;
  uint64_t DefaultSeed = 0;
  /// Workload/dataset labels copied into the report (informational).
  std::string Workload;
  std::string Dataset;
};

/// Runs the full attribution join for the combined (Ball-Larus)
/// predictor over \p Trace: captures provenance for every static branch
/// of the trace's module under \p Ctx, replays the trace into per-site
/// counts, and charges each site's executions and mispredicts to its
/// deciding bucket. \p Ctx must analyze the trace's module. Rejects
/// unsound traces like every replay entry point.
Expected<ExplainReport> explainTrace(const PredictionContext &Ctx,
                                     const BranchTrace &Trace,
                                     const ExplainOptions &Opts = {});

/// Renders the human-readable report: the per-bucket accuracy table
/// followed by the top \p TopN hotspots with source locations.
std::string renderExplainReport(const ExplainReport &R, size_t TopN = 10);

/// Writes \p R as a bpfree-explain-v1 JSON document (hotspots truncated
/// to \p TopN, 0 = all). \returns false when the file cannot be opened.
bool writeExplainJson(const ExplainReport &R, const std::string &Path,
                      size_t TopN = 0);

/// Reads and validates a bpfree-explain-v1 document: schema tag, the
/// required keys, per-bucket and per-hotspot counts, and the
/// conservation invariant (bucket mispredicts sum to the total). The
/// lightweight schema check scripts/ci.sh runs on its build artifact.
Expected<ExplainReport> readExplainJson(const std::string &Path);

} // namespace bpfree

#endif // BPFREE_IPBC_ATTRIBUTION_H
