//===- analysis/DomTree.h - Dominator and postdominator trees --*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and postdominator trees over a Function's CFG, built with
/// the Cooper-Harvey-Kennedy iterative algorithm. The paper's heuristics
/// consume exactly the two relations defined in its Section 2: "a vertex
/// v dominates w if every path from the entry point to w includes v" and
/// "w postdominates v if every path from v to any exit vertex includes w".
///
/// Postdominance is computed on the reverse CFG rooted at a virtual exit
/// that every return block reaches. Blocks from which no exit is
/// reachable (infinite loops) have no postdominator information; they
/// postdominate nothing and nothing postdominates them except themselves.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_ANALYSIS_DOMTREE_H
#define BPFREE_ANALYSIS_DOMTREE_H

#include "ir/Function.h"

#include <vector>

namespace bpfree {

/// A (post)dominator tree with O(1) dominance queries via Euler-tour
/// intervals.
class DomTree {
public:
  /// Builds the forward dominator tree of \p F rooted at the entry block.
  static DomTree computeDominators(const ir::Function &F);

  /// Builds the postdominator tree of \p F rooted at a virtual exit.
  static DomTree computePostDominators(const ir::Function &F);

  /// \returns true if \p A (post)dominates \p B. Reflexive: a block
  /// (post)dominates itself. Returns false if either block is not
  /// reachable in the underlying (reverse) CFG.
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

  /// \returns the immediate dominator of \p B, or nullptr for the root,
  /// for blocks immediately dominated by the virtual exit, and for
  /// unreachable blocks.
  const ir::BasicBlock *getIdom(const ir::BasicBlock *B) const;

  /// \returns true if \p B participates in the tree (is reachable from
  /// the entry, or reaches an exit for the postdominator variant).
  bool isReachable(const ir::BasicBlock *B) const;

  /// \returns the dominator-tree depth of \p B (root = 0); 0 for
  /// unreachable blocks.
  unsigned getDepth(const ir::BasicBlock *B) const;

private:
  DomTree() = default;

  /// Generic core: \p NumNodes nodes, root \p Root, predecessor lists in
  /// the direction of the dataflow, and \p Order a reverse postorder of
  /// the reachable nodes.
  void build(unsigned NumNodes, unsigned Root,
             const std::vector<std::vector<unsigned>> &Preds,
             const std::vector<unsigned> &Order);

  const ir::Function *F = nullptr;
  unsigned VirtualRoot = ~0u; ///< node id of the virtual exit, if any
  std::vector<int> Idom;      ///< -1 = unreachable / root marker
  std::vector<unsigned> TourIn, TourOut;
  std::vector<unsigned> Depth;
};

} // namespace bpfree

#endif // BPFREE_ANALYSIS_DOMTREE_H
