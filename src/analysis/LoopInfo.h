//===- analysis/LoopInfo.h - Natural loop analysis --------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop analysis following the paper's Section 3 definitions:
///
///   * A *backedge* is an edge x -> y where y dominates x.
///   * Each target y of a backedge is a *loop head*.
///   * nat-loop(y) = {y} union {w | there is a backedge x -> y and a
///     y-free path from w to x}.
///   * An edge v -> w is an *exit edge* if v is in some nat-loop(y) and
///     w is not.
///
/// The analysis also supplies the derived queries the predictor needs:
/// branch classification (loop vs non-loop), the loop-branch predictor's
/// edge choice, loop-head and preheader tests for the Loop heuristic,
/// and per-block loop depth.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_ANALYSIS_LOOPINFO_H
#define BPFREE_ANALYSIS_LOOPINFO_H

#include "analysis/DomTree.h"
#include "ir/Function.h"

#include <vector>

namespace bpfree {

/// One natural loop: a head block plus its member set.
struct Loop {
  unsigned HeadId = 0;
  /// Block-id membership bitmap (indexed by block id).
  std::vector<bool> Members;
  /// Source block ids of the backedges targeting HeadId.
  std::vector<unsigned> BackedgeSources;

  bool contains(unsigned BlockId) const {
    return BlockId < Members.size() && Members[BlockId];
  }
};

/// Natural loops of one function, with edge-classification queries.
class LoopInfo {
public:
  /// Builds loop info for \p F using dominator tree \p DT (must be the
  /// forward dominator tree of the same function).
  LoopInfo(const ir::Function &F, const DomTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  bool isLoopHead(const ir::BasicBlock *BB) const {
    return HeadLoopIndex[BB->getId()] >= 0;
  }

  /// Number of natural loops containing \p BB (0 = not in any loop).
  unsigned getLoopDepth(const ir::BasicBlock *BB) const {
    return DepthOf[BB->getId()];
  }

  /// \returns true if the edge From -> From->getSuccessor(SuccIdx) is a
  /// loop backedge (target dominates source).
  bool isBackedge(const ir::BasicBlock *From, unsigned SuccIdx) const;

  /// \returns true if the edge leaves at least one loop containing From.
  bool isExitEdge(const ir::BasicBlock *From, unsigned SuccIdx) const;

  /// Number of loops containing From that do not contain the successor —
  /// 0 for non-exit edges; used to break ties between two exit edges.
  unsigned loopsExited(const ir::BasicBlock *From, unsigned SuccIdx) const;

  /// Paper classification: a branch block is a *loop branch* iff either
  /// outgoing edge is an exit edge or a backedge. \p BB must be a
  /// conditional branch.
  bool isLoopBranch(const ir::BasicBlock *BB) const;

  /// The paper's loop-branch predictor: prefer a backedge (the one to the
  /// innermost loop when both edges are backedges), otherwise the
  /// non-exit edge (the edge exiting fewer loops when both exit).
  /// \returns 0 to predict the taken successor, 1 for the fall-thru.
  unsigned predictLoopBranch(const ir::BasicBlock *BB) const;

  /// \returns true if \p BB is a loop preheader: it passes control
  /// unconditionally (through a chain of jump-only blocks) to a loop head
  /// that it dominates. Used by the Loop heuristic for non-loop branches.
  bool isPreheader(const ir::BasicBlock *BB, const DomTree &DT) const;

private:
  const ir::Function &F;
  std::vector<Loop> Loops;
  /// Block id -> index into Loops if the block is that loop's head; -1
  /// otherwise.
  std::vector<int> HeadLoopIndex;
  /// Block id -> number of loops containing it.
  std::vector<unsigned> DepthOf;
};

} // namespace bpfree

#endif // BPFREE_ANALYSIS_LOOPINFO_H
