//===- analysis/LoopInfo.cpp - Natural loop analysis ----------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

LoopInfo::LoopInfo(const Function &F, const DomTree &DT) : F(F) {
  unsigned N = static_cast<unsigned>(F.numBlocks());
  HeadLoopIndex.assign(N, -1);
  DepthOf.assign(N, 0);

  auto Preds = F.computePredecessors();

  // Find backedges (x -> y with y dominating x) and group them by head.
  for (const auto &BB : F) {
    for (unsigned I = 0, E = BB->numSuccessors(); I != E; ++I) {
      BasicBlock *Head = BB->getSuccessor(I);
      if (!DT.isReachable(BB.get()) || !DT.dominates(Head, BB.get()))
        continue;
      unsigned HeadId = Head->getId();
      int LoopIdx = HeadLoopIndex[HeadId];
      if (LoopIdx < 0) {
        LoopIdx = static_cast<int>(Loops.size());
        HeadLoopIndex[HeadId] = LoopIdx;
        Loops.emplace_back();
        Loops.back().HeadId = HeadId;
        Loops.back().Members.assign(N, false);
        Loops.back().Members[HeadId] = true;
      }
      Loops[LoopIdx].BackedgeSources.push_back(BB->getId());
    }
  }

  // nat-loop(y): backward reachability from each backedge source, not
  // passing through y.
  for (Loop &L : Loops) {
    std::vector<unsigned> Worklist;
    for (unsigned Src : L.BackedgeSources) {
      if (!L.Members[Src]) {
        L.Members[Src] = true;
        Worklist.push_back(Src);
      }
    }
    while (!Worklist.empty()) {
      unsigned Cur = Worklist.back();
      Worklist.pop_back();
      for (const BasicBlock *P : Preds[Cur]) {
        unsigned PId = P->getId();
        // Restrict membership to blocks reachable from the entry:
        // unreachable code can reach a backedge source without ever
        // executing, and it must not perturb loop classification.
        if (!L.Members[PId] && DT.isReachable(P)) {
          L.Members[PId] = true;
          Worklist.push_back(PId);
        }
      }
    }
    for (unsigned B = 0; B < N; ++B)
      if (L.Members[B])
        ++DepthOf[B];
  }
}

bool LoopInfo::isBackedge(const BasicBlock *From, unsigned SuccIdx) const {
  const BasicBlock *To = From->getSuccessor(SuccIdx);
  int LoopIdx = HeadLoopIndex[To->getId()];
  if (LoopIdx < 0)
    return false;
  for (unsigned Src : Loops[LoopIdx].BackedgeSources)
    if (Src == From->getId())
      return true;
  return false;
}

unsigned LoopInfo::loopsExited(const BasicBlock *From,
                               unsigned SuccIdx) const {
  const BasicBlock *To = From->getSuccessor(SuccIdx);
  unsigned Count = 0;
  for (const Loop &L : Loops)
    if (L.contains(From->getId()) && !L.contains(To->getId()))
      ++Count;
  return Count;
}

bool LoopInfo::isExitEdge(const BasicBlock *From, unsigned SuccIdx) const {
  return loopsExited(From, SuccIdx) > 0;
}

bool LoopInfo::isLoopBranch(const BasicBlock *BB) const {
  assert(BB->isCondBranch() && "loop classification requires a branch");
  for (unsigned I = 0; I < 2; ++I)
    if (isBackedge(BB, I) || isExitEdge(BB, I))
      return true;
  return false;
}

unsigned LoopInfo::predictLoopBranch(const BasicBlock *BB) const {
  assert(isLoopBranch(BB) && "not a loop branch");

  bool Back0 = isBackedge(BB, 0), Back1 = isBackedge(BB, 1);
  if (Back0 != Back1)
    return Back0 ? 0 : 1;
  if (Back0 && Back1) {
    // Paper footnote: predict the edge that leads to the innermost loop.
    unsigned D0 = getLoopDepth(BB->getSuccessor(0));
    unsigned D1 = getLoopDepth(BB->getSuccessor(1));
    return D0 >= D1 ? 0 : 1;
  }

  // No backedge: predict the edge exiting fewer loops (the non-exit edge
  // in the common single-loop case — "iterating over exiting").
  unsigned E0 = loopsExited(BB, 0), E1 = loopsExited(BB, 1);
  if (E0 != E1)
    return E0 < E1 ? 0 : 1;
  return 1;
}

bool LoopInfo::isPreheader(const BasicBlock *BB, const DomTree &DT) const {
  // Follow a chain of unconditional jumps from BB (bounded; jump chains
  // in generated code are short and this also guards against jump-only
  // cycles). BB must dominate the loop head it feeds.
  const BasicBlock *Cur = BB;
  for (unsigned Hops = 0; Hops < 8; ++Hops) {
    if (!Cur->isUnconditionalJump())
      return false;
    const BasicBlock *Next = Cur->getSuccessor(0);
    if (isLoopHead(Next))
      return DT.dominates(BB, Next);
    Cur = Next;
  }
  return false;
}
