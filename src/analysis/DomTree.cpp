//===- analysis/DomTree.cpp - Dominator and postdominator trees -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DomTree.h"

#include <algorithm>
#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// Iterative postorder over \p Succs from \p Root; returns node ids in
/// postorder (reachable nodes only).
std::vector<unsigned>
postorder(unsigned NumNodes, unsigned Root,
          const std::vector<std::vector<unsigned>> &Succs) {
  std::vector<unsigned> Order;
  std::vector<uint8_t> Visited(NumNodes, 0);
  // Stack of (node, next successor index).
  std::vector<std::pair<unsigned, size_t>> Stack;
  Visited[Root] = 1;
  Stack.emplace_back(Root, 0);
  while (!Stack.empty()) {
    auto &[Node, NextIdx] = Stack.back();
    if (NextIdx < Succs[Node].size()) {
      unsigned Succ = Succs[Node][NextIdx++];
      if (!Visited[Succ]) {
        Visited[Succ] = 1;
        Stack.emplace_back(Succ, 0);
      }
    } else {
      Order.push_back(Node);
      Stack.pop_back();
    }
  }
  return Order;
}

} // namespace

void DomTree::build(unsigned NumNodes, unsigned Root,
                    const std::vector<std::vector<unsigned>> &Preds,
                    const std::vector<unsigned> &Order) {
  // Order is reverse postorder; map node -> its RPO position.
  std::vector<int> RpoPos(NumNodes, -1);
  for (unsigned I = 0; I < Order.size(); ++I)
    RpoPos[Order[I]] = static_cast<int>(I);

  Idom.assign(NumNodes, -1);
  Idom[Root] = static_cast<int>(Root);

  // Cooper-Harvey-Kennedy intersection on RPO positions.
  auto intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RpoPos[A] > RpoPos[B])
        A = static_cast<unsigned>(Idom[A]);
      while (RpoPos[B] > RpoPos[A])
        B = static_cast<unsigned>(Idom[B]);
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : Order) {
      if (Node == Root)
        continue;
      unsigned NewIdom = ~0u;
      for (unsigned P : Preds[Node]) {
        if (Idom[P] < 0)
          continue; // predecessor not yet processed / unreachable
        NewIdom = NewIdom == ~0u ? P : intersect(NewIdom, P);
      }
      if (NewIdom == ~0u)
        continue;
      if (Idom[Node] != static_cast<int>(NewIdom)) {
        Idom[Node] = static_cast<int>(NewIdom);
        Changed = true;
      }
    }
  }

  // Euler tour of the dominator tree for O(1) dominance queries.
  std::vector<std::vector<unsigned>> Children(NumNodes);
  for (unsigned Node = 0; Node < NumNodes; ++Node)
    if (Idom[Node] >= 0 && Node != Root)
      Children[Idom[Node]].push_back(Node);

  TourIn.assign(NumNodes, 0);
  TourOut.assign(NumNodes, 0);
  Depth.assign(NumNodes, 0);
  unsigned Clock = 1;
  std::vector<std::pair<unsigned, size_t>> Stack;
  TourIn[Root] = Clock++;
  Stack.emplace_back(Root, 0);
  while (!Stack.empty()) {
    auto &[Node, NextIdx] = Stack.back();
    if (NextIdx < Children[Node].size()) {
      unsigned Child = Children[Node][NextIdx++];
      Depth[Child] = Depth[Node] + 1;
      TourIn[Child] = Clock++;
      Stack.emplace_back(Child, 0);
    } else {
      TourOut[Node] = Clock++;
      Stack.pop_back();
    }
  }
}

DomTree DomTree::computeDominators(const Function &F) {
  unsigned N = static_cast<unsigned>(F.numBlocks());
  std::vector<std::vector<unsigned>> Succs(N), Preds(N);
  for (const auto &BB : F) {
    for (unsigned I = 0, E = BB->numSuccessors(); I != E; ++I) {
      unsigned S = BB->getSuccessor(I)->getId();
      Succs[BB->getId()].push_back(S);
      Preds[S].push_back(BB->getId());
    }
  }
  unsigned Root = F.getEntry()->getId();
  std::vector<unsigned> Order = postorder(N, Root, Succs);
  std::reverse(Order.begin(), Order.end());

  DomTree DT;
  DT.F = &F;
  DT.build(N, Root, Preds, Order);
  return DT;
}

DomTree DomTree::computePostDominators(const Function &F) {
  unsigned N = static_cast<unsigned>(F.numBlocks());
  unsigned Exit = N; // virtual exit node
  // Reverse graph: edge v->u for each CFG edge u->v, plus Exit->r for
  // each return block r.
  std::vector<std::vector<unsigned>> RSuccs(N + 1), RPreds(N + 1);
  for (const auto &BB : F) {
    unsigned U = BB->getId();
    for (unsigned I = 0, E = BB->numSuccessors(); I != E; ++I) {
      unsigned V = BB->getSuccessor(I)->getId();
      RSuccs[V].push_back(U);
      RPreds[U].push_back(V);
    }
    if (BB->isReturnBlock()) {
      RSuccs[Exit].push_back(U);
      RPreds[U].push_back(Exit);
    }
  }
  std::vector<unsigned> Order = postorder(N + 1, Exit, RSuccs);
  std::reverse(Order.begin(), Order.end());

  DomTree DT;
  DT.F = &F;
  DT.VirtualRoot = Exit;
  DT.build(N + 1, Exit, RPreds, Order);
  return DT;
}

bool DomTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  assert(A && B && "null block in dominance query");
  unsigned IA = A->getId(), IB = B->getId();
  if (Idom[IA] < 0 || Idom[IB] < 0)
    return A == B; // unreachable blocks trivially self-dominate only
  return TourIn[IA] <= TourIn[IB] && TourOut[IB] <= TourOut[IA];
}

const BasicBlock *DomTree::getIdom(const BasicBlock *B) const {
  assert(B && "null block in idom query");
  unsigned IB = B->getId();
  if (Idom[IB] < 0 || Idom[IB] == static_cast<int>(IB))
    return nullptr;
  unsigned Parent = static_cast<unsigned>(Idom[IB]);
  if (Parent == VirtualRoot)
    return nullptr;
  return F->getBlock(Parent);
}

bool DomTree::isReachable(const BasicBlock *B) const {
  assert(B && "null block in reachability query");
  return Idom[B->getId()] >= 0;
}

unsigned DomTree::getDepth(const BasicBlock *B) const {
  assert(B && "null block in depth query");
  return Idom[B->getId()] < 0 ? 0 : Depth[B->getId()];
}
