//===- frontend/Compiler.h - MiniC compilation driver -----------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call driver: MiniC source text -> verified IR module
/// (lex -> parse -> sema -> codegen -> verify). This is the entry point
/// the workloads, tests, examples, and benches use.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_FRONTEND_COMPILER_H
#define BPFREE_FRONTEND_COMPILER_H

#include "ir/Module.h"
#include "support/Error.h"

#include <memory>
#include <string>

namespace bpfree {
namespace minic {

/// Compiles \p Source to a verified IR module. On any error (lexical,
/// syntactic, semantic, or an internal codegen verification failure)
/// returns a Diag whose message names the stage.
Expected<std::unique_ptr<ir::Module>> compile(const std::string &Source);

/// Like compile(), but aborts with the diagnostic on failure. For tests
/// and tools whose inputs are known-good programs.
std::unique_ptr<ir::Module> compileOrDie(const std::string &Source);

} // namespace minic
} // namespace bpfree

#endif // BPFREE_FRONTEND_COMPILER_H
