//===- frontend/Lexer.h - MiniC tokenizer -----------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written tokenizer for MiniC. Produces the whole token stream up
/// front (sources are small); reports the first lexical error via Diag.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_FRONTEND_LEXER_H
#define BPFREE_FRONTEND_LEXER_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {
namespace minic {

/// Token kinds. Punctuation tokens are named after their spelling.
enum class TokKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwInt,
  KwChar,
  KwDouble,
  KwVoid,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,      // ->
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Assign,     // =
  PlusAssign, // +=
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  PlusPlus,
  MinusMinus,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Shl,
  ShrTok,
  AmpAmp,
  PipePipe,
};

/// \returns a printable name for \p K ("identifier", "'+='", ...).
const char *tokKindName(TokKind K);

/// One token with source location and literal payload.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   ///< identifier / string contents
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  int Line = 0;
  int Column = 0;
};

/// Tokenizes \p Source. On success returns the token vector terminated
/// by an Eof token; on failure returns the lexical error.
Expected<std::vector<Token>> lex(const std::string &Source);

} // namespace minic
} // namespace bpfree

#endif // BPFREE_FRONTEND_LEXER_H
