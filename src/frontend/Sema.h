//===- frontend/Sema.h - MiniC semantic analysis ----------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MiniC: name resolution (globals, functions,
/// builtins, scoped locals), type checking with C-like implicit
/// conversions (char promotes to int, int converts to double in mixed
/// arithmetic, arrays decay to pointers), lvalue analysis, and
/// address-taken marking (codegen keeps non-address-taken scalars in
/// registers — the paper notes global register allocation materially
/// affects the Guard heuristic's coverage).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_FRONTEND_SEMA_H
#define BPFREE_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "support/Error.h"

#include <vector>

namespace bpfree {
namespace minic {

/// The VM intrinsics surfaced as MiniC builtins.
enum class Builtin {
  PrintInt,
  PrintChar,
  PrintDouble,
  PrintStr,
  Malloc,
  Arg,
  InputLen,
  InputByte,
  Trap,
};

/// \returns the builtin named \p Name, if any.
const Builtin *lookupBuiltin(const std::string &Name);

/// One function-local variable (parameters occupy ids [0, NumParams)).
struct LocalVar {
  std::string Name;
  Type Ty;
  bool IsParam = false;
  bool AddressTaken = false;
};

/// Per-function results of semantic analysis, indexed like
/// Program::Functions.
struct FuncInfo {
  std::vector<LocalVar> Locals;
};

/// Whole-program sema results.
struct SemaResult {
  std::vector<FuncInfo> Funcs;
};

/// Type-checks and annotates \p P in place. On success returns the
/// per-function tables; on failure the first diagnostic.
Expected<SemaResult> analyze(Program &P);

} // namespace minic
} // namespace bpfree

#endif // BPFREE_FRONTEND_SEMA_H
