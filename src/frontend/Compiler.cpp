//===- frontend/Compiler.cpp - MiniC compilation driver -------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"

#include "frontend/CodeGen.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Simplify.h"
#include "ir/Verifier.h"

using namespace bpfree;
using namespace bpfree::minic;

Expected<std::unique_ptr<ir::Module>>
minic::compile(const std::string &Source) {
  Expected<std::unique_ptr<Program>> Prog = parseSource(Source);
  if (!Prog)
    return Prog.error();

  Expected<SemaResult> Sema = analyze(**Prog);
  if (!Sema)
    return Sema.error();

  std::unique_ptr<ir::Module> M = codegen(**Prog, *Sema);

  // Straight-line block merging: real compilers' output shape, and a
  // precondition for the pointer heuristic's load/branch pattern to be
  // visible at bottom-of-loop tests.
  ir::simplifyCfg(*M);

  std::vector<std::string> Errors = ir::verifyModule(*M);
  if (!Errors.empty())
    return Diag("internal codegen error: " + Errors.front());
  return M;
}

std::unique_ptr<ir::Module> minic::compileOrDie(const std::string &Source) {
  Expected<std::unique_ptr<ir::Module>> M = compile(Source);
  if (!M)
    reportFatalError("MiniC compilation failed: " + M.error().render());
  return std::move(*M);
}
