//===- frontend/Compiler.cpp - MiniC compilation driver -------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"

#include "frontend/CodeGen.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Simplify.h"
#include "ir/Verifier.h"

#include <cstdio>
#include <cstdlib>

using namespace bpfree;
using namespace bpfree::minic;

namespace {

/// Tags frontend diagnostics that predate the taxonomy.
Diag asCompileError(Diag D) {
  if (D.Kind == ErrorKind::Unknown)
    D.Kind = ErrorKind::CompileError;
  return D;
}

} // namespace

Expected<std::unique_ptr<ir::Module>>
minic::compile(const std::string &Source) {
  Expected<std::unique_ptr<Program>> Prog = parseSource(Source);
  if (!Prog)
    return asCompileError(Prog.takeError());

  Expected<SemaResult> Sema = analyze(**Prog);
  if (!Sema)
    return asCompileError(Sema.takeError());

  std::unique_ptr<ir::Module> M = codegen(**Prog, *Sema);

  // Straight-line block merging: real compilers' output shape, and a
  // precondition for the pointer heuristic's load/branch pattern to be
  // visible at bottom-of-loop tests.
  ir::simplifyCfg(*M);

  std::vector<std::string> Errors = ir::verifyModule(*M);
  if (!Errors.empty())
    return Diag(ErrorKind::VerifyError,
                "internal codegen error: " + Errors.front());
  return M;
}

std::unique_ptr<ir::Module> minic::compileOrDie(const std::string &Source) {
  Expected<std::unique_ptr<ir::Module>> M = compile(Source);
  if (!M) {
    // Known-good inputs only: exit with a readable diagnostic rather
    // than aborting with a core dump.
    std::fprintf(stderr, "bpfree: MiniC compilation failed: %s\n",
                 M.error().renderWithKind().c_str());
    std::exit(1);
  }
  return std::move(*M);
}
