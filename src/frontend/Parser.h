//===- frontend/Parser.h - MiniC recursive-descent parser ------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC. Grammar summary:
///
///   program    := (structdef | globaldecl | funcdef)*
///   structdef  := "struct" IDENT "{" (type declarator ";")+ "}" ";"
///   funcdef    := type IDENT "(" params? ")" block
///   globaldecl := type IDENT ("[" INT "]")? ("=" literal)? ";"
///   stmt       := block | if | while | do-while | for | return
///               | break | continue | vardecl | expr ";"
///
/// Expressions use C's precedence for the supported operators. Casts
/// are unambiguous because MiniC has no typedefs: "(" followed by a
/// type keyword is always a cast.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_FRONTEND_PARSER_H
#define BPFREE_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"

#include <memory>

namespace bpfree {
namespace minic {

/// Parses \p Tokens (from lex()) into a Program, or returns the first
/// syntax error. Struct names are resolved during parsing (definitions
/// must precede uses, as in C without forward declarations — except
/// that a struct may contain pointers to itself).
Expected<std::unique_ptr<Program>> parse(const std::vector<Token> &Tokens);

/// Convenience: lex + parse.
Expected<std::unique_ptr<Program>> parseSource(const std::string &Source);

} // namespace minic
} // namespace bpfree

#endif // BPFREE_FRONTEND_PARSER_H
