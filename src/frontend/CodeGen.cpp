//===- frontend/CodeGen.cpp - MiniC to IR code generation -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"

#include "ir/IRBuilder.h"
#include "support/Error.h"

#include <cassert>
#include <cstring>
#include <optional>
#include <unordered_map>

using namespace bpfree;
using namespace bpfree::minic;
using ir::BasicBlock;
using ir::BranchOp;
using ir::IRBuilder;
using ir::MemWidth;
using ir::Opcode;
using ir::Reg;

namespace {

ir::Intrinsic builtinIntrinsic(Builtin B) {
  switch (B) {
  case Builtin::PrintInt:
    return ir::Intrinsic::PrintInt;
  case Builtin::PrintChar:
    return ir::Intrinsic::PrintChar;
  case Builtin::PrintDouble:
    return ir::Intrinsic::PrintDouble;
  case Builtin::PrintStr:
    return ir::Intrinsic::PrintStr;
  case Builtin::Malloc:
    return ir::Intrinsic::Malloc;
  case Builtin::Arg:
    return ir::Intrinsic::Arg;
  case Builtin::InputLen:
    return ir::Intrinsic::InputLen;
  case Builtin::InputByte:
    return ir::Intrinsic::InputByte;
  case Builtin::Trap:
    return ir::Intrinsic::Trap;
  }
  reportFatalError("unknown builtin");
}

MemWidth widthFor(const Type &Ty) {
  return Ty.isChar() ? MemWidth::I8 : MemWidth::I64;
}

class CodeGenImpl {
public:
  CodeGenImpl(const Program &P, const SemaResult &SR) : P(P), SR(SR) {}

  std::unique_ptr<ir::Module> run() {
    M = std::make_unique<ir::Module>();

    // Globals first, so functions can address them.
    GlobalOffsets.resize(P.Globals.size());
    for (size_t I = 0; I < P.Globals.size(); ++I)
      GlobalOffsets[I] = emitGlobal(*P.Globals[I]);

    // Declare every function up front (mutual recursion), then emit.
    for (const auto &FD : P.Functions)
      M->createFunction(FD->Name,
                        static_cast<unsigned>(FD->Params.size()));
    for (size_t I = 0; I < P.Functions.size(); ++I)
      emitFunction(*P.Functions[I], SR.Funcs[I]);

    return std::move(M);
  }

private:
  //===--- globals --------------------------------------------------------===//

  uint32_t emitGlobal(const GlobalDecl &G) {
    uint32_t Offset = M->allocateGlobal(static_cast<uint32_t>(G.Ty.size()));
    if (G.HasInit) {
      uint64_t Bits;
      if (G.Ty.isDouble()) {
        double D = G.InitFloat;
        std::memcpy(&Bits, &D, 8);
      } else {
        Bits = static_cast<uint64_t>(G.InitInt);
      }
      if (G.Ty.isChar()) {
        uint8_t Byte = static_cast<uint8_t>(Bits);
        M->patchGlobalImage(Offset, &Byte, 1);
      } else {
        M->patchGlobalImage(Offset, &Bits, 8);
      }
    }
    return Offset;
  }

  uint32_t internString(const std::string &S) {
    auto It = StringOffsets.find(S);
    if (It != StringOffsets.end())
      return It->second;
    std::vector<uint8_t> Data(S.begin(), S.end());
    Data.push_back(0);
    uint32_t Offset = M->allocateGlobalData(Data);
    StringOffsets.emplace(S, Offset);
    return Offset;
  }

  //===--- per-function state ---------------------------------------------===//

  struct Storage {
    bool InReg = false;
    Reg R;
    uint32_t FrameOffset = 0;
  };

  /// Loop context for break/continue.
  struct LoopCtx {
    BasicBlock *ContinueTarget;
    BasicBlock *BreakTarget;
  };

  void emitFunction(const FuncDecl &FD, const FuncInfo &FI) {
    F = M->getFunction(FD.Id);
    CurFI = &FI;
    CurFD = &FD;
    Builder = std::make_unique<IRBuilder>(F);
    Loops.clear();

    BasicBlock *Entry = F->createBlock("entry");
    Builder->setInsertBlock(Entry);

    // Assign storage: registers for non-address-taken scalars, frame
    // slots otherwise.
    Locals.assign(FI.Locals.size(), Storage());
    uint32_t FrameSize = 0;
    for (size_t I = 0; I < FI.Locals.size(); ++I) {
      const LocalVar &LV = FI.Locals[I];
      bool Scalar = LV.Ty.isScalar();
      if (Scalar && !LV.AddressTaken) {
        Locals[I].InReg = true;
        Locals[I].R = LV.IsParam ? F->getParamReg(static_cast<unsigned>(I))
                                 : F->newReg();
      } else {
        uint64_t Size = (LV.Ty.size() + 7) & ~7ull;
        Locals[I].FrameOffset = FrameSize;
        FrameSize += static_cast<uint32_t>(Size);
      }
    }
    F->setFrameSize(FrameSize);

    // Spill address-taken parameters into their slots.
    for (size_t I = 0; I < FD.Params.size(); ++I) {
      if (!Locals[I].InReg)
        Builder->store(F->getParamReg(static_cast<unsigned>(I)), ir::SpReg,
                       Locals[I].FrameOffset, widthFor(FI.Locals[I].Ty));
    }

    genStmt(*FD.Body);

    // Implicit return for functions that fall off the end.
    if (!Builder->getInsertBlock()->hasTerminator()) {
      if (FD.ReturnType.isVoid())
        Builder->ret();
      else
        Builder->retValue(Builder->loadImm(0));
    }
  }

  //===--- statements -----------------------------------------------------===//

  /// Starts a fresh block for any code following a mid-block terminator
  /// (break/continue/return); that code is unreachable but must still be
  /// generated into well-formed blocks.
  void ensureOpenBlock(const char *Name) {
    if (Builder->getInsertBlock()->hasTerminator())
      Builder->setInsertBlock(Builder->makeBlock(Name));
  }

  void genStmt(const Stmt &S) {
    ensureOpenBlock("unreachable");
    switch (S.Kind) {
    case StmtKind::Block:
      for (const StmtPtr &Child : S.Body)
        genStmt(*Child);
      return;
    case StmtKind::If:
      return genIf(S);
    case StmtKind::While:
      return genWhile(S);
    case StmtKind::DoWhile:
      return genDoWhile(S);
    case StmtKind::For:
      return genFor(S);
    case StmtKind::Return:
      if (S.Value) {
        Reg V = genExpr(*S.Value);
        V = convert(V, S.Value->Ty.decay(), CurFD->ReturnType);
        Builder->retValue(V);
      } else {
        Builder->ret();
      }
      return;
    case StmtKind::Break:
      assert(!Loops.empty() && "break outside loop (sema bug)");
      Builder->jump(Loops.back().BreakTarget);
      return;
    case StmtKind::Continue:
      assert(!Loops.empty() && "continue outside loop (sema bug)");
      Builder->jump(Loops.back().ContinueTarget);
      return;
    case StmtKind::VarDecl:
      if (S.Value) {
        uint32_t Watermark = F->getNumRegs();
        Reg V = genExpr(*S.Value);
        V = convert(V, S.Value->Ty.decay(), S.VarType);
        storeToLocal(S.VarId, V, Watermark);
      }
      return;
    case StmtKind::ExprStmt:
      (void)genExpr(*S.Value);
      return;
    }
  }

  void genIf(const Stmt &S) {
    BasicBlock *ThenB = Builder->makeBlock("if.then");
    BasicBlock *Join = Builder->makeBlock("if.join");
    BasicBlock *ElseB = S.Else ? Builder->makeBlock("if.else") : Join;

    genBranch(*S.Cond, ThenB, ElseB);

    Builder->setInsertBlock(ThenB);
    genStmt(*S.Then);
    if (!Builder->getInsertBlock()->hasTerminator())
      Builder->jump(Join);

    if (S.Else) {
      Builder->setInsertBlock(ElseB);
      genStmt(*S.Else);
      if (!Builder->getInsertBlock()->hasTerminator())
        Builder->jump(Join);
    }
    Builder->setInsertBlock(Join);
  }

  /// While loops are rotated exactly as the paper describes compilers
  /// doing: "generating an if-then around a do-until loop, replicating
  /// the loop test". The guard branch is a *non-loop* branch choosing
  /// between entering the loop and skipping it; the bottom test is the
  /// loop (backedge) branch.
  void genWhile(const Stmt &S) {
    BasicBlock *Body = Builder->makeBlock("while.body");
    BasicBlock *Latch = Builder->makeBlock("while.latch");
    BasicBlock *Exit = Builder->makeBlock("while.exit");

    genBranch(*S.Cond, Body, Exit); // guard (replicated test)

    Builder->setInsertBlock(Body);
    Loops.push_back({Latch, Exit});
    genStmt(*S.Then);
    Loops.pop_back();
    if (!Builder->getInsertBlock()->hasTerminator())
      Builder->jump(Latch);

    Builder->setInsertBlock(Latch);
    genBranch(*S.Cond, Body, Exit); // bottom test: backedge to Body

    Builder->setInsertBlock(Exit);
  }

  void genDoWhile(const Stmt &S) {
    BasicBlock *Body = Builder->makeBlock("do.body");
    BasicBlock *Latch = Builder->makeBlock("do.latch");
    BasicBlock *Exit = Builder->makeBlock("do.exit");

    Builder->jump(Body);
    Builder->setInsertBlock(Body);
    Loops.push_back({Latch, Exit});
    genStmt(*S.Then);
    Loops.pop_back();
    if (!Builder->getInsertBlock()->hasTerminator())
      Builder->jump(Latch);

    Builder->setInsertBlock(Latch);
    genBranch(*S.Cond, Body, Exit);

    Builder->setInsertBlock(Exit);
  }

  void genFor(const Stmt &S) {
    if (S.Init)
      genStmt(*S.Init);
    ensureOpenBlock("for.preheader");

    BasicBlock *Body = Builder->makeBlock("for.body");
    BasicBlock *Step = Builder->makeBlock("for.step");
    BasicBlock *Exit = Builder->makeBlock("for.exit");

    if (S.Cond)
      genBranch(*S.Cond, Body, Exit); // guard (replicated test)
    else
      Builder->jump(Body);

    Builder->setInsertBlock(Body);
    Loops.push_back({Step, Exit});
    genStmt(*S.Then);
    Loops.pop_back();
    if (!Builder->getInsertBlock()->hasTerminator())
      Builder->jump(Step);

    Builder->setInsertBlock(Step);
    if (S.Step)
      (void)genExpr(*S.Step);
    if (S.Cond)
      genBranch(*S.Cond, Body, Exit); // bottom test: backedge
    else
      Builder->jump(Body);

    Builder->setInsertBlock(Exit);
  }

  //===--- conversions ----------------------------------------------------===//

  /// Converts \p V from \p From to \p To (both decayed scalar types).
  Reg convert(Reg V, const Type &From, const Type &To) {
    if (From.isDouble() && !To.isDouble() && To.isArithmetic())
      return Builder->funop(Opcode::CvtFI, V);
    if (!From.isDouble() && From.isArithmetic() && To.isDouble())
      return Builder->funop(Opcode::CvtIF, V);
    return V;
  }

  /// Result type of a MiniC arithmetic binary op.
  static Type commonType(const Type &L, const Type &R) {
    return (L.isDouble() || R.isDouble()) ? Type::doubleTy() : Type::intTy();
  }

  //===--- lvalues ---------------------------------------------------------===//

  void storeToLocal(uint32_t Id, Reg V, uint32_t Watermark) {
    const Storage &St = Locals[Id];
    if (St.InReg)
      writeVar(St.R, V, Watermark);
    else
      Builder->store(V, ir::SpReg, St.FrameOffset,
                     widthFor(CurFI->Locals[Id].Ty));
  }

  /// Writes \p V into variable register \p VarReg. When \p V is a fresh
  /// temporary (id at or above \p Watermark) defined by the last
  /// instruction of the current block, the copy is coalesced into that
  /// instruction — modeling a register-allocating compiler, whose
  /// bottom-of-loop tests read load results directly (the shape the
  /// Pointer heuristic pattern-matches).
  void writeVar(Reg VarReg, Reg V, uint32_t Watermark) {
    auto &Insts = Builder->getInsertBlock()->instructions();
    if (V.Id >= Watermark && !Insts.empty() && Insts.back().def() == V) {
      Insts.back().Dst = VarReg;
      return;
    }
    Builder->moveInto(VarReg, V);
  }

  /// Address of an lvalue expression. Register-resident locals have no
  /// address (sema forces AddressTaken ones into slots).
  Reg genAddr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::VarRef: {
      if (E.Binding.K == VarBinding::Global)
        return Builder->addImm(ir::GpReg, GlobalOffsets[E.Binding.Id]);
      assert(E.Binding.K == VarBinding::Local && "bad lvalue binding");
      const Storage &St = Locals[E.Binding.Id];
      assert(!St.InReg && "taking address of register-resident local");
      return Builder->addImm(ir::SpReg, St.FrameOffset);
    }
    case ExprKind::Unary:
      assert(E.UOp == UnOp::Deref && "not an lvalue unary");
      return genExpr(*E.Lhs);
    case ExprKind::Index: {
      Type Base = E.Lhs->Ty.decay();
      Reg BaseV = genExpr(*E.Lhs); // arrays yield their address
      Reg Idx = genExpr(*E.Rhs);
      uint64_t Size = Base.pointee().size();
      Reg Scaled = Size == 1
                       ? Idx
                       : Builder->binopImm(Opcode::Mul, Idx,
                                           static_cast<int64_t>(Size));
      return Builder->add(BaseV, Scaled);
    }
    case ExprKind::Member: {
      const StructDef *S = E.IsArrow
                               ? E.Lhs->Ty.decay().pointee().structDef()
                               : E.Lhs->Ty.structDef();
      const FieldDef *Field = S->findField(E.StrValue);
      assert(Field && "field vanished after sema");
      Reg Base = E.IsArrow ? genExpr(*E.Lhs) : genAddr(*E.Lhs);
      return Builder->addImm(Base, static_cast<int64_t>(Field->Offset));
    }
    default:
      reportFatalError("genAddr on a non-lvalue expression");
    }
  }

  /// True when the lvalue can be written without materializing an
  /// address (a register-resident local).
  bool isRegisterLocal(const Expr &E) const {
    return E.Kind == ExprKind::VarRef && E.Binding.K == VarBinding::Local &&
           Locals[E.Binding.Id].InReg;
  }

  /// For memory-resident scalar variables, the MIPS-style direct
  /// base+offset addressing: off(gp) for globals, off(sp) for stack
  /// locals. Computed lvalues (indexing, members, derefs) return
  /// nullopt and go through an address register.
  std::optional<std::pair<Reg, int64_t>>
  directSlot(const Expr &E) const {
    if (E.Kind != ExprKind::VarRef)
      return std::nullopt;
    if (E.Binding.K == VarBinding::Global)
      return std::make_pair(ir::GpReg,
                            static_cast<int64_t>(
                                GlobalOffsets[E.Binding.Id]));
    if (E.Binding.K == VarBinding::Local && !Locals[E.Binding.Id].InReg)
      return std::make_pair(ir::SpReg,
                            static_cast<int64_t>(
                                Locals[E.Binding.Id].FrameOffset));
    return std::nullopt;
  }

  //===--- expressions ----------------------------------------------------===//

  Reg genExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return Builder->loadImm(E.IntValue);
    case ExprKind::FloatLit:
      return Builder->loadFImm(E.FloatValue);
    case ExprKind::StringLit:
      return Builder->addImm(ir::GpReg, internString(E.StrValue));
    case ExprKind::VarRef:
      return genVarRef(E);
    case ExprKind::Unary:
      return genUnary(E);
    case ExprKind::Binary:
      return genBinary(E);
    case ExprKind::Assign:
      return genAssign(E);
    case ExprKind::CompoundAssign:
      return genCompoundAssign(E);
    case ExprKind::IncDec:
      return genIncDec(E);
    case ExprKind::Call:
      return genCall(E);
    case ExprKind::Index:
    case ExprKind::Member:
      return loadLValue(E);
    case ExprKind::Cast: {
      Reg V = genExpr(*E.Lhs);
      return convert(V, E.Lhs->Ty.decay(), E.CastType);
    }
    case ExprKind::Sizeof:
      return Builder->loadImm(static_cast<int64_t>(E.CastType.size()));
    }
    reportFatalError("unknown expression kind");
  }

  Reg genVarRef(const Expr &E) {
    if (E.Ty.isArray() || E.Ty.isStruct())
      return genAddr(E); // aggregates evaluate to their address
    if (E.Binding.K == VarBinding::Local && Locals[E.Binding.Id].InReg)
      return Locals[E.Binding.Id].R;
    Reg Addr;
    int64_t Offset;
    if (E.Binding.K == VarBinding::Global) {
      Addr = ir::GpReg;
      Offset = GlobalOffsets[E.Binding.Id];
    } else {
      Addr = ir::SpReg;
      Offset = Locals[E.Binding.Id].FrameOffset;
    }
    return Builder->load(Addr, Offset, widthFor(E.Ty));
  }

  Reg loadLValue(const Expr &E) {
    if (E.Ty.isArray() || E.Ty.isStruct())
      return genAddr(E);
    Reg Addr = genAddr(E);
    return Builder->load(Addr, 0, widthFor(E.Ty));
  }

  Reg genUnary(const Expr &E) {
    switch (E.UOp) {
    case UnOp::Neg: {
      Reg V = genExpr(*E.Lhs);
      if (E.Ty.isDouble()) {
        V = convert(V, E.Lhs->Ty.decay(), Type::doubleTy());
        return Builder->funop(Opcode::FNeg, V);
      }
      return Builder->binop(Opcode::Sub, ir::ZeroReg, V);
    }
    case UnOp::Not: {
      const Type Sub = E.Lhs->Ty.decay();
      if (Sub.isDouble()) {
        // !d == (d == 0.0), materialized through the FP flag.
        return genCondValue(E, /*Negate=*/false);
      }
      Reg V = genExpr(*E.Lhs);
      return Builder->binop(Opcode::Seq, V, ir::ZeroReg);
    }
    case UnOp::BitNot: {
      Reg V = genExpr(*E.Lhs);
      return Builder->binopImm(Opcode::Xor, V, -1);
    }
    case UnOp::Deref:
      return loadLValue(E);
    case UnOp::AddrOf:
      return genAddr(*E.Lhs);
    }
    reportFatalError("unknown unary operator");
  }

  static bool isComparison(BinOp Op) {
    switch (Op) {
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne:
      return true;
    default:
      return false;
    }
  }

  Reg genBinary(const Expr &E) {
    if (E.BOp == BinOp::LogAnd || E.BOp == BinOp::LogOr)
      return genCondValue(E, false);
    if (isComparison(E.BOp))
      return genComparisonValue(E);

    Type L = E.Lhs->Ty.decay(), R = E.Rhs->Ty.decay();

    // Pointer arithmetic.
    if (E.BOp == BinOp::Add || E.BOp == BinOp::Sub) {
      if (L.isPointer() && R.isIntegral())
        return genPointerOffset(E, L, /*PointerOnLeft=*/true);
      if (E.BOp == BinOp::Add && L.isIntegral() && R.isPointer())
        return genPointerOffset(E, R, /*PointerOnLeft=*/false);
      if (E.BOp == BinOp::Sub && L.isPointer() && R.isPointer()) {
        Reg A = genExpr(*E.Lhs);
        Reg B = genExpr(*E.Rhs);
        Reg Diff = Builder->sub(A, B);
        uint64_t Size = L.pointee().size();
        if (Size == 1)
          return Diff;
        return Builder->binopImm(Opcode::Div, Diff,
                                 static_cast<int64_t>(Size));
      }
    }

    Type Common = commonType(L, R);
    Reg A = convert(genExpr(*E.Lhs), L, Common);
    Reg B = convert(genExpr(*E.Rhs), R, Common);

    if (Common.isDouble()) {
      Opcode Op;
      switch (E.BOp) {
      case BinOp::Add:
        Op = Opcode::FAdd;
        break;
      case BinOp::Sub:
        Op = Opcode::FSub;
        break;
      case BinOp::Mul:
        Op = Opcode::FMul;
        break;
      case BinOp::Div:
        Op = Opcode::FDiv;
        break;
      default:
        reportFatalError("invalid double operator (sema bug)");
      }
      return Builder->fbinop(Op, A, B);
    }

    Opcode Op;
    switch (E.BOp) {
    case BinOp::Add:
      Op = Opcode::Add;
      break;
    case BinOp::Sub:
      Op = Opcode::Sub;
      break;
    case BinOp::Mul:
      Op = Opcode::Mul;
      break;
    case BinOp::Div:
      Op = Opcode::Div;
      break;
    case BinOp::Rem:
      Op = Opcode::Rem;
      break;
    case BinOp::Shl:
      Op = Opcode::Shl;
      break;
    case BinOp::Shr:
      Op = Opcode::Shr;
      break;
    case BinOp::BitAnd:
      Op = Opcode::And;
      break;
    case BinOp::BitOr:
      Op = Opcode::Or;
      break;
    case BinOp::BitXor:
      Op = Opcode::Xor;
      break;
    default:
      reportFatalError("unhandled integer operator");
    }
    return Builder->binop(Op, A, B);
  }

  Reg genPointerOffset(const Expr &E, const Type &PtrTy, bool PointerOnLeft) {
    Reg Ptr = PointerOnLeft ? genExpr(*E.Lhs) : genExpr(*E.Rhs);
    Reg Idx = PointerOnLeft ? genExpr(*E.Rhs) : genExpr(*E.Lhs);
    uint64_t Size = PtrTy.pointee().size();
    if (Size != 1)
      Idx = Builder->binopImm(Opcode::Mul, Idx, static_cast<int64_t>(Size));
    return E.BOp == BinOp::Add ? Builder->add(Ptr, Idx)
                               : Builder->sub(Ptr, Idx);
  }

  /// Integer/pointer comparisons materialize with slt/seq/sne, like a
  /// MIPS compiler; double comparisons go through the FP flag.
  Reg genComparisonValue(const Expr &E) {
    Type L = E.Lhs->Ty.decay(), R = E.Rhs->Ty.decay();
    if (L.isDouble() || R.isDouble())
      return genCondValue(E, false);

    Reg A = genExpr(*E.Lhs);
    Reg B = genExpr(*E.Rhs);
    switch (E.BOp) {
    case BinOp::Eq:
      return Builder->binop(Opcode::Seq, A, B);
    case BinOp::Ne:
      return Builder->binop(Opcode::Sne, A, B);
    case BinOp::Lt:
      return Builder->slt(A, B);
    case BinOp::Gt:
      return Builder->slt(B, A);
    case BinOp::Le:
      return Builder->binopImm(Opcode::Xor, Builder->slt(B, A), 1);
    case BinOp::Ge:
      return Builder->binopImm(Opcode::Xor, Builder->slt(A, B), 1);
    default:
      reportFatalError("not a comparison");
    }
  }

  /// Materializes any boolean condition as 0/1 through control flow (the
  /// MIPS idiom for conditions without a set-instruction form).
  Reg genCondValue(const Expr &E, bool Negate) {
    Reg Result = F->newReg();
    BasicBlock *TrueB = Builder->makeBlock("cond.true");
    BasicBlock *FalseB = Builder->makeBlock("cond.false");
    BasicBlock *Join = Builder->makeBlock("cond.join");
    if (Negate)
      genBranch(E, FalseB, TrueB);
    else
      genBranch(E, TrueB, FalseB);
    Builder->setInsertBlock(TrueB);
    Builder->loadImmInto(Result, 1);
    Builder->jump(Join);
    Builder->setInsertBlock(FalseB);
    Builder->loadImmInto(Result, 0);
    Builder->jump(Join);
    Builder->setInsertBlock(Join);
    return Result;
  }

  Reg genAssign(const Expr &E) {
    if (isRegisterLocal(*E.Lhs)) {
      uint32_t Watermark = F->getNumRegs();
      Reg V = genExpr(*E.Rhs);
      V = convert(V, E.Rhs->Ty.decay(), E.Lhs->Ty);
      writeVar(Locals[E.Lhs->Binding.Id].R, V, Watermark);
      return Locals[E.Lhs->Binding.Id].R;
    }
    if (auto Slot = directSlot(*E.Lhs)) {
      Reg V = genExpr(*E.Rhs);
      V = convert(V, E.Rhs->Ty.decay(), E.Lhs->Ty);
      Builder->store(V, Slot->first, Slot->second, widthFor(E.Lhs->Ty));
      return V;
    }
    Reg Addr = genAddr(*E.Lhs);
    Reg V = genExpr(*E.Rhs);
    V = convert(V, E.Rhs->Ty.decay(), E.Lhs->Ty);
    Builder->store(V, Addr, 0, widthFor(E.Lhs->Ty));
    return V;
  }

  /// Applies \p Op to (Old, RhsV), honoring pointer scaling and doubles.
  Reg applyCompound(BinOp Op, Reg Old, const Type &LTy, const Expr &Rhs) {
    Type RTy = Rhs.Ty.decay();
    if (LTy.isPointer()) {
      Reg Idx = genExpr(Rhs);
      uint64_t Size = LTy.pointee().size();
      if (Size != 1)
        Idx = Builder->binopImm(Opcode::Mul, Idx,
                                static_cast<int64_t>(Size));
      return Op == BinOp::Add ? Builder->add(Old, Idx)
                              : Builder->sub(Old, Idx);
    }
    Type Common = commonType(LTy, RTy);
    Reg A = convert(Old, LTy, Common);
    Reg B = convert(genExpr(Rhs), RTy, Common);
    Reg NewV;
    if (Common.isDouble()) {
      Opcode FOp;
      switch (Op) {
      case BinOp::Add:
        FOp = Opcode::FAdd;
        break;
      case BinOp::Sub:
        FOp = Opcode::FSub;
        break;
      case BinOp::Mul:
        FOp = Opcode::FMul;
        break;
      case BinOp::Div:
        FOp = Opcode::FDiv;
        break;
      default:
        reportFatalError("invalid double compound op");
      }
      NewV = Builder->fbinop(FOp, A, B);
    } else {
      Opcode IOp;
      switch (Op) {
      case BinOp::Add:
        IOp = Opcode::Add;
        break;
      case BinOp::Sub:
        IOp = Opcode::Sub;
        break;
      case BinOp::Mul:
        IOp = Opcode::Mul;
        break;
      case BinOp::Div:
        IOp = Opcode::Div;
        break;
      case BinOp::Rem:
        IOp = Opcode::Rem;
        break;
      default:
        reportFatalError("invalid compound op");
      }
      NewV = Builder->binop(IOp, A, B);
    }
    return convert(NewV, Common, LTy);
  }

  Reg genCompoundAssign(const Expr &E) {
    const Type &LTy = E.Lhs->Ty;
    if (isRegisterLocal(*E.Lhs)) {
      Reg Var = Locals[E.Lhs->Binding.Id].R;
      uint32_t Watermark = F->getNumRegs();
      Reg NewV = applyCompound(E.BOp, Var, LTy, *E.Rhs);
      writeVar(Var, NewV, Watermark);
      return Var;
    }
    if (auto Slot = directSlot(*E.Lhs)) {
      Reg Old = Builder->load(Slot->first, Slot->second, widthFor(LTy));
      Reg NewV = applyCompound(E.BOp, Old, LTy, *E.Rhs);
      Builder->store(NewV, Slot->first, Slot->second, widthFor(LTy));
      return NewV;
    }
    Reg Addr = genAddr(*E.Lhs); // address evaluated once
    Reg Old = Builder->load(Addr, 0, widthFor(LTy));
    Reg NewV = applyCompound(E.BOp, Old, LTy, *E.Rhs);
    Builder->store(NewV, Addr, 0, widthFor(LTy));
    return NewV;
  }

  Reg genIncDec(const Expr &E) {
    const Type &Ty = E.Lhs->Ty;
    int64_t Delta = E.IsIncrement ? 1 : -1;
    if (Ty.isPointer())
      Delta *= static_cast<int64_t>(Ty.pointee().size());

    auto bump = [&](Reg Old) -> Reg {
      if (Ty.isDouble()) {
        Reg One = Builder->loadFImm(static_cast<double>(Delta));
        return Builder->fbinop(Opcode::FAdd, Old, One);
      }
      return Builder->addImm(Old, Delta);
    };

    if (isRegisterLocal(*E.Lhs)) {
      Reg Var = Locals[E.Lhs->Binding.Id].R;
      Reg Old = E.IsPrefix ? Var : Builder->move(Var);
      uint32_t Watermark = F->getNumRegs();
      Reg NewV = bump(Var);
      writeVar(Var, NewV, Watermark);
      return E.IsPrefix ? Var : Old;
    }
    if (auto Slot = directSlot(*E.Lhs)) {
      Reg Old = Builder->load(Slot->first, Slot->second, widthFor(Ty));
      Reg NewV = bump(Old);
      Builder->store(NewV, Slot->first, Slot->second, widthFor(Ty));
      return E.IsPrefix ? NewV : Old;
    }
    Reg Addr = genAddr(*E.Lhs);
    Reg Old = Builder->load(Addr, 0, widthFor(Ty));
    Reg NewV = bump(Old);
    Builder->store(NewV, Addr, 0, widthFor(Ty));
    return E.IsPrefix ? NewV : Old;
  }

  Reg genCall(const Expr &E) {
    std::vector<Reg> Args;
    Args.reserve(E.Args.size());

    if (const Builtin *B = lookupBuiltin(E.StrValue)) {
      Type DArg = Type::doubleTy();
      for (size_t I = 0; I < E.Args.size(); ++I) {
        Reg V = genExpr(*E.Args[I]);
        // print_double takes a double; everything else takes ints or
        // pointers (no conversion needed beyond int<->double).
        Type Want = (*B == Builtin::PrintDouble) ? DArg : Type::intTy();
        if (Want.isDouble() || E.Args[I]->Ty.decay().isDouble())
          V = convert(V, E.Args[I]->Ty.decay(), Want);
        Args.push_back(V);
      }
      if (E.Ty.isVoid()) {
        Builder->callIntrinsicVoid(builtinIntrinsic(*B), Args);
        return Reg();
      }
      return Builder->callIntrinsic(builtinIntrinsic(*B), Args);
    }

    assert(E.Binding.K == VarBinding::Function && "unresolved call");
    const FuncDecl &Callee = *P.Functions[E.Binding.Id];
    for (size_t I = 0; I < E.Args.size(); ++I) {
      Reg V = genExpr(*E.Args[I]);
      V = convert(V, E.Args[I]->Ty.decay(), Callee.Params[I].Ty);
      Args.push_back(V);
    }
    ir::Function *Target = M->getFunction(E.Binding.Id);
    if (E.Ty.isVoid()) {
      Builder->callVoid(Target, Args);
      return Reg();
    }
    return Builder->call(Target, Args);
  }

  //===--- branch generation ----------------------------------------------===//

  static bool isZeroIntLiteral(const Expr &E) {
    return E.Kind == ExprKind::IntLit && E.IntValue == 0;
  }

  /// Emits control flow transferring to \p TrueB when \p E is true.
  /// This is where the MIPS-style branch opcode selection happens.
  void genBranch(const Expr &E, BasicBlock *TrueB, BasicBlock *FalseB) {
    // Every conditional branch lowered below carries the line of the
    // condition (sub)expression that decided it; short-circuit operands
    // re-stamp on recursion, so each emitted branch gets its own line.
    Builder->setSrcLine(E.Line);

    // !e: swap targets.
    if (E.Kind == ExprKind::Unary && E.UOp == UnOp::Not)
      return genBranch(*E.Lhs, FalseB, TrueB);

    if (E.Kind == ExprKind::Binary) {
      if (E.BOp == BinOp::LogAnd) {
        BasicBlock *Mid = Builder->makeBlock("and.rhs");
        genBranch(*E.Lhs, Mid, FalseB);
        Builder->setInsertBlock(Mid);
        return genBranch(*E.Rhs, TrueB, FalseB);
      }
      if (E.BOp == BinOp::LogOr) {
        BasicBlock *Mid = Builder->makeBlock("or.rhs");
        genBranch(*E.Lhs, TrueB, Mid);
        Builder->setInsertBlock(Mid);
        return genBranch(*E.Rhs, TrueB, FalseB);
      }
      if (isComparison(E.BOp))
        return genComparisonBranch(E, TrueB, FalseB);
    }

    // Plain value as condition: value != 0.
    Type Ty = E.Ty.decay();
    Reg V = genExpr(E);
    if (Ty.isDouble()) {
      Reg Z = Builder->loadFImm(0.0);
      Builder->fcmp(Opcode::FCmpEq, V, Z);
      Builder->flagBranch(BranchOp::BC1F, TrueB, FalseB);
      return;
    }
    Builder->condBranch(BranchOp::BNE, V, ir::ZeroReg, TrueB, FalseB);
    if (Ty.isPointer())
      Builder->markPointerCompare();
  }

  void genComparisonBranch(const Expr &E, BasicBlock *TrueB,
                           BasicBlock *FalseB) {
    Type L = E.Lhs->Ty.decay(), R = E.Rhs->Ty.decay();

    // Double comparisons: c.{eq,lt,le}.d + bc1t/bc1f.
    if (L.isDouble() || R.isDouble()) {
      Reg A = convert(genExpr(*E.Lhs), L, Type::doubleTy());
      Reg B = convert(genExpr(*E.Rhs), R, Type::doubleTy());
      switch (E.BOp) {
      case BinOp::Eq:
        Builder->fcmp(Opcode::FCmpEq, A, B);
        return Builder->flagBranch(BranchOp::BC1T, TrueB, FalseB);
      case BinOp::Ne:
        Builder->fcmp(Opcode::FCmpEq, A, B);
        return Builder->flagBranch(BranchOp::BC1F, TrueB, FalseB);
      case BinOp::Lt:
        Builder->fcmp(Opcode::FCmpLt, A, B);
        return Builder->flagBranch(BranchOp::BC1T, TrueB, FalseB);
      case BinOp::Le:
        Builder->fcmp(Opcode::FCmpLe, A, B);
        return Builder->flagBranch(BranchOp::BC1T, TrueB, FalseB);
      case BinOp::Gt:
        Builder->fcmp(Opcode::FCmpLt, B, A);
        return Builder->flagBranch(BranchOp::BC1T, TrueB, FalseB);
      case BinOp::Ge:
        Builder->fcmp(Opcode::FCmpLe, B, A);
        return Builder->flagBranch(BranchOp::BC1T, TrueB, FalseB);
      default:
        reportFatalError("not a comparison");
      }
    }

    bool PointerCmp = L.isPointer() || R.isPointer();

    // Comparisons against literal zero get the MIPS compare-to-zero
    // opcodes (integers only; pointers use beq/bne against $zero).
    if (!PointerCmp) {
      bool ZeroRhs = isZeroIntLiteral(*E.Rhs);
      bool ZeroLhs = isZeroIntLiteral(*E.Lhs);
      if (ZeroRhs || ZeroLhs) {
        const Expr &Val = ZeroRhs ? *E.Lhs : *E.Rhs;
        BinOp Op = E.BOp;
        if (ZeroLhs) {
          // 0 < a  ==  a > 0, etc.
          switch (Op) {
          case BinOp::Lt:
            Op = BinOp::Gt;
            break;
          case BinOp::Le:
            Op = BinOp::Ge;
            break;
          case BinOp::Gt:
            Op = BinOp::Lt;
            break;
          case BinOp::Ge:
            Op = BinOp::Le;
            break;
          default:
            break;
          }
        }
        Reg V = genExpr(Val);
        switch (Op) {
        case BinOp::Lt:
          return Builder->condBranch(BranchOp::BLTZ, V, Reg(), TrueB,
                                     FalseB);
        case BinOp::Le:
          return Builder->condBranch(BranchOp::BLEZ, V, Reg(), TrueB,
                                     FalseB);
        case BinOp::Gt:
          return Builder->condBranch(BranchOp::BGTZ, V, Reg(), TrueB,
                                     FalseB);
        case BinOp::Ge:
          return Builder->condBranch(BranchOp::BGEZ, V, Reg(), TrueB,
                                     FalseB);
        case BinOp::Eq:
          return Builder->condBranch(BranchOp::BEQ, V, ir::ZeroReg, TrueB,
                                     FalseB);
        case BinOp::Ne:
          return Builder->condBranch(BranchOp::BNE, V, ir::ZeroReg, TrueB,
                                     FalseB);
        default:
          reportFatalError("not a comparison");
        }
      }
    }

    // Equality: beq/bne.
    if (E.BOp == BinOp::Eq || E.BOp == BinOp::Ne) {
      Reg A = isZeroIntLiteral(*E.Lhs) ? ir::ZeroReg : genExpr(*E.Lhs);
      Reg B = isZeroIntLiteral(*E.Rhs) ? ir::ZeroReg : genExpr(*E.Rhs);
      Builder->condBranch(E.BOp == BinOp::Eq ? BranchOp::BEQ : BranchOp::BNE,
                          A, B, TrueB, FalseB);
      if (PointerCmp)
        Builder->markPointerCompare();
      return;
    }

    // General relational: slt + bne/beq, the MIPS lowering.
    Reg A = genExpr(*E.Lhs);
    Reg B = genExpr(*E.Rhs);
    switch (E.BOp) {
    case BinOp::Lt:
      return Builder->condBranch(BranchOp::BNE, Builder->slt(A, B),
                                 ir::ZeroReg, TrueB, FalseB);
    case BinOp::Gt:
      return Builder->condBranch(BranchOp::BNE, Builder->slt(B, A),
                                 ir::ZeroReg, TrueB, FalseB);
    case BinOp::Le:
      // a <= b  ==  !(b < a): branch on the slt result being zero.
      return Builder->condBranch(BranchOp::BEQ, Builder->slt(B, A),
                                 ir::ZeroReg, TrueB, FalseB);
    case BinOp::Ge:
      return Builder->condBranch(BranchOp::BEQ, Builder->slt(A, B),
                                 ir::ZeroReg, TrueB, FalseB);
    default:
      reportFatalError("not a comparison");
    }
  }

  const Program &P;
  const SemaResult &SR;
  std::unique_ptr<ir::Module> M;

  std::vector<uint32_t> GlobalOffsets;
  std::unordered_map<std::string, uint32_t> StringOffsets;

  // Per-function state.
  ir::Function *F = nullptr;
  const FuncInfo *CurFI = nullptr;
  const FuncDecl *CurFD = nullptr;
  std::unique_ptr<IRBuilder> Builder;
  std::vector<Storage> Locals;
  std::vector<LoopCtx> Loops;
};

} // namespace

std::unique_ptr<ir::Module> minic::codegen(const Program &P,
                                           const SemaResult &SR) {
  return CodeGenImpl(P, SR).run();
}
