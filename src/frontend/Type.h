//===- frontend/Type.h - MiniC type system ----------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types for MiniC, the C-subset language the workload suite is written
/// in. MiniC has 64-bit ints, 8-bit chars, doubles, pointers, fixed-size
/// arrays, and structs — enough to express the paper's benchmark idioms
/// (pointer chasing, null guards, error codes, FP kernels) and nothing
/// more.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_FRONTEND_TYPE_H
#define BPFREE_FRONTEND_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bpfree {
namespace minic {

/// Base type kinds.
enum class TypeKind {
  Void,
  Int,    ///< 64-bit signed
  Char,   ///< 8-bit signed
  Double, ///< IEEE binary64
  Pointer,
  Array,
  Struct,
};

struct StructDef;

/// A MiniC type. Types are small value objects; pointee/element types
/// are shared_ptrs so Type remains copyable.
class Type {
public:
  Type() : Kind(TypeKind::Void) {}

  static Type voidTy() { return Type(TypeKind::Void); }
  static Type intTy() { return Type(TypeKind::Int); }
  static Type charTy() { return Type(TypeKind::Char); }
  static Type doubleTy() { return Type(TypeKind::Double); }

  static Type pointerTo(Type Pointee) {
    Type T(TypeKind::Pointer);
    T.Inner = std::make_shared<Type>(std::move(Pointee));
    return T;
  }

  static Type arrayOf(Type Element, uint64_t Count) {
    Type T(TypeKind::Array);
    T.Inner = std::make_shared<Type>(std::move(Element));
    T.Count = Count;
    return T;
  }

  static Type structTy(const StructDef *Def) {
    Type T(TypeKind::Struct);
    T.Struct = Def;
    return T;
  }

  TypeKind kind() const { return Kind; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isChar() const { return Kind == TypeKind::Char; }
  bool isDouble() const { return Kind == TypeKind::Double; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isStruct() const { return Kind == TypeKind::Struct; }
  bool isIntegral() const { return isInt() || isChar(); }
  bool isArithmetic() const { return isIntegral() || isDouble(); }
  /// Types usable in a branch condition.
  bool isScalar() const { return isArithmetic() || isPointer(); }

  const Type &pointee() const {
    assert(isPointer() && "pointee() on non-pointer");
    return *Inner;
  }
  const Type &element() const {
    assert(isArray() && "element() on non-array");
    return *Inner;
  }
  uint64_t arrayCount() const {
    assert(isArray() && "arrayCount() on non-array");
    return Count;
  }
  const StructDef *structDef() const {
    assert(isStruct() && "structDef() on non-struct");
    return Struct;
  }

  /// Array-to-pointer decay; identity for other types.
  Type decay() const {
    return isArray() ? pointerTo(element()) : *this;
  }

  /// Size in bytes (structs via their layout; see StructDef).
  uint64_t size() const;

  /// Structural equality (structs by definition identity).
  bool operator==(const Type &RHS) const;
  bool operator!=(const Type &RHS) const { return !(*this == RHS); }

  /// "int", "char *", "struct node", "double [8]", ...
  std::string str() const;

private:
  explicit Type(TypeKind K) : Kind(K) {}

  TypeKind Kind;
  std::shared_ptr<Type> Inner; ///< pointee or element
  uint64_t Count = 0;          ///< array element count
  const StructDef *Struct = nullptr;
};

/// One struct field with its layout offset.
struct FieldDef {
  std::string Name;
  Type Ty;
  uint64_t Offset = 0;
};

/// A struct definition with computed layout (8-byte alignment for
/// everything except chars, which are byte-aligned).
struct StructDef {
  std::string Name;
  std::vector<FieldDef> Fields;
  uint64_t Size = 0;

  const FieldDef *findField(const std::string &FieldName) const {
    for (const FieldDef &F : Fields)
      if (F.Name == FieldName)
        return &F;
    return nullptr;
  }

  /// Assigns field offsets and the total size.
  void computeLayout();
};

} // namespace minic
} // namespace bpfree

#endif // BPFREE_FRONTEND_TYPE_H
