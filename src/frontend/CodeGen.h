//===- frontend/CodeGen.h - MiniC to IR code generation --------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked MiniC Program to bpfree IR, following the MIPS
/// code-generation conventions the paper's heuristics were designed
/// around:
///
///  * globals are addressed off GP, locals off SP — the Pointer
///    heuristic's GP filter depends on this;
///  * scalar locals whose address is never taken live in (mutable)
///    virtual registers — the paper notes that without register
///    allocation the Guard heuristic's coverage collapses;
///  * comparisons against literal zero lower to the MIPS
///    blez/bgtz/bltz/bgez opcodes, equality to beq/bne, FP compares to
///    c.{eq,lt,le}.d + bc1t/bc1f — the Opcode heuristic's vocabulary;
///  * while/for loops are rotated ("an if-then around a do-until loop,
///    replicating the loop test"), the shape the paper observes real
///    compilers emit and which the Loop heuristic exploits;
///  * pointer comparisons set the Terminator::PointerCompare annotation
///    for the type-aware pointer-heuristic extension.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_FRONTEND_CODEGEN_H
#define BPFREE_FRONTEND_CODEGEN_H

#include "frontend/Sema.h"
#include "ir/Module.h"

#include <memory>

namespace bpfree {
namespace minic {

/// Lowers \p P (already analyzed; \p SR from analyze(P)) into a fresh IR
/// module. The generated module passes ir::verifyModule.
std::unique_ptr<ir::Module> codegen(const Program &P, const SemaResult &SR);

} // namespace minic
} // namespace bpfree

#endif // BPFREE_FRONTEND_CODEGEN_H
