//===- frontend/Lexer.cpp - MiniC tokenizer -------------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace bpfree;
using namespace bpfree::minic;

const char *minic::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::FloatLiteral:
    return "float literal";
  case TokKind::CharLiteral:
    return "char literal";
  case TokKind::StringLiteral:
    return "string literal";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwChar:
    return "'char'";
  case TokKind::KwDouble:
    return "'double'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwStruct:
    return "'struct'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwSizeof:
    return "'sizeof'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::StarAssign:
    return "'*='";
  case TokKind::SlashAssign:
    return "'/='";
  case TokKind::PercentAssign:
    return "'%='";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::ShrTok:
    return "'>>'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokKind> &keywords() {
  static const std::unordered_map<std::string, TokKind> Map = {
      {"int", TokKind::KwInt},         {"char", TokKind::KwChar},
      {"double", TokKind::KwDouble},   {"void", TokKind::KwVoid},
      {"struct", TokKind::KwStruct},   {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},         {"do", TokKind::KwDo},
      {"return", TokKind::KwReturn},   {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"sizeof", TokKind::KwSizeof},
  };
  return Map;
}

class LexerImpl {
public:
  explicit LexerImpl(const std::string &Source) : Src(Source) {}

  Expected<std::vector<Token>> run() {
    std::vector<Token> Tokens;
    while (true) {
      if (!skipWhitespaceAndComments())
        return Diag(ErrMessage, ErrLine, ErrColumn);
      Token T;
      T.Line = Line;
      T.Column = Column;
      if (atEnd()) {
        T.Kind = TokKind::Eof;
        Tokens.push_back(T);
        return Tokens;
      }
      if (!lexToken(T))
        return Diag(ErrMessage, ErrLine, ErrColumn);
      Tokens.push_back(std::move(T));
    }
  }

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  bool fail(const std::string &Message) {
    ErrMessage = Message;
    ErrLine = Line;
    ErrColumn = Column;
    return false;
  }

  bool skipWhitespaceAndComments() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
      } else if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
      } else if (C == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (atEnd())
          return fail("unterminated block comment");
        advance();
        advance();
      } else {
        break;
      }
    }
    return true;
  }

  /// Decodes a backslash escape after the '\\' was consumed.
  bool lexEscape(char &Out) {
    if (atEnd())
      return fail("unterminated escape sequence");
    char C = advance();
    switch (C) {
    case 'n':
      Out = '\n';
      return true;
    case 't':
      Out = '\t';
      return true;
    case 'r':
      Out = '\r';
      return true;
    case '0':
      Out = '\0';
      return true;
    case '\\':
      Out = '\\';
      return true;
    case '\'':
      Out = '\'';
      return true;
    case '"':
      Out = '"';
      return true;
    default:
      return fail(std::string("unknown escape '\\") + C + "'");
    }
  }

  bool lexToken(Token &T) {
    char C = peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdentifier(T);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(T);
    if (C == '\'')
      return lexCharLiteral(T);
    if (C == '"')
      return lexStringLiteral(T);
    return lexPunct(T);
  }

  bool lexIdentifier(Token &T) {
    std::string Text;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += advance();
    auto It = keywords().find(Text);
    if (It != keywords().end()) {
      T.Kind = It->second;
    } else {
      T.Kind = TokKind::Identifier;
      T.Text = std::move(Text);
    }
    return true;
  }

  bool lexNumber(Token &T) {
    std::string Text;
    bool IsFloat = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      Text += advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t Save = 1;
      if (peek(1) == '+' || peek(1) == '-')
        Save = 2;
      if (std::isdigit(static_cast<unsigned char>(peek(Save)))) {
        IsFloat = true;
        for (size_t I = 0; I < Save; ++I)
          Text += advance();
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          Text += advance();
      }
    }
    if (IsFloat) {
      T.Kind = TokKind::FloatLiteral;
      T.FloatValue = std::strtod(Text.c_str(), nullptr);
    } else {
      T.Kind = TokKind::IntLiteral;
      T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
    }
    return true;
  }

  bool lexCharLiteral(Token &T) {
    advance(); // opening quote
    if (atEnd())
      return fail("unterminated char literal");
    char Value;
    if (peek() == '\\') {
      advance();
      if (!lexEscape(Value))
        return false;
    } else {
      Value = advance();
    }
    if (atEnd() || advance() != '\'')
      return fail("unterminated char literal");
    T.Kind = TokKind::CharLiteral;
    T.IntValue = static_cast<int64_t>(Value);
    return true;
  }

  bool lexStringLiteral(Token &T) {
    advance(); // opening quote
    std::string Text;
    while (!atEnd() && peek() != '"') {
      char C;
      if (peek() == '\\') {
        advance();
        if (!lexEscape(C))
          return false;
      } else {
        C = advance();
      }
      Text += C;
    }
    if (atEnd())
      return fail("unterminated string literal");
    advance(); // closing quote
    T.Kind = TokKind::StringLiteral;
    T.Text = std::move(Text);
    return true;
  }

  bool lexPunct(Token &T) {
    char C = advance();
    auto two = [&](char Next, TokKind Double, TokKind Single) {
      if (peek() == Next) {
        advance();
        T.Kind = Double;
      } else {
        T.Kind = Single;
      }
      return true;
    };
    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      return true;
    case ')':
      T.Kind = TokKind::RParen;
      return true;
    case '{':
      T.Kind = TokKind::LBrace;
      return true;
    case '}':
      T.Kind = TokKind::RBrace;
      return true;
    case '[':
      T.Kind = TokKind::LBracket;
      return true;
    case ']':
      T.Kind = TokKind::RBracket;
      return true;
    case ';':
      T.Kind = TokKind::Semi;
      return true;
    case ',':
      T.Kind = TokKind::Comma;
      return true;
    case '.':
      T.Kind = TokKind::Dot;
      return true;
    case '~':
      T.Kind = TokKind::Tilde;
      return true;
    case '^':
      T.Kind = TokKind::Caret;
      return true;
    case '+':
      if (peek() == '+') {
        advance();
        T.Kind = TokKind::PlusPlus;
        return true;
      }
      return two('=', TokKind::PlusAssign, TokKind::Plus);
    case '-':
      if (peek() == '-') {
        advance();
        T.Kind = TokKind::MinusMinus;
        return true;
      }
      if (peek() == '>') {
        advance();
        T.Kind = TokKind::Arrow;
        return true;
      }
      return two('=', TokKind::MinusAssign, TokKind::Minus);
    case '*':
      return two('=', TokKind::StarAssign, TokKind::Star);
    case '/':
      return two('=', TokKind::SlashAssign, TokKind::Slash);
    case '%':
      return two('=', TokKind::PercentAssign, TokKind::Percent);
    case '=':
      return two('=', TokKind::EqEq, TokKind::Assign);
    case '!':
      return two('=', TokKind::NotEq, TokKind::Bang);
    case '&':
      return two('&', TokKind::AmpAmp, TokKind::Amp);
    case '|':
      return two('|', TokKind::PipePipe, TokKind::Pipe);
    case '<':
      if (peek() == '<') {
        advance();
        T.Kind = TokKind::Shl;
        return true;
      }
      return two('=', TokKind::LessEq, TokKind::Less);
    case '>':
      if (peek() == '>') {
        advance();
        T.Kind = TokKind::ShrTok;
        return true;
      }
      return two('=', TokKind::GreaterEq, TokKind::Greater);
    default:
      return fail(std::string("unexpected character '") + C + "'");
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;
  int Column = 1;
  std::string ErrMessage;
  int ErrLine = 0;
  int ErrColumn = 0;
};

} // namespace

Expected<std::vector<Token>> minic::lex(const std::string &Source) {
  return LexerImpl(Source).run();
}
