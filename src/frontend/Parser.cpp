//===- frontend/Parser.cpp - MiniC recursive-descent parser ---------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace bpfree;
using namespace bpfree::minic;

namespace {

class ParserImpl {
public:
  explicit ParserImpl(const std::vector<Token> &Tokens) : Tokens(Tokens) {}

  Expected<std::unique_ptr<Program>> run() {
    auto P = std::make_unique<Program>();
    Prog = P.get();
    while (!check(TokKind::Eof)) {
      if (!parseTopLevel())
        return Err;
    }
    return P;
  }

private:
  //===--- token plumbing -------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool check(TokKind K) const { return peek().Kind == K; }
  bool match(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }

  bool fail(const std::string &Message) {
    const Token &T = peek();
    Err = Diag(Message, T.Line, T.Column);
    return false;
  }

  bool expect(TokKind K, const char *Context) {
    if (match(K))
      return true;
    return fail(std::string("expected ") + tokKindName(K) + " " + Context +
                ", found " + tokKindName(peek().Kind));
  }

  //===--- types ----------------------------------------------------------===//

  bool startsType(size_t Ahead = 0) const {
    switch (peek(Ahead).Kind) {
    case TokKind::KwInt:
    case TokKind::KwChar:
    case TokKind::KwDouble:
    case TokKind::KwVoid:
    case TokKind::KwStruct:
      return true;
    default:
      return false;
    }
  }

  /// Parses a type: base type plus pointer stars. Arrays are declared
  /// via declarator suffixes, not here.
  bool parseType(Type &Out) {
    switch (peek().Kind) {
    case TokKind::KwInt:
      advance();
      Out = Type::intTy();
      break;
    case TokKind::KwChar:
      advance();
      Out = Type::charTy();
      break;
    case TokKind::KwDouble:
      advance();
      Out = Type::doubleTy();
      break;
    case TokKind::KwVoid:
      advance();
      Out = Type::voidTy();
      break;
    case TokKind::KwStruct: {
      advance();
      if (!check(TokKind::Identifier))
        return fail("expected struct name");
      std::string Name = advance().Text;
      const StructDef *S = Prog->findStruct(Name);
      if (!S)
        return fail("unknown struct '" + Name + "'");
      Out = Type::structTy(S);
      break;
    }
    default:
      return fail("expected a type");
    }
    while (match(TokKind::Star))
      Out = Type::pointerTo(Out);
    return true;
  }

  /// Parses an optional "[N]" array suffix onto \p Ty.
  bool parseArraySuffix(Type &Ty) {
    if (!match(TokKind::LBracket))
      return true;
    if (!check(TokKind::IntLiteral))
      return fail("array size must be an integer literal");
    int64_t N = advance().IntValue;
    if (N <= 0)
      return fail("array size must be positive");
    if (!expect(TokKind::RBracket, "after array size"))
      return false;
    Ty = Type::arrayOf(Ty, static_cast<uint64_t>(N));
    return true;
  }

  //===--- top level ------------------------------------------------------===//

  bool parseTopLevel() {
    // Struct definition: "struct" IDENT "{".
    if (check(TokKind::KwStruct) && peek(1).Kind == TokKind::Identifier &&
        peek(2).Kind == TokKind::LBrace)
      return parseStructDef();

    Type Ty;
    if (!parseType(Ty))
      return false;
    if (!check(TokKind::Identifier))
      return fail("expected a name after type");
    int Line = peek().Line;
    std::string Name = advance().Text;

    if (check(TokKind::LParen))
      return parseFunction(Ty, Name, Line);
    return parseGlobal(Ty, Name, Line);
  }

  bool parseStructDef() {
    advance(); // struct
    std::string Name = advance().Text;
    if (Prog->findStruct(Name))
      return fail("redefinition of struct '" + Name + "'");
    advance(); // {

    // Register before parsing fields so self-referential pointers work.
    auto Def = std::make_unique<StructDef>();
    StructDef *S = Def.get();
    S->Name = Name;
    Prog->Structs.push_back(std::move(Def));

    while (!check(TokKind::RBrace)) {
      Type FieldTy;
      if (!parseType(FieldTy))
        return false;
      if (!check(TokKind::Identifier))
        return fail("expected field name");
      std::string FieldName = advance().Text;
      if (!parseArraySuffix(FieldTy))
        return false;
      if (FieldTy.isVoid())
        return fail("field '" + FieldName + "' has void type");
      if (FieldTy.isStruct() && FieldTy.structDef() == S)
        return fail("field '" + FieldName + "' has incomplete type");
      if (S->findField(FieldName))
        return fail("duplicate field '" + FieldName + "'");
      S->Fields.push_back({FieldName, FieldTy, 0});
      if (!expect(TokKind::Semi, "after struct field"))
        return false;
    }
    advance(); // }
    if (!expect(TokKind::Semi, "after struct definition"))
      return false;
    if (S->Fields.empty())
      return fail("struct '" + Name + "' has no fields");
    S->computeLayout();
    return true;
  }

  bool parseGlobal(Type Ty, const std::string &Name, int Line) {
    if (!parseArraySuffix(Ty))
      return false;
    if (Ty.isVoid())
      return fail("global '" + Name + "' has void type");
    auto G = std::make_unique<GlobalDecl>();
    G->Name = Name;
    G->Ty = Ty;
    G->Line = Line;
    if (match(TokKind::Assign)) {
      bool Negative = match(TokKind::Minus);
      if (check(TokKind::IntLiteral) || check(TokKind::CharLiteral)) {
        G->HasInit = true;
        G->InitInt = advance().IntValue;
        G->InitFloat = static_cast<double>(G->InitInt);
      } else if (check(TokKind::FloatLiteral)) {
        G->HasInit = true;
        G->InitFloat = advance().FloatValue;
        G->InitInt = static_cast<int64_t>(G->InitFloat);
      } else {
        return fail("global initializer must be a numeric literal");
      }
      if (Negative) {
        G->InitInt = -G->InitInt;
        G->InitFloat = -G->InitFloat;
      }
    }
    Prog->Globals.push_back(std::move(G));
    return expect(TokKind::Semi, "after global declaration");
  }

  bool parseFunction(Type RetTy, const std::string &Name, int Line) {
    advance(); // (
    auto F = std::make_unique<FuncDecl>();
    F->Name = Name;
    F->ReturnType = RetTy;
    F->Line = Line;

    if (!check(TokKind::RParen)) {
      // "(void)" means no parameters.
      if (check(TokKind::KwVoid) && peek(1).Kind == TokKind::RParen) {
        advance();
      } else {
        do {
          ParamDecl P;
          P.Line = peek().Line;
          if (!parseType(P.Ty))
            return false;
          if (P.Ty.isVoid())
            return fail("parameter has void type");
          if (!check(TokKind::Identifier))
            return fail("expected parameter name");
          P.Name = advance().Text;
          // Array parameters decay to pointers, as in C.
          if (check(TokKind::LBracket)) {
            advance();
            if (!expect(TokKind::RBracket, "in array parameter"))
              return false;
            P.Ty = Type::pointerTo(P.Ty);
          }
          F->Params.push_back(std::move(P));
        } while (match(TokKind::Comma));
      }
    }
    if (!expect(TokKind::RParen, "after parameters"))
      return false;
    if (!check(TokKind::LBrace))
      return fail("expected function body");
    StmtPtr Body;
    if (!parseBlock(Body))
      return false;
    F->Body = std::move(Body);
    Prog->Functions.push_back(std::move(F));
    return true;
  }

  //===--- statements -----------------------------------------------------===//

  bool parseBlock(StmtPtr &Out) {
    auto S = std::make_unique<Stmt>(StmtKind::Block);
    S->Line = peek().Line;
    if (!expect(TokKind::LBrace, "to open block"))
      return false;
    while (!check(TokKind::RBrace)) {
      if (check(TokKind::Eof))
        return fail("unterminated block");
      StmtPtr Child;
      if (!parseStatement(Child))
        return false;
      S->Body.push_back(std::move(Child));
    }
    advance(); // }
    Out = std::move(S);
    return true;
  }

  bool parseStatement(StmtPtr &Out) {
    switch (peek().Kind) {
    case TokKind::LBrace:
      return parseBlock(Out);
    case TokKind::KwIf:
      return parseIf(Out);
    case TokKind::KwWhile:
      return parseWhile(Out);
    case TokKind::KwDo:
      return parseDoWhile(Out);
    case TokKind::KwFor:
      return parseFor(Out);
    case TokKind::KwReturn:
      return parseReturn(Out);
    case TokKind::KwBreak: {
      auto S = std::make_unique<Stmt>(StmtKind::Break);
      S->Line = advance().Line;
      Out = std::move(S);
      return expect(TokKind::Semi, "after 'break'");
    }
    case TokKind::KwContinue: {
      auto S = std::make_unique<Stmt>(StmtKind::Continue);
      S->Line = advance().Line;
      Out = std::move(S);
      return expect(TokKind::Semi, "after 'continue'");
    }
    default:
      if (startsType())
        return parseVarDecl(Out) && expect(TokKind::Semi, "after declaration");
      return parseExprStatement(Out);
    }
  }

  bool parseIf(StmtPtr &Out) {
    auto S = std::make_unique<Stmt>(StmtKind::If);
    S->Line = advance().Line; // if
    if (!expect(TokKind::LParen, "after 'if'"))
      return false;
    if (!parseExpr(S->Cond))
      return false;
    if (!expect(TokKind::RParen, "after if condition"))
      return false;
    if (!parseStatement(S->Then))
      return false;
    if (match(TokKind::KwElse))
      if (!parseStatement(S->Else))
        return false;
    Out = std::move(S);
    return true;
  }

  bool parseWhile(StmtPtr &Out) {
    auto S = std::make_unique<Stmt>(StmtKind::While);
    S->Line = advance().Line; // while
    if (!expect(TokKind::LParen, "after 'while'"))
      return false;
    if (!parseExpr(S->Cond))
      return false;
    if (!expect(TokKind::RParen, "after while condition"))
      return false;
    if (!parseStatement(S->Then))
      return false;
    Out = std::move(S);
    return true;
  }

  bool parseDoWhile(StmtPtr &Out) {
    auto S = std::make_unique<Stmt>(StmtKind::DoWhile);
    S->Line = advance().Line; // do
    if (!parseStatement(S->Then))
      return false;
    if (!expect(TokKind::KwWhile, "after do-while body"))
      return false;
    if (!expect(TokKind::LParen, "after 'while'"))
      return false;
    if (!parseExpr(S->Cond))
      return false;
    if (!expect(TokKind::RParen, "after do-while condition"))
      return false;
    Out = std::move(S);
    return expect(TokKind::Semi, "after do-while");
  }

  bool parseFor(StmtPtr &Out) {
    auto S = std::make_unique<Stmt>(StmtKind::For);
    S->Line = advance().Line; // for
    if (!expect(TokKind::LParen, "after 'for'"))
      return false;
    if (!check(TokKind::Semi)) {
      if (startsType()) {
        if (!parseVarDecl(S->Init))
          return false;
      } else {
        if (!parseExprStatementNoSemi(S->Init))
          return false;
      }
    }
    if (!expect(TokKind::Semi, "after for initializer"))
      return false;
    if (!check(TokKind::Semi))
      if (!parseExpr(S->Cond))
        return false;
    if (!expect(TokKind::Semi, "after for condition"))
      return false;
    if (!check(TokKind::RParen))
      if (!parseExpr(S->Step))
        return false;
    if (!expect(TokKind::RParen, "after for step"))
      return false;
    if (!parseStatement(S->Then))
      return false;
    Out = std::move(S);
    return true;
  }

  bool parseReturn(StmtPtr &Out) {
    auto S = std::make_unique<Stmt>(StmtKind::Return);
    S->Line = advance().Line; // return
    if (!check(TokKind::Semi))
      if (!parseExpr(S->Value))
        return false;
    Out = std::move(S);
    return expect(TokKind::Semi, "after return");
  }

  bool parseVarDecl(StmtPtr &Out) {
    auto S = std::make_unique<Stmt>(StmtKind::VarDecl);
    S->Line = peek().Line;
    if (!parseType(S->VarType))
      return false;
    if (!check(TokKind::Identifier))
      return fail("expected variable name");
    S->VarName = advance().Text;
    if (!parseArraySuffix(S->VarType))
      return false;
    if (S->VarType.isVoid())
      return fail("variable '" + S->VarName + "' has void type");
    if (match(TokKind::Assign))
      if (!parseExpr(S->Value))
        return false;
    Out = std::move(S);
    return true;
  }

  bool parseExprStatementNoSemi(StmtPtr &Out) {
    auto S = std::make_unique<Stmt>(StmtKind::ExprStmt);
    S->Line = peek().Line;
    if (!parseExpr(S->Value))
      return false;
    Out = std::move(S);
    return true;
  }

  bool parseExprStatement(StmtPtr &Out) {
    return parseExprStatementNoSemi(Out) &&
           expect(TokKind::Semi, "after expression");
  }

  //===--- expressions ----------------------------------------------------===//

  ExprPtr makeExpr(ExprKind K) {
    auto E = std::make_unique<Expr>(K);
    E->Line = peek().Line;
    E->Column = peek().Column;
    return E;
  }

  bool parseExpr(ExprPtr &Out) { return parseAssignment(Out); }

  bool parseAssignment(ExprPtr &Out) {
    ExprPtr Lhs;
    if (!parseLogicalOr(Lhs))
      return false;
    TokKind K = peek().Kind;
    if (K == TokKind::Assign) {
      auto E = makeExpr(ExprKind::Assign);
      advance();
      E->Lhs = std::move(Lhs);
      if (!parseAssignment(E->Rhs))
        return false;
      Out = std::move(E);
      return true;
    }
    BinOp Op;
    switch (K) {
    case TokKind::PlusAssign:
      Op = BinOp::Add;
      break;
    case TokKind::MinusAssign:
      Op = BinOp::Sub;
      break;
    case TokKind::StarAssign:
      Op = BinOp::Mul;
      break;
    case TokKind::SlashAssign:
      Op = BinOp::Div;
      break;
    case TokKind::PercentAssign:
      Op = BinOp::Rem;
      break;
    default:
      Out = std::move(Lhs);
      return true;
    }
    auto E = makeExpr(ExprKind::CompoundAssign);
    advance();
    E->BOp = Op;
    E->Lhs = std::move(Lhs);
    if (!parseAssignment(E->Rhs))
      return false;
    Out = std::move(E);
    return true;
  }

  /// Parses a left-associative binary level.
  template <typename SubParser>
  bool parseBinaryLevel(ExprPtr &Out, SubParser Sub,
                        std::initializer_list<std::pair<TokKind, BinOp>> Ops) {
    if (!(this->*Sub)(Out))
      return false;
    while (true) {
      bool Matched = false;
      for (auto [K, Op] : Ops) {
        if (check(K)) {
          auto E = makeExpr(ExprKind::Binary);
          advance();
          E->BOp = Op;
          E->Lhs = std::move(Out);
          if (!(this->*Sub)(E->Rhs))
            return false;
          Out = std::move(E);
          Matched = true;
          break;
        }
      }
      if (!Matched)
        return true;
    }
  }

  bool parseLogicalOr(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseLogicalAnd,
                            {{TokKind::PipePipe, BinOp::LogOr}});
  }
  bool parseLogicalAnd(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseBitOr,
                            {{TokKind::AmpAmp, BinOp::LogAnd}});
  }
  bool parseBitOr(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseBitXor,
                            {{TokKind::Pipe, BinOp::BitOr}});
  }
  bool parseBitXor(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseBitAnd,
                            {{TokKind::Caret, BinOp::BitXor}});
  }
  bool parseBitAnd(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseEquality,
                            {{TokKind::Amp, BinOp::BitAnd}});
  }
  bool parseEquality(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseRelational,
                            {{TokKind::EqEq, BinOp::Eq},
                             {TokKind::NotEq, BinOp::Ne}});
  }
  bool parseRelational(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseShift,
                            {{TokKind::Less, BinOp::Lt},
                             {TokKind::LessEq, BinOp::Le},
                             {TokKind::Greater, BinOp::Gt},
                             {TokKind::GreaterEq, BinOp::Ge}});
  }
  bool parseShift(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseAdditive,
                            {{TokKind::Shl, BinOp::Shl},
                             {TokKind::ShrTok, BinOp::Shr}});
  }
  bool parseAdditive(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseMultiplicative,
                            {{TokKind::Plus, BinOp::Add},
                             {TokKind::Minus, BinOp::Sub}});
  }
  bool parseMultiplicative(ExprPtr &Out) {
    return parseBinaryLevel(Out, &ParserImpl::parseUnary,
                            {{TokKind::Star, BinOp::Mul},
                             {TokKind::Slash, BinOp::Div},
                             {TokKind::Percent, BinOp::Rem}});
  }

  bool parseUnary(ExprPtr &Out) {
    UnOp Op;
    switch (peek().Kind) {
    case TokKind::Minus:
      Op = UnOp::Neg;
      break;
    case TokKind::Bang:
      Op = UnOp::Not;
      break;
    case TokKind::Tilde:
      Op = UnOp::BitNot;
      break;
    case TokKind::Star:
      Op = UnOp::Deref;
      break;
    case TokKind::Amp:
      Op = UnOp::AddrOf;
      break;
    case TokKind::PlusPlus:
    case TokKind::MinusMinus: {
      auto E = makeExpr(ExprKind::IncDec);
      E->IsIncrement = advance().Kind == TokKind::PlusPlus;
      E->IsPrefix = true;
      if (!parseUnary(E->Lhs))
        return false;
      Out = std::move(E);
      return true;
    }
    case TokKind::KwSizeof: {
      auto E = makeExpr(ExprKind::Sizeof);
      advance();
      if (!expect(TokKind::LParen, "after 'sizeof'"))
        return false;
      if (!parseType(E->CastType))
        return false;
      if (!parseArraySuffix(E->CastType))
        return false;
      if (!expect(TokKind::RParen, "after sizeof type"))
        return false;
      Out = std::move(E);
      return true;
    }
    default:
      return parseCast(Out);
    }
    auto E = makeExpr(ExprKind::Unary);
    advance();
    E->UOp = Op;
    if (!parseUnary(E->Lhs))
      return false;
    Out = std::move(E);
    return true;
  }

  bool parseCast(ExprPtr &Out) {
    // "(" type ")" unary — unambiguous: MiniC has no typedef names.
    if (check(TokKind::LParen) && startsType(1)) {
      auto E = makeExpr(ExprKind::Cast);
      advance(); // (
      if (!parseType(E->CastType))
        return false;
      if (!expect(TokKind::RParen, "after cast type"))
        return false;
      if (!parseUnary(E->Lhs))
        return false;
      Out = std::move(E);
      return true;
    }
    return parsePostfix(Out);
  }

  bool parsePostfix(ExprPtr &Out) {
    if (!parsePrimary(Out))
      return false;
    while (true) {
      if (check(TokKind::LBracket)) {
        auto E = makeExpr(ExprKind::Index);
        advance();
        E->Lhs = std::move(Out);
        if (!parseExpr(E->Rhs))
          return false;
        if (!expect(TokKind::RBracket, "after index"))
          return false;
        Out = std::move(E);
      } else if (check(TokKind::Dot) || check(TokKind::Arrow)) {
        auto E = makeExpr(ExprKind::Member);
        E->IsArrow = advance().Kind == TokKind::Arrow;
        E->Lhs = std::move(Out);
        if (!check(TokKind::Identifier))
          return fail("expected field name");
        E->StrValue = advance().Text;
        Out = std::move(E);
      } else if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
        auto E = makeExpr(ExprKind::IncDec);
        E->IsIncrement = advance().Kind == TokKind::PlusPlus;
        E->IsPrefix = false;
        E->Lhs = std::move(Out);
        Out = std::move(E);
      } else {
        return true;
      }
    }
  }

  bool parsePrimary(ExprPtr &Out) {
    const Token &T = peek();
    switch (T.Kind) {
    case TokKind::IntLiteral:
    case TokKind::CharLiteral: {
      auto E = makeExpr(ExprKind::IntLit);
      E->IntValue = advance().IntValue;
      Out = std::move(E);
      return true;
    }
    case TokKind::FloatLiteral: {
      auto E = makeExpr(ExprKind::FloatLit);
      E->FloatValue = advance().FloatValue;
      Out = std::move(E);
      return true;
    }
    case TokKind::StringLiteral: {
      auto E = makeExpr(ExprKind::StringLit);
      E->StrValue = advance().Text;
      Out = std::move(E);
      return true;
    }
    case TokKind::Identifier: {
      // Function call or variable reference.
      if (peek(1).Kind == TokKind::LParen) {
        auto E = makeExpr(ExprKind::Call);
        E->StrValue = advance().Text;
        advance(); // (
        if (!check(TokKind::RParen)) {
          do {
            ExprPtr Arg;
            if (!parseExpr(Arg))
              return false;
            E->Args.push_back(std::move(Arg));
          } while (match(TokKind::Comma));
        }
        if (!expect(TokKind::RParen, "after call arguments"))
          return false;
        Out = std::move(E);
        return true;
      }
      auto E = makeExpr(ExprKind::VarRef);
      E->StrValue = advance().Text;
      Out = std::move(E);
      return true;
    }
    case TokKind::LParen: {
      advance();
      if (!parseExpr(Out))
        return false;
      return expect(TokKind::RParen, "after parenthesized expression");
    }
    default:
      return fail(std::string("expected an expression, found ") +
                  tokKindName(T.Kind));
    }
  }

  const std::vector<Token> &Tokens;
  size_t Pos = 0;
  Program *Prog = nullptr;
  Diag Err;
};

} // namespace

Expected<std::unique_ptr<Program>>
minic::parse(const std::vector<Token> &Tokens) {
  assert(!Tokens.empty() && Tokens.back().Kind == TokKind::Eof &&
         "token stream must be Eof-terminated");
  return ParserImpl(Tokens).run();
}

Expected<std::unique_ptr<Program>>
minic::parseSource(const std::string &Source) {
  Expected<std::vector<Token>> Tokens = lex(Source);
  if (!Tokens)
    return Tokens.error();
  return parse(*Tokens);
}
