//===- frontend/Sema.cpp - MiniC semantic analysis ------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include <cassert>
#include <unordered_map>

using namespace bpfree;
using namespace bpfree::minic;

const Builtin *minic::lookupBuiltin(const std::string &Name) {
  static const std::unordered_map<std::string, Builtin> Map = {
      {"print_int", Builtin::PrintInt},
      {"print_char", Builtin::PrintChar},
      {"print_double", Builtin::PrintDouble},
      {"print_str", Builtin::PrintStr},
      {"malloc", Builtin::Malloc},
      {"arg", Builtin::Arg},
      {"input_len", Builtin::InputLen},
      {"input_byte", Builtin::InputByte},
      {"trap", Builtin::Trap},
  };
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : &It->second;
}

namespace {

/// Builtin signatures, aligned with lookupBuiltin.
struct BuiltinSig {
  Type Ret;
  std::vector<Type> Params;
};

BuiltinSig builtinSig(Builtin B) {
  Type I = Type::intTy(), D = Type::doubleTy(), V = Type::voidTy();
  Type CharPtr = Type::pointerTo(Type::charTy());
  switch (B) {
  case Builtin::PrintInt:
    return {V, {I}};
  case Builtin::PrintChar:
    return {V, {I}};
  case Builtin::PrintDouble:
    return {V, {D}};
  case Builtin::PrintStr:
    return {V, {CharPtr}};
  case Builtin::Malloc:
    return {CharPtr, {I}};
  case Builtin::Arg:
    return {I, {I}};
  case Builtin::InputLen:
    return {I, {}};
  case Builtin::InputByte:
    return {I, {I}};
  case Builtin::Trap:
    return {V, {}};
  }
  reportFatalError("unknown builtin");
}

class SemaImpl {
public:
  explicit SemaImpl(Program &P) : P(P) {}

  Expected<SemaResult> run() {
    // Register globals and functions (allows forward references and
    // mutual recursion).
    for (size_t I = 0; I < P.Globals.size(); ++I) {
      GlobalDecl &G = *P.Globals[I];
      G.Id = static_cast<uint32_t>(I);
      if (lookupBuiltin(G.Name))
        return err(G.Line, "global '" + G.Name + "' shadows a builtin");
      if (!GlobalIds.emplace(G.Name, G.Id).second)
        return err(G.Line, "redefinition of global '" + G.Name + "'");
      if (G.HasInit && !G.Ty.isArithmetic())
        return err(G.Line, "only int/char/double globals may have "
                           "initializers");
    }
    for (size_t I = 0; I < P.Functions.size(); ++I) {
      FuncDecl &F = *P.Functions[I];
      F.Id = static_cast<uint32_t>(I);
      if (lookupBuiltin(F.Name))
        return err(F.Line, "function '" + F.Name + "' shadows a builtin");
      if (GlobalIds.count(F.Name))
        return err(F.Line, "'" + F.Name + "' is already a global");
      if (!FunctionIds.emplace(F.Name, F.Id).second)
        return err(F.Line, "redefinition of function '" + F.Name + "'");
      if (F.ReturnType.isStruct() || F.ReturnType.isArray())
        return err(F.Line, "functions must return scalars or void");
    }

    SemaResult R;
    R.Funcs.resize(P.Functions.size());
    for (size_t I = 0; I < P.Functions.size(); ++I)
      if (!analyzeFunction(*P.Functions[I], R.Funcs[I]))
        return Err;
    return R;
  }

private:
  //===--- diagnostics ----------------------------------------------------===//

  bool fail(int Line, const std::string &Message) {
    Err = Diag(Message, Line, 0);
    return false;
  }
  Diag err(int Line, const std::string &Message) {
    return Diag(Message, Line, 0);
  }

  //===--- scopes ---------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  bool declareLocal(int Line, const std::string &Name, Type Ty, bool IsParam,
                    uint32_t &IdOut) {
    assert(!Scopes.empty() && "no active scope");
    if (Scopes.back().count(Name))
      return fail(Line, "redefinition of '" + Name + "' in this scope");
    IdOut = static_cast<uint32_t>(Info->Locals.size());
    Info->Locals.push_back({Name, Ty, IsParam, false});
    Scopes.back().emplace(Name, IdOut);
    return true;
  }

  /// \returns the innermost local with \p Name, or nullptr.
  const uint32_t *findLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  //===--- functions ------------------------------------------------------===//

  bool analyzeFunction(FuncDecl &F, FuncInfo &FI) {
    Info = &FI;
    CurFunc = &F;
    LoopDepth = 0;
    Scopes.clear();
    pushScope();
    for (const ParamDecl &Param : F.Params) {
      if (Param.Ty.isStruct() || Param.Ty.isArray())
        return fail(Param.Line, "parameters must be scalars (pass structs "
                                "by pointer)");
      uint32_t Id;
      if (!declareLocal(Param.Line, Param.Name, Param.Ty, true, Id))
        return false;
    }
    bool Ok = analyzeStmt(*F.Body);
    popScope();
    return Ok;
  }

  //===--- statements -----------------------------------------------------===//

  bool analyzeStmt(Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block: {
      pushScope();
      for (StmtPtr &Child : S.Body)
        if (!analyzeStmt(*Child)) {
          popScope();
          return false;
        }
      popScope();
      return true;
    }
    case StmtKind::If:
      if (!analyzeCondition(*S.Cond))
        return false;
      if (!analyzeStmt(*S.Then))
        return false;
      return !S.Else || analyzeStmt(*S.Else);
    case StmtKind::While:
    case StmtKind::DoWhile: {
      if (!analyzeCondition(*S.Cond))
        return false;
      ++LoopDepth;
      bool Ok = analyzeStmt(*S.Then);
      --LoopDepth;
      return Ok;
    }
    case StmtKind::For: {
      pushScope(); // the induction variable's scope
      bool Ok = true;
      if (S.Init)
        Ok = analyzeStmt(*S.Init);
      if (Ok && S.Cond)
        Ok = analyzeCondition(*S.Cond);
      if (Ok && S.Step)
        Ok = analyzeExpr(*S.Step);
      if (Ok) {
        ++LoopDepth;
        Ok = analyzeStmt(*S.Then);
        --LoopDepth;
      }
      popScope();
      return Ok;
    }
    case StmtKind::Return: {
      const Type &RetTy = CurFunc->ReturnType;
      if (!S.Value) {
        if (!RetTy.isVoid())
          return fail(S.Line, "non-void function must return a value");
        return true;
      }
      if (RetTy.isVoid())
        return fail(S.Line, "void function returns a value");
      if (!analyzeExpr(*S.Value))
        return false;
      return checkAssignable(S.Line, RetTy, *S.Value, "return value");
    }
    case StmtKind::Break:
      if (LoopDepth == 0)
        return fail(S.Line, "'break' outside a loop");
      return true;
    case StmtKind::Continue:
      if (LoopDepth == 0)
        return fail(S.Line, "'continue' outside a loop");
      return true;
    case StmtKind::VarDecl: {
      if (S.Value) {
        if (S.VarType.isStruct() || S.VarType.isArray())
          return fail(S.Line, "aggregate locals cannot have initializers");
        if (!analyzeExpr(*S.Value))
          return false;
        if (!checkAssignable(S.Line, S.VarType, *S.Value, "initializer"))
          return false;
      }
      return declareLocal(S.Line, S.VarName, S.VarType, false, S.VarId);
    }
    case StmtKind::ExprStmt:
      return analyzeExpr(*S.Value);
    }
    reportFatalError("unknown statement kind");
  }

  bool analyzeCondition(Expr &E) {
    if (!analyzeExpr(E))
      return false;
    if (!E.Ty.decay().isScalar())
      return fail(E.Line, "condition must be scalar, got " + E.Ty.str());
    return true;
  }

  //===--- conversions ----------------------------------------------------===//

  static bool isNullLiteral(const Expr &E) {
    return E.Kind == ExprKind::IntLit && E.IntValue == 0;
  }

  /// Checks that \p Src can be assigned/passed/returned as \p Dst.
  bool checkAssignable(int Line, const Type &Dst, const Expr &Src,
                       const char *What) {
    Type SrcTy = Src.Ty.decay();
    if (Dst.isArithmetic() && SrcTy.isArithmetic())
      return true;
    if (Dst.isPointer()) {
      if (SrcTy.isPointer() && (Dst == SrcTy || SrcTy.pointee().isChar() ||
                                Dst.pointee().isChar()))
        return true; // char* interconverts (malloc results)
      if (isNullLiteral(Src))
        return true;
    }
    return fail(Line, std::string("cannot use ") + SrcTy.str() + " as " +
                          Dst.str() + " in " + What);
  }

  //===--- expressions ----------------------------------------------------===//

  bool analyzeExpr(Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      E.Ty = Type::intTy();
      return true;
    case ExprKind::FloatLit:
      E.Ty = Type::doubleTy();
      return true;
    case ExprKind::StringLit:
      E.Ty = Type::pointerTo(Type::charTy());
      return true;
    case ExprKind::VarRef:
      return analyzeVarRef(E);
    case ExprKind::Unary:
      return analyzeUnary(E);
    case ExprKind::Binary:
      return analyzeBinary(E);
    case ExprKind::Assign:
      return analyzeAssign(E);
    case ExprKind::CompoundAssign:
      return analyzeCompoundAssign(E);
    case ExprKind::IncDec:
      return analyzeIncDec(E);
    case ExprKind::Call:
      return analyzeCall(E);
    case ExprKind::Index:
      return analyzeIndex(E);
    case ExprKind::Member:
      return analyzeMember(E);
    case ExprKind::Cast:
      return analyzeCast(E);
    case ExprKind::Sizeof:
      E.Ty = Type::intTy();
      return true;
    }
    reportFatalError("unknown expression kind");
  }

  bool analyzeVarRef(Expr &E) {
    if (const uint32_t *Id = findLocal(E.StrValue)) {
      E.Binding.K = VarBinding::Local;
      E.Binding.Id = *Id;
      E.Ty = Info->Locals[*Id].Ty;
      E.IsLValue = true;
      return true;
    }
    auto GIt = GlobalIds.find(E.StrValue);
    if (GIt != GlobalIds.end()) {
      E.Binding.K = VarBinding::Global;
      E.Binding.Id = GIt->second;
      E.Ty = P.Globals[GIt->second]->Ty;
      E.IsLValue = true;
      return true;
    }
    return fail(E.Line, "use of undeclared identifier '" + E.StrValue + "'");
  }

  bool analyzeUnary(Expr &E) {
    if (!analyzeExpr(*E.Lhs))
      return false;
    Type Sub = E.Lhs->Ty.decay();
    switch (E.UOp) {
    case UnOp::Neg:
      if (!Sub.isArithmetic())
        return fail(E.Line, "cannot negate " + Sub.str());
      E.Ty = Sub.isDouble() ? Type::doubleTy() : Type::intTy();
      return true;
    case UnOp::Not:
      if (!Sub.isScalar())
        return fail(E.Line, "'!' requires a scalar operand");
      E.Ty = Type::intTy();
      return true;
    case UnOp::BitNot:
      if (!Sub.isIntegral())
        return fail(E.Line, "'~' requires an integer operand");
      E.Ty = Type::intTy();
      return true;
    case UnOp::Deref:
      if (!Sub.isPointer())
        return fail(E.Line, "cannot dereference " + Sub.str());
      if (Sub.pointee().isVoid())
        return fail(E.Line, "cannot dereference a void pointer");
      E.Ty = Sub.pointee();
      E.IsLValue = true;
      return true;
    case UnOp::AddrOf: {
      if (!E.Lhs->IsLValue)
        return fail(E.Line, "'&' requires an lvalue");
      markAddressTaken(*E.Lhs);
      E.Ty = Type::pointerTo(E.Lhs->Ty);
      return true;
    }
    }
    reportFatalError("unknown unary operator");
  }

  /// Marks the underlying local variable of \p Lv (if any) as
  /// address-taken so codegen gives it a stack slot.
  void markAddressTaken(Expr &Lv) {
    if (Lv.Kind == ExprKind::VarRef && Lv.Binding.K == VarBinding::Local)
      Info->Locals[Lv.Binding.Id].AddressTaken = true;
  }

  bool analyzeBinary(Expr &E) {
    if (!analyzeExpr(*E.Lhs) || !analyzeExpr(*E.Rhs))
      return false;
    Type L = E.Lhs->Ty.decay(), R = E.Rhs->Ty.decay();

    switch (E.BOp) {
    case BinOp::LogAnd:
    case BinOp::LogOr:
      if (!L.isScalar() || !R.isScalar())
        return fail(E.Line, "logical operators require scalar operands");
      E.Ty = Type::intTy();
      return true;

    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      if (L.isArithmetic() && R.isArithmetic()) {
        E.Ty = Type::intTy();
        return true;
      }
      if (L.isPointer() &&
          (R == L || isNullLiteral(*E.Rhs) ||
           (R.isPointer() && (R.pointee().isChar() || L.pointee().isChar())))) {
        E.Ty = Type::intTy();
        return true;
      }
      if (R.isPointer() && isNullLiteral(*E.Lhs)) {
        E.Ty = Type::intTy();
        return true;
      }
      return fail(E.Line,
                  "cannot compare " + L.str() + " with " + R.str());

    case BinOp::Add:
      if (L.isPointer() && R.isIntegral()) {
        E.Ty = L;
        return true;
      }
      if (L.isIntegral() && R.isPointer()) {
        E.Ty = R;
        return true;
      }
      break;
    case BinOp::Sub:
      if (L.isPointer() && R.isIntegral()) {
        E.Ty = L;
        return true;
      }
      if (L.isPointer() && R == L) {
        E.Ty = Type::intTy(); // element count difference
        return true;
      }
      break;
    case BinOp::Rem:
    case BinOp::Shl:
    case BinOp::Shr:
    case BinOp::BitAnd:
    case BinOp::BitOr:
    case BinOp::BitXor:
      if (!L.isIntegral() || !R.isIntegral())
        return fail(E.Line, "integer operator on non-integers");
      E.Ty = Type::intTy();
      return true;
    default:
      break;
    }

    // Remaining arithmetic: + - * /.
    if (L.isArithmetic() && R.isArithmetic()) {
      E.Ty = (L.isDouble() || R.isDouble()) ? Type::doubleTy()
                                            : Type::intTy();
      return true;
    }
    return fail(E.Line, "invalid operands " + L.str() + " and " + R.str());
  }

  bool analyzeAssign(Expr &E) {
    if (!analyzeExpr(*E.Lhs) || !analyzeExpr(*E.Rhs))
      return false;
    if (!E.Lhs->IsLValue)
      return fail(E.Line, "assignment target is not an lvalue");
    if (E.Lhs->Ty.isArray() || E.Lhs->Ty.isStruct())
      return fail(E.Line, "cannot assign aggregates");
    if (!checkAssignable(E.Line, E.Lhs->Ty, *E.Rhs, "assignment"))
      return false;
    E.Ty = E.Lhs->Ty;
    return true;
  }

  bool analyzeCompoundAssign(Expr &E) {
    if (!analyzeExpr(*E.Lhs) || !analyzeExpr(*E.Rhs))
      return false;
    if (!E.Lhs->IsLValue)
      return fail(E.Line, "assignment target is not an lvalue");
    Type L = E.Lhs->Ty, R = E.Rhs->Ty.decay();
    if (L.isPointer()) {
      if ((E.BOp != BinOp::Add && E.BOp != BinOp::Sub) || !R.isIntegral())
        return fail(E.Line, "invalid pointer compound assignment");
    } else if (L.isArithmetic() && R.isArithmetic()) {
      if (E.BOp == BinOp::Rem && (L.isDouble() || R.isDouble()))
        return fail(E.Line, "'%=' requires integers");
    } else {
      return fail(E.Line, "invalid compound assignment operands");
    }
    E.Ty = L;
    return true;
  }

  bool analyzeIncDec(Expr &E) {
    if (!analyzeExpr(*E.Lhs))
      return false;
    if (!E.Lhs->IsLValue)
      return fail(E.Line, "'++'/'--' requires an lvalue");
    Type L = E.Lhs->Ty;
    if (!L.isIntegral() && !L.isPointer() && !L.isDouble())
      return fail(E.Line, "cannot increment " + L.str());
    E.Ty = L;
    return true;
  }

  bool analyzeCall(Expr &E) {
    // Builtins first.
    if (const Builtin *B = lookupBuiltin(E.StrValue)) {
      BuiltinSig Sig = builtinSig(*B);
      if (E.Args.size() != Sig.Params.size())
        return fail(E.Line, "builtin '" + E.StrValue + "' expects " +
                                std::to_string(Sig.Params.size()) +
                                " arguments");
      for (size_t I = 0; I < E.Args.size(); ++I) {
        if (!analyzeExpr(*E.Args[I]))
          return false;
        if (!checkAssignable(E.Line, Sig.Params[I], *E.Args[I], "argument"))
          return false;
      }
      E.Binding.K = VarBinding::None; // builtin: resolved by name in codegen
      E.Ty = Sig.Ret;
      return true;
    }

    auto It = FunctionIds.find(E.StrValue);
    if (It == FunctionIds.end())
      return fail(E.Line, "call to undefined function '" + E.StrValue + "'");
    const FuncDecl &Callee = *P.Functions[It->second];
    if (E.Args.size() != Callee.Params.size())
      return fail(E.Line, "'" + E.StrValue + "' expects " +
                              std::to_string(Callee.Params.size()) +
                              " arguments, got " +
                              std::to_string(E.Args.size()));
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (!analyzeExpr(*E.Args[I]))
        return false;
      if (!checkAssignable(E.Line, Callee.Params[I].Ty, *E.Args[I],
                           "argument"))
        return false;
    }
    E.Binding.K = VarBinding::Function;
    E.Binding.Id = It->second;
    E.Ty = Callee.ReturnType;
    return true;
  }

  bool analyzeIndex(Expr &E) {
    if (!analyzeExpr(*E.Lhs) || !analyzeExpr(*E.Rhs))
      return false;
    Type Base = E.Lhs->Ty.decay();
    if (!Base.isPointer())
      return fail(E.Line, "cannot index " + E.Lhs->Ty.str());
    if (!E.Rhs->Ty.decay().isIntegral())
      return fail(E.Line, "array index must be an integer");
    E.Ty = Base.pointee();
    E.IsLValue = true;
    return true;
  }

  bool analyzeMember(Expr &E) {
    if (!analyzeExpr(*E.Lhs))
      return false;
    const StructDef *S = nullptr;
    if (E.IsArrow) {
      Type Base = E.Lhs->Ty.decay();
      if (!Base.isPointer() || !Base.pointee().isStruct())
        return fail(E.Line, "'->' requires a struct pointer, got " +
                                E.Lhs->Ty.str());
      S = Base.pointee().structDef();
    } else {
      if (!E.Lhs->Ty.isStruct())
        return fail(E.Line, "'.' requires a struct, got " + E.Lhs->Ty.str());
      if (!E.Lhs->IsLValue)
        return fail(E.Line, "'.' requires an addressable struct");
      S = E.Lhs->Ty.structDef();
    }
    const FieldDef *F = S->findField(E.StrValue);
    if (!F)
      return fail(E.Line, "struct " + S->Name + " has no field '" +
                              E.StrValue + "'");
    E.Ty = F->Ty;
    E.IsLValue = true;
    return true;
  }

  bool analyzeCast(Expr &E) {
    if (!analyzeExpr(*E.Lhs))
      return false;
    Type From = E.Lhs->Ty.decay(), To = E.CastType;
    bool Ok = (To.isArithmetic() && From.isArithmetic()) ||
              (To.isPointer() && (From.isPointer() || From.isIntegral())) ||
              (To.isIntegral() && From.isPointer());
    if (!Ok)
      return fail(E.Line,
                  "invalid cast from " + From.str() + " to " + To.str());
    E.Ty = To;
    return true;
  }

  Program &P;
  Diag Err;
  std::unordered_map<std::string, uint32_t> GlobalIds;
  std::unordered_map<std::string, uint32_t> FunctionIds;

  // Per-function state.
  FuncInfo *Info = nullptr;
  const FuncDecl *CurFunc = nullptr;
  unsigned LoopDepth = 0;
  std::vector<std::unordered_map<std::string, uint32_t>> Scopes;
};

} // namespace

Expected<SemaResult> minic::analyze(Program &P) { return SemaImpl(P).run(); }
