//===- frontend/Ast.h - MiniC abstract syntax trees -------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MiniC. Nodes are built by the parser and annotated in place
/// by semantic analysis (types on expressions, resolved symbols on
/// variable references). Ownership is strictly tree-shaped via
/// unique_ptr.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_FRONTEND_AST_H
#define BPFREE_FRONTEND_AST_H

#include "frontend/Type.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bpfree {
namespace minic {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Binary operators (assignment handled separately).
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LogAnd,
  LogOr,
};

/// Unary operators.
enum class UnOp {
  Neg,    ///< -x
  Not,    ///< !x
  BitNot, ///< ~x
  Deref,  ///< *p
  AddrOf, ///< &x
};

/// Expression node kinds.
enum class ExprKind {
  IntLit,
  FloatLit,
  StringLit,
  VarRef,
  Unary,
  Binary,
  Assign,         ///< lhs = rhs
  CompoundAssign, ///< lhs op= rhs (address evaluated once)
  IncDec,         ///< ++x, x++, --x, x--
  Call,
  Index,  ///< base[index]
  Member, ///< base.field or base->field
  Cast,   ///< (type) expr
  Sizeof, ///< sizeof(type)
};

/// How a variable reference resolved. Filled in by Sema.
struct VarBinding {
  enum Kind { None, Local, Param, Global, Function } K = None;
  /// Local/param: per-function variable id. Global: global id.
  /// Function: function id.
  uint32_t Id = 0;
};

/// One expression node (all kinds share the struct; unused fields stay
/// defaulted). A tagged struct keeps the tree walkable without visitors
/// or RTTI.
struct Expr {
  ExprKind Kind;
  int Line = 0;
  int Column = 0;

  // Literals.
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  std::string StrValue; ///< string literal / identifier / field name

  // Children.
  ExprPtr Lhs, Rhs;           ///< unary uses Lhs only
  std::vector<ExprPtr> Args;  ///< call arguments

  BinOp BOp = BinOp::Add;
  UnOp UOp = UnOp::Neg;
  bool IsArrow = false;   ///< Member: -> vs .
  bool IsPrefix = false;  ///< IncDec
  bool IsIncrement = true;///< IncDec: ++ vs --
  Type CastType;          ///< Cast/Sizeof target

  // Sema annotations.
  Type Ty;                ///< type after decay rules (see Sema)
  VarBinding Binding;     ///< VarRef / Call callee resolution
  bool IsLValue = false;

  explicit Expr(ExprKind Kind) : Kind(Kind) {}
};

/// Statement node kinds.
enum class StmtKind {
  Block,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  VarDecl,
  ExprStmt,
};

/// One statement node.
struct Stmt {
  StmtKind Kind;
  int Line = 0;
  int Column = 0;

  std::vector<StmtPtr> Body; ///< Block
  ExprPtr Cond;              ///< If/While/DoWhile/For
  StmtPtr Then, Else;        ///< If; loop bodies use Then
  StmtPtr Init;              ///< For (VarDecl or ExprStmt)
  ExprPtr Step;              ///< For
  ExprPtr Value;             ///< Return / ExprStmt / VarDecl initializer

  // VarDecl.
  std::string VarName;
  Type VarType;
  uint32_t VarId = 0; ///< Sema: per-function variable id

  explicit Stmt(StmtKind Kind) : Kind(Kind) {}
};

/// A function parameter.
struct ParamDecl {
  std::string Name;
  Type Ty;
  int Line = 0;
};

/// A function definition.
struct FuncDecl {
  std::string Name;
  Type ReturnType;
  std::vector<ParamDecl> Params;
  StmtPtr Body;
  int Line = 0;

  // Sema annotations.
  uint32_t Id = 0; ///< index in Program::Functions (== IR function index)
};

/// A global variable definition (optionally scalar-initialized).
struct GlobalDecl {
  std::string Name;
  Type Ty;
  bool HasInit = false;
  int64_t InitInt = 0;
  double InitFloat = 0.0;
  int Line = 0;

  // Sema annotations.
  uint32_t Id = 0;
};

/// A whole translation unit.
struct Program {
  std::vector<std::unique_ptr<StructDef>> Structs;
  std::vector<std::unique_ptr<GlobalDecl>> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Functions;

  const StructDef *findStruct(const std::string &Name) const {
    for (const auto &S : Structs)
      if (S->Name == Name)
        return S.get();
    return nullptr;
  }

  const FuncDecl *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

} // namespace minic
} // namespace bpfree

#endif // BPFREE_FRONTEND_AST_H
