//===- frontend/Type.cpp - MiniC type system ------------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Type.h"

#include "support/Error.h"

using namespace bpfree;
using namespace bpfree::minic;

uint64_t Type::size() const {
  switch (Kind) {
  case TypeKind::Void:
    return 0;
  case TypeKind::Char:
    return 1;
  case TypeKind::Int:
  case TypeKind::Double:
  case TypeKind::Pointer:
    return 8;
  case TypeKind::Array:
    return element().size() * Count;
  case TypeKind::Struct:
    return Struct->Size;
  }
  reportFatalError("unknown type kind");
}

bool Type::operator==(const Type &RHS) const {
  if (Kind != RHS.Kind)
    return false;
  switch (Kind) {
  case TypeKind::Void:
  case TypeKind::Int:
  case TypeKind::Char:
  case TypeKind::Double:
    return true;
  case TypeKind::Pointer:
    return pointee() == RHS.pointee();
  case TypeKind::Array:
    return Count == RHS.Count && element() == RHS.element();
  case TypeKind::Struct:
    return Struct == RHS.Struct;
  }
  return false;
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "int";
  case TypeKind::Char:
    return "char";
  case TypeKind::Double:
    return "double";
  case TypeKind::Pointer:
    return pointee().str() + " *";
  case TypeKind::Array:
    return element().str() + " [" + std::to_string(Count) + "]";
  case TypeKind::Struct:
    return "struct " + Struct->Name;
  }
  return "?";
}

void StructDef::computeLayout() {
  uint64_t Offset = 0;
  for (FieldDef &F : Fields) {
    uint64_t Align = F.Ty.size() == 1 ? 1 : 8;
    // Char arrays stay byte-aligned; everything else rounds up to 8.
    if (F.Ty.isArray() && F.Ty.element().size() == 1)
      Align = 1;
    Offset = (Offset + Align - 1) & ~(Align - 1);
    F.Offset = Offset;
    Offset += F.Ty.size();
  }
  Size = (Offset + 7) & ~7ull;
  if (Size == 0)
    Size = 8; // empty structs still occupy storage
}
