//===- ir/IRBuilder.cpp - Convenience instruction builder -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cstring>

using namespace bpfree;
using namespace bpfree::ir;

Instruction &IRBuilder::emit(Opcode Op) {
  assert(Cur && "no insertion block set");
  assert(!Cur->hasTerminator() && "appending after terminator");
  Cur->instructions().emplace_back();
  Instruction &I = Cur->instructions().back();
  I.Op = Op;
  return I;
}

Terminator &IRBuilder::setTerm(TermKind Kind) {
  assert(Cur && "no insertion block set");
  assert(!Cur->hasTerminator() && "block already terminated");
  Terminator &T = Cur->terminator();
  T.Kind = Kind;
  Cur->markTerminatorSet();
  return T;
}

Reg IRBuilder::loadImm(int64_t Value) {
  Instruction &I = emit(Opcode::LoadImm);
  I.Dst = F->newReg();
  I.Imm = Value;
  return I.Dst;
}

Reg IRBuilder::loadFImm(double Value) {
  int64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return loadImm(Bits);
}

Reg IRBuilder::move(Reg Src) {
  Instruction &I = emit(Opcode::Move);
  I.Dst = F->newReg();
  I.SrcA = Src;
  return I.Dst;
}

void IRBuilder::moveInto(Reg Dst, Reg Src) {
  assert(Dst.isValid() && !isDedicatedReg(Dst) && "bad move destination");
  Instruction &I = emit(Opcode::Move);
  I.Dst = Dst;
  I.SrcA = Src;
}

void IRBuilder::loadImmInto(Reg Dst, int64_t Value) {
  assert(Dst.isValid() && !isDedicatedReg(Dst) && "bad load destination");
  Instruction &I = emit(Opcode::LoadImm);
  I.Dst = Dst;
  I.Imm = Value;
}

void IRBuilder::markPointerCompare() {
  assert(Cur && Cur->hasTerminator() &&
         Cur->terminator().Kind == TermKind::CondBranch &&
         "no branch to annotate");
  Cur->terminator().PointerCompare = true;
}

Reg IRBuilder::binop(Opcode Op, Reg A, Reg B) {
  Instruction &I = emit(Op);
  I.Dst = F->newReg();
  I.SrcA = A;
  I.SrcB = B;
  return I.Dst;
}

Reg IRBuilder::binopImm(Opcode Op, Reg A, int64_t Imm) {
  Instruction &I = emit(Op);
  I.Dst = F->newReg();
  I.SrcA = A;
  I.Imm = Imm;
  I.BIsImm = true;
  return I.Dst;
}

Reg IRBuilder::funop(Opcode Op, Reg A) {
  Instruction &I = emit(Op);
  I.Dst = F->newReg();
  I.SrcA = A;
  return I.Dst;
}

Reg IRBuilder::fbinop(Opcode Op, Reg A, Reg B) { return binop(Op, A, B); }

void IRBuilder::fcmp(Opcode Op, Reg A, Reg B) {
  assert(isFCmp(Op) && "fcmp requires an FP-compare opcode");
  Instruction &I = emit(Op);
  I.SrcA = A;
  I.SrcB = B;
}

Reg IRBuilder::load(Reg Base, int64_t Offset, MemWidth Width) {
  Instruction &I = emit(Opcode::Load);
  I.Dst = F->newReg();
  I.SrcA = Base;
  I.Imm = Offset;
  I.Width = Width;
  return I.Dst;
}

void IRBuilder::store(Reg Value, Reg Base, int64_t Offset, MemWidth Width) {
  Instruction &I = emit(Opcode::Store);
  I.SrcA = Base;
  I.SrcB = Value;
  I.Imm = Offset;
  I.Width = Width;
}

Reg IRBuilder::call(Function *Callee, const std::vector<Reg> &Args) {
  assert(Callee && Args.size() == Callee->getNumParams() &&
         "call argument count mismatch");
  Instruction &I = emit(Opcode::Call);
  I.Dst = F->newReg();
  I.CalleeIndex = Callee->getIndex();
  I.Args = Args;
  return I.Dst;
}

void IRBuilder::callVoid(Function *Callee, const std::vector<Reg> &Args) {
  assert(Callee && Args.size() == Callee->getNumParams() &&
         "call argument count mismatch");
  Instruction &I = emit(Opcode::Call);
  I.CalleeIndex = Callee->getIndex();
  I.Args = Args;
}

Reg IRBuilder::callIntrinsic(Intrinsic Intr, const std::vector<Reg> &Args) {
  Instruction &I = emit(Opcode::CallIntrinsic);
  I.Dst = F->newReg();
  I.Intr = Intr;
  I.Args = Args;
  return I.Dst;
}

void IRBuilder::callIntrinsicVoid(Intrinsic Intr,
                                  const std::vector<Reg> &Args) {
  Instruction &I = emit(Opcode::CallIntrinsic);
  I.Intr = Intr;
  I.Args = Args;
}

void IRBuilder::jump(BasicBlock *Target) {
  assert(Target && "jump target is null");
  Terminator &T = setTerm(TermKind::Jump);
  T.Taken = Target;
}

void IRBuilder::condBranch(BranchOp Op, Reg Lhs, Reg Rhs, BasicBlock *Taken,
                           BasicBlock *Fallthru) {
  assert(!isFlagBranch(Op) && "use flagBranch for bc1t/bc1f");
  assert(Taken && Fallthru && "branch successors are null");
  Terminator &T = setTerm(TermKind::CondBranch);
  T.BOp = Op;
  T.Lhs = Lhs;
  T.Rhs = Rhs;
  T.Taken = Taken;
  T.Fallthru = Fallthru;
  T.SrcLine = SrcLine;
}

void IRBuilder::flagBranch(BranchOp Op, BasicBlock *Taken,
                           BasicBlock *Fallthru) {
  assert(isFlagBranch(Op) && "flagBranch requires bc1t/bc1f");
  assert(Taken && Fallthru && "branch successors are null");
  Terminator &T = setTerm(TermKind::CondBranch);
  T.BOp = Op;
  T.Taken = Taken;
  T.Fallthru = Fallthru;
  T.SrcLine = SrcLine;
}

void IRBuilder::ret() { setTerm(TermKind::Return); }

void IRBuilder::retValue(Reg Value) {
  Terminator &T = setTerm(TermKind::Return);
  T.RetValue = Value;
  T.HasRetValue = true;
}
