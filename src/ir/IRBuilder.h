//===- ir/IRBuilder.h - Convenience instruction builder ---------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder appends instructions to a current insertion block and hands
/// back result registers, so that codegen, tests, and examples can build
/// functions without touching Instruction fields directly.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_IRBUILDER_H
#define BPFREE_IR_IRBUILDER_H

#include "ir/Function.h"
#include "ir/Module.h"

#include <cassert>

namespace bpfree {
namespace ir {

/// Appends instructions and terminators to basic blocks of one function.
class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F) {}

  Function *getFunction() const { return F; }

  void setInsertBlock(BasicBlock *BB) { Cur = BB; }
  BasicBlock *getInsertBlock() const { return Cur; }

  /// Creates a new block in the function (does not change insertion point).
  BasicBlock *makeBlock(const std::string &Name) {
    return F->createBlock(Name);
  }

  // Immediates and moves.
  Reg loadImm(int64_t Value);
  Reg loadFImm(double Value); ///< LoadImm with the double's bit pattern
  Reg move(Reg Src);

  /// Writes into an existing register (mutable variable assignment).
  void moveInto(Reg Dst, Reg Src);
  void loadImmInto(Reg Dst, int64_t Value);

  /// Marks the just-emitted conditional branch as a pointer comparison
  /// (frontend type annotation consumed by the Pointer heuristic's
  /// type-aware variant).
  void markPointerCompare();

  /// Source line stamped onto conditional branches emitted from here on
  /// (Terminator::SrcLine); 0 clears the annotation. The frontend sets
  /// this from the condition expression before lowering each branch.
  void setSrcLine(int Line) { SrcLine = Line; }

  // Integer ALU, register and immediate forms.
  Reg binop(Opcode Op, Reg A, Reg B);
  Reg binopImm(Opcode Op, Reg A, int64_t Imm);
  Reg add(Reg A, Reg B) { return binop(Opcode::Add, A, B); }
  Reg addImm(Reg A, int64_t Imm) { return binopImm(Opcode::Add, A, Imm); }
  Reg sub(Reg A, Reg B) { return binop(Opcode::Sub, A, B); }
  Reg mul(Reg A, Reg B) { return binop(Opcode::Mul, A, B); }
  Reg slt(Reg A, Reg B) { return binop(Opcode::Slt, A, B); }

  // Floating point.
  Reg funop(Opcode Op, Reg A); ///< FNeg / CvtIF / CvtFI
  Reg fbinop(Opcode Op, Reg A, Reg B);

  /// Emits an FP compare that sets the condition flag for bc1t/bc1f.
  void fcmp(Opcode Op, Reg A, Reg B);

  // Memory.
  Reg load(Reg Base, int64_t Offset, MemWidth Width);
  void store(Reg Value, Reg Base, int64_t Offset, MemWidth Width);

  // Calls.
  Reg call(Function *Callee, const std::vector<Reg> &Args);
  void callVoid(Function *Callee, const std::vector<Reg> &Args);
  Reg callIntrinsic(Intrinsic Intr, const std::vector<Reg> &Args);
  void callIntrinsicVoid(Intrinsic Intr, const std::vector<Reg> &Args);

  // Terminators. Each may be applied once per block.
  void jump(BasicBlock *Target);
  void condBranch(BranchOp Op, Reg Lhs, Reg Rhs, BasicBlock *Taken,
                  BasicBlock *Fallthru);
  /// Flag-reading branch (BC1T/BC1F); a preceding fcmp must set the flag.
  void flagBranch(BranchOp Op, BasicBlock *Taken, BasicBlock *Fallthru);
  void ret();
  void retValue(Reg Value);

private:
  Instruction &emit(Opcode Op);
  Terminator &setTerm(TermKind Kind);

  Function *F;
  BasicBlock *Cur = nullptr;
  int SrcLine = 0;
};

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_IRBUILDER_H
