//===- ir/BasicBlock.h - Basic blocks of the bpfree IR ----------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: a sequence of straight-line instructions ended by one
/// terminator. Blocks mirror the vertices of the paper's control flow
/// graph; a block whose terminator is a conditional branch is "a branch"
/// in the paper's terminology, with a target successor and a fall-thru
/// successor.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_BASICBLOCK_H
#define BPFREE_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <cassert>
#include <string>
#include <vector>

namespace bpfree {
namespace ir {

class Function;

/// A CFG vertex holding instructions and a terminator.
class BasicBlock {
public:
  BasicBlock(Function *Parent, unsigned Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)) {}

  Function *getParent() const { return Parent; }

  /// Dense index within the parent function; stable once created and used
  /// as the key for analyses and edge profiles.
  unsigned getId() const { return Id; }

  const std::string &getName() const { return Name; }

  std::vector<Instruction> &instructions() { return Insts; }
  const std::vector<Instruction> &instructions() const { return Insts; }

  Terminator &terminator() { return Term; }
  const Terminator &terminator() const { return Term; }

  bool hasTerminator() const { return TermSet; }
  void markTerminatorSet() { TermSet = true; }

  /// \returns the number of CFG successors (0 for return, 1 for jump,
  /// 2 for conditional branch).
  unsigned numSuccessors() const;

  /// \returns successor \p I; 0 = Taken, 1 = Fallthru for branches.
  BasicBlock *getSuccessor(unsigned I) const;

  bool isCondBranch() const {
    return TermSet && Term.Kind == TermKind::CondBranch;
  }
  bool isReturnBlock() const {
    return TermSet && Term.Kind == TermKind::Return;
  }

  /// True if the block's only outgoing control flow is an unconditional
  /// jump — the "unconditionally passes control to" relation used by the
  /// Call, Return, and Loop heuristics.
  bool isUnconditionalJump() const {
    return TermSet && Term.Kind == TermKind::Jump;
  }

  /// \returns true if any instruction in the block is a call into another
  /// analyzed function.
  bool containsCall() const;

  /// \returns true if any instruction in the block is a store.
  bool containsStore() const;

private:
  Function *Parent;
  unsigned Id;
  std::string Name;
  std::vector<Instruction> Insts;
  Terminator Term;
  bool TermSet = false;
};

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_BASICBLOCK_H
