//===- ir/IR.cpp - Implementation of the core IR classes ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/Error.h"

#include <algorithm>
#include <cstring>

using namespace bpfree;
using namespace bpfree::ir;

//===----------------------------------------------------------------------===//
// Opcode names
//===----------------------------------------------------------------------===//

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LoadImm:
    return "li";
  case Opcode::Move:
    return "move";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "sll";
  case Opcode::Shr:
    return "sra";
  case Opcode::Slt:
    return "slt";
  case Opcode::Seq:
    return "seq";
  case Opcode::Sne:
    return "sne";
  case Opcode::FAdd:
    return "add.d";
  case Opcode::FSub:
    return "sub.d";
  case Opcode::FMul:
    return "mul.d";
  case Opcode::FDiv:
    return "div.d";
  case Opcode::FNeg:
    return "neg.d";
  case Opcode::CvtIF:
    return "cvt.d.w";
  case Opcode::CvtFI:
    return "cvt.w.d";
  case Opcode::FCmpEq:
    return "c.eq.d";
  case Opcode::FCmpLt:
    return "c.lt.d";
  case Opcode::FCmpLe:
    return "c.le.d";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::CallIntrinsic:
    return "icall";
  }
  reportFatalError("unknown opcode");
}

const char *ir::branchOpName(BranchOp Op) {
  switch (Op) {
  case BranchOp::BEQ:
    return "beq";
  case BranchOp::BNE:
    return "bne";
  case BranchOp::BLEZ:
    return "blez";
  case BranchOp::BGTZ:
    return "bgtz";
  case BranchOp::BLTZ:
    return "bltz";
  case BranchOp::BGEZ:
    return "bgez";
  case BranchOp::BC1T:
    return "bc1t";
  case BranchOp::BC1F:
    return "bc1f";
  }
  reportFatalError("unknown branch opcode");
}

const char *ir::intrinsicName(Intrinsic Intr) {
  switch (Intr) {
  case Intrinsic::PrintInt:
    return "print_int";
  case Intrinsic::PrintChar:
    return "print_char";
  case Intrinsic::PrintDouble:
    return "print_double";
  case Intrinsic::PrintStr:
    return "print_str";
  case Intrinsic::Malloc:
    return "malloc";
  case Intrinsic::Arg:
    return "arg";
  case Intrinsic::InputLen:
    return "input_len";
  case Intrinsic::InputByte:
    return "input_byte";
  case Intrinsic::Trap:
    return "trap";
  }
  reportFatalError("unknown intrinsic");
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

void Instruction::appendUses(std::vector<Reg> &Uses) const {
  switch (Op) {
  case Opcode::LoadImm:
    break;
  case Opcode::Move:
  case Opcode::FNeg:
  case Opcode::CvtIF:
  case Opcode::CvtFI:
    Uses.push_back(SrcA);
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Slt:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    Uses.push_back(SrcA);
    if (!BIsImm)
      Uses.push_back(SrcB);
    break;
  case Opcode::FCmpEq:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
    Uses.push_back(SrcA);
    Uses.push_back(SrcB);
    break;
  case Opcode::Load:
    Uses.push_back(SrcA);
    break;
  case Opcode::Store:
    Uses.push_back(SrcA);
    Uses.push_back(SrcB);
    break;
  case Opcode::Call:
  case Opcode::CallIntrinsic:
    for (Reg R : Args)
      Uses.push_back(R);
    break;
  }
}

Reg Instruction::def() const {
  switch (Op) {
  case Opcode::Store:
  case Opcode::FCmpEq:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
    return Reg();
  case Opcode::Call:
  case Opcode::CallIntrinsic:
    return Dst; // may be invalid for void calls
  default:
    return Dst;
  }
}

//===----------------------------------------------------------------------===//
// Terminator
//===----------------------------------------------------------------------===//

void Terminator::appendUses(std::vector<Reg> &Uses) const {
  switch (Kind) {
  case TermKind::Jump:
    break;
  case TermKind::CondBranch:
    if (!isFlagBranch(BOp)) {
      Uses.push_back(Lhs);
      if (BOp == BranchOp::BEQ || BOp == BranchOp::BNE)
        Uses.push_back(Rhs);
    }
    break;
  case TermKind::Return:
    if (HasRetValue)
      Uses.push_back(RetValue);
    break;
  }
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

unsigned BasicBlock::numSuccessors() const {
  assert(TermSet && "block has no terminator");
  switch (Term.Kind) {
  case TermKind::Return:
    return 0;
  case TermKind::Jump:
    return 1;
  case TermKind::CondBranch:
    return 2;
  }
  reportFatalError("unknown terminator kind");
}

BasicBlock *BasicBlock::getSuccessor(unsigned I) const {
  assert(I < numSuccessors() && "successor index out of range");
  if (Term.Kind == TermKind::Jump)
    return Term.Taken;
  return I == 0 ? Term.Taken : Term.Fallthru;
}

bool BasicBlock::containsCall() const {
  for (const Instruction &I : Insts)
    if (I.isFunctionCall())
      return true;
  return false;
}

bool BasicBlock::containsStore() const {
  for (const Instruction &I : Insts)
    if (I.isStore())
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(Module *Parent, uint32_t Index, std::string Name,
                   unsigned NumParams)
    : Parent(Parent), Index(Index), Name(std::move(Name)),
      NumParams(NumParams), NextReg(FirstVirtualReg + NumParams) {}

BasicBlock *Function::createBlock(std::string BlockName) {
  auto BB = std::make_unique<BasicBlock>(
      this, static_cast<unsigned>(Blocks.size()), std::move(BlockName));
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

std::vector<std::vector<BasicBlock *>> Function::computePredecessors() const {
  std::vector<std::vector<BasicBlock *>> Preds(Blocks.size());
  for (const auto &BB : Blocks)
    for (unsigned I = 0, E = BB->numSuccessors(); I != E; ++I)
      Preds[BB->getSuccessor(I)->getId()].push_back(BB.get());
  return Preds;
}

size_t Function::countCondBranches() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    if (BB->isCondBranch())
      ++N;
  return N;
}

size_t Function::countInstructions() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->instructions().size();
  return N;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::createFunction(const std::string &Name, unsigned NumParams) {
  assert(!FunctionsByName.count(Name) && "duplicate function name");
  auto Index = static_cast<uint32_t>(Functions.size());
  Functions.push_back(
      std::make_unique<Function>(this, Index, Name, NumParams));
  FunctionsByName.emplace(Name, Index);
  return Functions.back().get();
}

Function *Module::findFunction(const std::string &Name) const {
  auto It = FunctionsByName.find(Name);
  return It == FunctionsByName.end() ? nullptr
                                     : Functions[It->second].get();
}

uint32_t Module::allocateGlobal(uint32_t Bytes) {
  // Keep every allocation 8-byte aligned so doubles and pointers in the
  // data segment never straddle alignment boundaries.
  uint32_t Offset = (getGlobalSize() + 7u) & ~7u;
  GlobalImage.resize(Offset + Bytes, 0);
  return Offset;
}

void Module::patchGlobalImage(uint32_t Offset, const void *Data,
                              size_t Size) {
  assert(Offset + Size <= GlobalImage.size() && "patch out of range");
  std::memcpy(GlobalImage.data() + Offset, Data, Size);
}

uint32_t Module::allocateGlobalData(const std::vector<uint8_t> &Data) {
  uint32_t Offset = allocateGlobal(static_cast<uint32_t>(Data.size()));
  std::copy(Data.begin(), Data.end(), GlobalImage.begin() + Offset);
  return Offset;
}

size_t Module::countCondBranches() const {
  size_t N = 0;
  for (const auto &F : Functions)
    N += F->countCondBranches();
  return N;
}

size_t Module::countInstructions() const {
  size_t N = 0;
  for (const auto &F : Functions)
    N += F->countInstructions();
  return N;
}
