//===- ir/Verifier.h - IR structural well-formedness checks ----*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification for IR modules. The frontend runs this after
/// codegen and the VM assumes a verified module, so every malformation
/// the interpreter or the analyses would trip over is diagnosed here.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_VERIFIER_H
#define BPFREE_IR_VERIFIER_H

#include <string>
#include <vector>

namespace bpfree {
namespace ir {

class Function;
class Module;

/// Appends a human-readable message for every malformation found in \p F.
void verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Verifies every function plus module-level invariants.
/// \returns the collected error messages; empty means the module is valid.
std::vector<std::string> verifyModule(const Module &M);

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_VERIFIER_H
