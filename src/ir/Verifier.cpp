//===- ir/Verifier.cpp - IR structural well-formedness checks -------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"

using namespace bpfree;
using namespace bpfree::ir;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  void run() {
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return;
    }
    for (const auto &BB : F)
      verifyBlock(*BB);
  }

private:
  void error(const std::string &Message) {
    Errors.push_back("function '" + F.getName() + "': " + Message);
  }

  void blockError(const BasicBlock &BB, const std::string &Message) {
    error("block '" + BB.getName() + "." + std::to_string(BB.getId()) +
          "': " + Message);
  }

  void checkUse(const BasicBlock &BB, Reg R, const char *What) {
    if (!R.isValid()) {
      blockError(BB, std::string("invalid register used as ") + What);
      return;
    }
    bool Dedicated = isDedicatedReg(R);
    if (!Dedicated && R.Id >= F.getNumRegs())
      blockError(BB, std::string(What) + " register r" +
                         std::to_string(R.Id) + " out of range");
    if (Dedicated && R != ZeroReg && R != SpReg && R != GpReg)
      blockError(BB, std::string(What) + " uses reserved register id " +
                         std::to_string(R.Id));
  }

  void checkDef(const BasicBlock &BB, Reg R) {
    if (!R.isValid())
      return; // void call result
    if (isDedicatedReg(R)) {
      blockError(BB, "instruction defines dedicated register id " +
                         std::to_string(R.Id));
      return;
    }
    if (R.Id >= F.getNumRegs())
      blockError(BB, "defined register r" + std::to_string(R.Id) +
                         " out of range");
  }

  void checkSuccessor(const BasicBlock &BB, const BasicBlock *Succ) {
    if (!Succ) {
      blockError(BB, "null successor");
      return;
    }
    if (Succ->getParent() != &F)
      blockError(BB, "successor belongs to another function");
    else if (F.getBlock(Succ->getId()) != Succ)
      blockError(BB, "successor not owned by parent function");
  }

  void verifyBlock(const BasicBlock &BB) {
    bool FlagSet = false;
    std::vector<Reg> Uses;
    for (const Instruction &I : BB.instructions()) {
      Uses.clear();
      I.appendUses(Uses);
      for (Reg R : Uses)
        checkUse(BB, R, "operand");
      checkDef(BB, I.def());

      if (isFCmp(I.Op))
        FlagSet = true;

      if (I.Op == Opcode::Call) {
        const Module *M = F.getParent();
        if (!M || I.CalleeIndex >= M->numFunctions()) {
          blockError(BB, "call to out-of-range function index " +
                             std::to_string(I.CalleeIndex));
        } else {
          const Function *Callee = M->getFunction(I.CalleeIndex);
          if (I.Args.size() != Callee->getNumParams())
            blockError(BB, "call to '" + Callee->getName() + "' passes " +
                               std::to_string(I.Args.size()) +
                               " args, expected " +
                               std::to_string(Callee->getNumParams()));
        }
      }
    }

    if (!BB.hasTerminator()) {
      blockError(BB, "missing terminator");
      return;
    }

    const Terminator &T = BB.terminator();
    Uses.clear();
    T.appendUses(Uses);
    for (Reg R : Uses)
      checkUse(BB, R, "terminator operand");

    switch (T.Kind) {
    case TermKind::Jump:
      checkSuccessor(BB, T.Taken);
      break;
    case TermKind::CondBranch:
      checkSuccessor(BB, T.Taken);
      checkSuccessor(BB, T.Fallthru);
      if (T.Taken == T.Fallthru)
        blockError(BB, "conditional branch with identical successors");
      if (isFlagBranch(T.BOp) && !FlagSet)
        blockError(BB, "flag branch without a preceding FP compare in the "
                       "same block");
      break;
    case TermKind::Return:
      break;
    }
  }

  const Function &F;
  std::vector<std::string> &Errors;
};

} // namespace

void ir::verifyFunction(const Function &F, std::vector<std::string> &Errors) {
  FunctionVerifier(F, Errors).run();
}

std::vector<std::string> ir::verifyModule(const Module &M) {
  std::vector<std::string> Errors;
  for (const auto &F : M)
    verifyFunction(*F, Errors);
  return Errors;
}
