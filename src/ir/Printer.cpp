//===- ir/Printer.cpp - Textual IR dumping --------------------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Module.h"

#include <sstream>

using namespace bpfree;
using namespace bpfree::ir;

static std::string regName(Reg R) {
  if (!R.isValid())
    return "r?";
  if (R == ZeroReg)
    return "zero";
  if (R == SpReg)
    return "sp";
  if (R == GpReg)
    return "gp";
  return "r" + std::to_string(R.Id);
}

static std::string blockLabel(const BasicBlock *BB) {
  if (!BB)
    return "<null>";
  return BB->getName() + "." + std::to_string(BB->getId());
}

std::string ir::printInstruction(const Instruction &I, const Module *M) {
  std::ostringstream OS;
  OS << opcodeName(I.Op) << ' ';
  switch (I.Op) {
  case Opcode::LoadImm:
    OS << regName(I.Dst) << ", " << I.Imm;
    break;
  case Opcode::Move:
  case Opcode::FNeg:
  case Opcode::CvtIF:
  case Opcode::CvtFI:
    OS << regName(I.Dst) << ", " << regName(I.SrcA);
    break;
  case Opcode::FCmpEq:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
    OS << regName(I.SrcA) << ", " << regName(I.SrcB);
    break;
  case Opcode::Load:
    OS << regName(I.Dst) << ", " << I.Imm << '(' << regName(I.SrcA) << ')'
       << (I.Width == MemWidth::I8 ? " b" : "");
    break;
  case Opcode::Store:
    OS << regName(I.SrcB) << ", " << I.Imm << '(' << regName(I.SrcA) << ')'
       << (I.Width == MemWidth::I8 ? " b" : "");
    break;
  case Opcode::Call: {
    OS << (M ? M->getFunction(I.CalleeIndex)->getName()
             : "@" + std::to_string(I.CalleeIndex));
    OS << '(';
    for (size_t A = 0; A < I.Args.size(); ++A)
      OS << (A ? ", " : "") << regName(I.Args[A]);
    OS << ')';
    if (I.Dst.isValid())
      OS << " -> " << regName(I.Dst);
    break;
  }
  case Opcode::CallIntrinsic: {
    OS << intrinsicName(I.Intr) << '(';
    for (size_t A = 0; A < I.Args.size(); ++A)
      OS << (A ? ", " : "") << regName(I.Args[A]);
    OS << ')';
    if (I.Dst.isValid())
      OS << " -> " << regName(I.Dst);
    break;
  }
  default:
    // Binary ALU / FP forms.
    OS << regName(I.Dst) << ", " << regName(I.SrcA) << ", ";
    if (I.BIsImm)
      OS << I.Imm;
    else
      OS << regName(I.SrcB);
    break;
  }
  return OS.str();
}

std::string ir::printBlock(const BasicBlock &BB, const Module *M) {
  std::ostringstream OS;
  OS << blockLabel(&BB) << ":\n";
  for (const Instruction &I : BB.instructions())
    OS << "  " << printInstruction(I, M) << '\n';
  if (!BB.hasTerminator()) {
    OS << "  <no terminator>\n";
    return OS.str();
  }
  const Terminator &T = BB.terminator();
  switch (T.Kind) {
  case TermKind::Jump:
    OS << "  j " << blockLabel(T.Taken) << '\n';
    break;
  case TermKind::CondBranch:
    OS << "  " << branchOpName(T.BOp);
    if (!isFlagBranch(T.BOp)) {
      OS << ' ' << regName(T.Lhs);
      if (T.BOp == BranchOp::BEQ || T.BOp == BranchOp::BNE)
        OS << ", " << regName(T.Rhs);
    }
    OS << " -> " << blockLabel(T.Taken) << " | " << blockLabel(T.Fallthru);
    if (T.PointerCompare)
      OS << " !ptr";
    OS << '\n';
    break;
  case TermKind::Return:
    OS << "  ret";
    if (T.HasRetValue)
      OS << ' ' << regName(T.RetValue);
    OS << '\n';
    break;
  }
  return OS.str();
}

std::string ir::printFunction(const Function &F) {
  std::ostringstream OS;
  OS << "func " << F.getName() << '(' << F.getNumParams() << " params)"
     << " frame=" << F.getFrameSize() << " regs=" << F.getNumRegs()
     << ":\n";
  for (const auto &BB : F)
    OS << printBlock(*BB, F.getParent());
  return OS.str();
}

std::string ir::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "module: " << M.numFunctions() << " functions, "
     << M.getGlobalSize() << " global bytes\n";
  // Data segment as hex, 32 bytes per line; parseModuleText reads it
  // back, making print/parse a faithful round trip.
  const std::vector<uint8_t> &Image = M.getGlobalImage();
  if (!Image.empty()) {
    OS << "data " << Image.size() << ":\n";
    static const char Hex[] = "0123456789abcdef";
    for (size_t I = 0; I < Image.size(); ++I) {
      if (I % 32 == 0)
        OS << "  ";
      OS << Hex[Image[I] >> 4] << Hex[Image[I] & 0xF];
      if (I % 32 == 31 || I + 1 == Image.size())
        OS << '\n';
    }
  }
  for (const auto &F : M)
    OS << printFunction(*F) << '\n';
  return OS.str();
}
