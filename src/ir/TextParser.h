//===- ir/TextParser.h - Parse printed IR back into modules ----*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by ir::printModule back into a
/// Module, making the printer a faithful serialization: for any module
/// M, parseModuleText(printModule(M)) verifies, prints identically,
/// and behaves identically under the interpreter. Useful for storing
/// IR test cases as text and for debugging pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_TEXTPARSER_H
#define BPFREE_IR_TEXTPARSER_H

#include "ir/Module.h"
#include "support/Error.h"

#include <memory>
#include <string>

namespace bpfree {
namespace ir {

/// Parses \p Text (the printModule format). Returns the module or a
/// diagnostic with the offending line number.
Expected<std::unique_ptr<Module>> parseModuleText(const std::string &Text);

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_TEXTPARSER_H
