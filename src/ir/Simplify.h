//===- ir/Simplify.h - CFG cleanup (block merging) --------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Straight-line block merging: when a block B ends in an unconditional
/// jump to a block C whose only predecessor is B, C's contents are
/// folded into B. Any real compiler performs this cleanup, and the
/// Ball-Larus heuristics assume its effect — e.g. a rotated loop's
/// bottom test sits in the same basic block as the body's trailing
/// loads, which is what lets the Pointer heuristic see the
/// "load rM ... beq rM, ..." pattern.
///
/// Merged-away blocks become unreachable but remain structurally valid
/// members of the function (block ids are stable by design).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_SIMPLIFY_H
#define BPFREE_IR_SIMPLIFY_H

#include <cstddef>

namespace bpfree {
namespace ir {

class Function;
class Module;

/// Merges single-predecessor jump targets into their predecessor until
/// a fixpoint. \returns the number of blocks merged away.
size_t simplifyCfg(Function &F);

/// Runs simplifyCfg on every function. \returns total merges.
size_t simplifyCfg(Module &M);

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_SIMPLIFY_H
