//===- ir/Instruction.h - Registers, instructions, terminators -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core IR data types: registers, straight-line instructions, and block
/// terminators. Instructions use a flat fixed-field encoding (a dst, two
/// source registers, one immediate) plus an argument vector for calls;
/// this keeps use/def queries — which the Guard heuristic depends on —
/// trivial and allocation-free.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_INSTRUCTION_H
#define BPFREE_IR_INSTRUCTION_H

#include "ir/Opcodes.h"

#include <cstdint>
#include <vector>

namespace bpfree {
namespace ir {

class BasicBlock;

/// A register id. The machine has an infinite virtual register file plus
/// a handful of dedicated registers with MIPS-like roles; the Pointer
/// heuristic's "addressed off SP / off GP" distinction needs SP and GP to
/// be identifiable.
struct Reg {
  static constexpr uint32_t InvalidId = ~0u;

  uint32_t Id = InvalidId;

  Reg() = default;
  explicit constexpr Reg(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != InvalidId; }
  bool operator==(const Reg &RHS) const { return Id == RHS.Id; }
  bool operator!=(const Reg &RHS) const { return Id != RHS.Id; }
  bool operator<(const Reg &RHS) const { return Id < RHS.Id; }
};

/// Dedicated registers. Virtual registers start at FirstVirtualReg.
constexpr Reg ZeroReg{0}; ///< always reads 0, writes ignored (MIPS $zero)
constexpr Reg SpReg{1};   ///< stack pointer (locals addressed off it)
constexpr Reg GpReg{2};   ///< global pointer (globals addressed off it)
constexpr uint32_t FirstVirtualReg = 8;

/// \returns true if \p R is one of the dedicated registers above.
inline bool isDedicatedReg(Reg R) { return R.Id < FirstVirtualReg; }

/// One straight-line (non-terminator) instruction.
///
/// Field usage by opcode:
///  - LoadImm:           Dst, Imm (integer or bit-cast double)
///  - Move/FNeg/Cvt*:    Dst, SrcA
///  - ALU / FP binary:   Dst, SrcA, SrcB-or-Imm (BIsImm selects)
///  - FCmp*:             SrcA, SrcB (sets the implicit FP flag)
///  - Load:              Dst, SrcA (base), Imm (offset), Width
///  - Store:             SrcB (value), SrcA (base), Imm (offset), Width
///  - Call:              Dst (optional), CalleeIndex, Args
///  - CallIntrinsic:     Dst (optional), Intr, Args
struct Instruction {
  Opcode Op = Opcode::Move;
  Reg Dst;
  Reg SrcA;
  Reg SrcB;
  int64_t Imm = 0;
  bool BIsImm = false;
  MemWidth Width = MemWidth::I64;
  uint32_t CalleeIndex = 0;
  Intrinsic Intr = Intrinsic::PrintInt;
  std::vector<Reg> Args;

  bool isCall() const {
    return Op == Opcode::Call || Op == Opcode::CallIntrinsic;
  }

  /// True for calls into another IR function; intrinsic calls never
  /// transfer control into analyzed code, so the Call heuristic — which
  /// models "this block does real work elsewhere" — only counts these.
  bool isFunctionCall() const { return Op == Opcode::Call; }

  bool isStore() const { return Op == Opcode::Store; }
  bool isLoad() const { return Op == Opcode::Load; }

  /// Appends the registers this instruction reads to \p Uses.
  void appendUses(std::vector<Reg> &Uses) const;

  /// \returns the register defined, or an invalid Reg if none.
  Reg def() const;
};

/// Kinds of block terminators.
enum class TermKind {
  Jump,       ///< unconditional transfer to Taken
  CondBranch, ///< two-way branch: Taken on true, Fallthru on false
  Return      ///< procedure exit; RetValue if HasRetValue
};

/// A block terminator. Conditional branches are the paper's unit of
/// prediction: choosing a direction = choosing Taken or Fallthru.
struct Terminator {
  TermKind Kind = TermKind::Return;
  BranchOp BOp = BranchOp::BEQ;
  Reg Lhs; ///< first compared register (unused by BC1T/BC1F)
  Reg Rhs; ///< second compared register (BEQ/BNE only)
  BasicBlock *Taken = nullptr;
  BasicBlock *Fallthru = nullptr;
  Reg RetValue;
  bool HasRetValue = false;
  /// Frontend annotation: this branch compares pointer-typed values.
  /// The paper notes its opcode-pattern pointer heuristic "could easily
  /// be improved by incorporating type information" available to a
  /// compiler; the type-aware Pointer heuristic variant consumes this.
  bool PointerCompare = false;
  /// 1-based source line of the condition expression this branch was
  /// compiled from, 0 for hand-built IR. Debug metadata only: never
  /// printed, parsed, or consulted by any analysis — it exists so the
  /// explain layer (predict/Provenance) can report hotspot branches by
  /// source location instead of flat block index.
  int SrcLine = 0;

  bool isCondBranch() const { return Kind == TermKind::CondBranch; }

  /// Appends the registers the terminator itself reads.
  void appendUses(std::vector<Reg> &Uses) const;
};

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_INSTRUCTION_H
