//===- ir/Opcodes.h - Instruction and branch opcode enums -------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcode vocabulary for the bpfree IR. The IR is a MIPS-flavoured
/// register machine: it keeps exactly the features the Ball-Larus
/// heuristics inspect on real MIPS executables — compare-against-zero
/// branch opcodes (blez/bgtz/bltz/bgez), two-register equality branches
/// (beq/bne), a floating-point compare flag consumed by bc1t/bc1f,
/// explicit loads/stores with base+offset addressing, and calls/returns
/// as ordinary block contents.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_OPCODES_H
#define BPFREE_IR_OPCODES_H

namespace bpfree {
namespace ir {

/// Non-terminator instruction opcodes.
enum class Opcode {
  // Immediates and moves.
  LoadImm, ///< Dst = Imm (64-bit integer, also used for addresses)
  Move,    ///< Dst = SrcA

  // Integer ALU. SrcB may be a register or an immediate (BIsImm).
  Add,
  Sub,
  Mul,
  Div, ///< Signed division; divide-by-zero traps at run time.
  Rem, ///< Signed remainder; divide-by-zero traps at run time.
  And,
  Or,
  Xor,
  Shl,
  Shr, ///< Arithmetic (sign-propagating) right shift.
  Slt, ///< Dst = (SrcA < SrcB) signed, 0 or 1.
  Seq, ///< Dst = (SrcA == SrcB), 0 or 1.
  Sne, ///< Dst = (SrcA != SrcB), 0 or 1.

  // Floating point (double precision, stored bit-cast in the register
  // file; the opcode decides interpretation, as heuristics never read
  // values).
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  CvtIF, ///< Dst = (double)(int64)SrcA
  CvtFI, ///< Dst = (int64)(double)SrcA, truncating

  // Floating-point compares set the FP condition flag read by BC1T/BC1F
  // terminators, exactly like the MIPS c.cond.d / bc1x pair the paper's
  // opcode heuristic pattern-matches.
  FCmpEq,
  FCmpLt,
  FCmpLe,

  // Memory. Address = SrcA + Imm. Width selects 1 or 8 bytes.
  Load,  ///< Dst = Mem[SrcA + Imm]
  Store, ///< Mem[SrcA + Imm] = SrcB

  // Calls are ordinary instructions (not terminators): the call/return
  // heuristics ask whether a *successor block contains* a call or return.
  Call,          ///< Dst(optional) = Functions[CalleeIndex](Args...)
  CallIntrinsic, ///< Dst(optional) = Intr(Args...)
};

/// Conditional branch opcodes; the Opcode heuristic keys off these.
enum class BranchOp {
  BEQ,  ///< taken iff Lhs == Rhs
  BNE,  ///< taken iff Lhs != Rhs
  BLEZ, ///< taken iff Lhs <= 0   (opcode heuristic: predict not taken)
  BGTZ, ///< taken iff Lhs >  0   (opcode heuristic: predict taken)
  BLTZ, ///< taken iff Lhs <  0   (opcode heuristic: predict not taken)
  BGEZ, ///< taken iff Lhs >= 0   (opcode heuristic: predict taken)
  BC1T, ///< taken iff FP condition flag is true
  BC1F, ///< taken iff FP condition flag is false
};

/// Memory access widths.
enum class MemWidth {
  I8, ///< one byte, sign-extended on load (C char semantics)
  I64 ///< eight bytes (integers, pointers, and raw doubles)
};

/// VM intrinsics reachable from MiniC. These stand in for the Ultrix libc
/// routines the paper's tool also instrumented; the MiniC runtime layers
/// richer routines (formatting, string ops) on top of them in MiniC itself.
enum class Intrinsic {
  PrintInt,    ///< print integer (arg0) to the VM output buffer
  PrintChar,   ///< print one character (arg0)
  PrintDouble, ///< print double (arg0) with fixed formatting
  PrintStr,    ///< print NUL-terminated string at address arg0
  Malloc,      ///< bump-allocate arg0 bytes from the VM heap, returns addr
  Arg,         ///< read integer parameter arg0 of the active dataset
  InputLen,    ///< length of the active dataset's byte buffer
  InputByte,   ///< byte arg0 of the dataset buffer (0 past the end)
  Trap,        ///< abort execution with a runtime trap (MiniC `trap()`)
};

/// \returns a stable mnemonic for \p Op (used by the printer and tests).
const char *opcodeName(Opcode Op);

/// \returns a stable mnemonic for \p Op.
const char *branchOpName(BranchOp Op);

/// \returns a stable name for \p Intr.
const char *intrinsicName(Intrinsic Intr);

/// \returns true if \p Op is one of the FP-compare opcodes that set the
/// condition flag.
inline bool isFCmp(Opcode Op) {
  return Op == Opcode::FCmpEq || Op == Opcode::FCmpLt || Op == Opcode::FCmpLe;
}

/// \returns true if \p Op reads the FP condition flag.
inline bool isFlagBranch(BranchOp Op) {
  return Op == BranchOp::BC1T || Op == BranchOp::BC1F;
}

/// \returns true if \p Op compares a single register against zero (the
/// MIPS blez/bgtz/bltz/bgez family the opcode heuristic predicts).
inline bool isZeroCompareBranch(BranchOp Op) {
  return Op == BranchOp::BLEZ || Op == BranchOp::BGTZ ||
         Op == BranchOp::BLTZ || Op == BranchOp::BGEZ;
}

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_OPCODES_H
