//===- ir/Module.h - Whole-program container --------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module is the analyzed unit: all functions of a program plus the
/// initial image of the global data segment. It plays the role of the
/// "executable file" QPT analyzed — every procedure in it, runtime
/// routines included, is visible to the predictor.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_MODULE_H
#define BPFREE_IR_MODULE_H

#include "ir/Function.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace bpfree {
namespace ir {

/// Owns functions and the global data image.
class Module {
public:
  /// Creates a new function with \p NumParams parameters. Function names
  /// must be unique within the module.
  Function *createFunction(const std::string &Name, unsigned NumParams);

  Function *getFunction(uint32_t Index) const {
    assert(Index < Functions.size() && "function index out of range");
    return Functions[Index].get();
  }

  /// \returns the function named \p Name, or nullptr.
  Function *findFunction(const std::string &Name) const;

  size_t numFunctions() const { return Functions.size(); }

  auto begin() const { return Functions.begin(); }
  auto end() const { return Functions.end(); }

  /// Reserves \p Bytes of zero-initialized global storage, 8-byte aligned,
  /// and returns its GP-relative offset.
  uint32_t allocateGlobal(uint32_t Bytes);

  /// Reserves global storage initialized with \p Data (used for string
  /// literals and initialized arrays); returns the GP-relative offset.
  uint32_t allocateGlobalData(const std::vector<uint8_t> &Data);

  /// Total size of the global segment.
  uint32_t getGlobalSize() const {
    return static_cast<uint32_t>(GlobalImage.size());
  }

  /// Initial byte image of the global segment.
  const std::vector<uint8_t> &getGlobalImage() const { return GlobalImage; }

  /// Overwrites \p Data.size() bytes of the global image at \p Offset
  /// (for scalar global initializers).
  void patchGlobalImage(uint32_t Offset, const void *Data, size_t Size);

  /// Counts conditional branches across all functions (static count).
  size_t countCondBranches() const;

  /// Counts instructions across all functions.
  size_t countInstructions() const;

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::unordered_map<std::string, uint32_t> FunctionsByName;
  std::vector<uint8_t> GlobalImage;
};

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_MODULE_H
