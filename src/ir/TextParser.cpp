//===- ir/TextParser.cpp - Parse printed IR back into modules -------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/TextParser.h"

#include "ir/IRBuilder.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// A tiny cursor over one line of text.
class LineCursor {
public:
  explicit LineCursor(const std::string &Line) : Line(Line) {}

  void skipSpace() {
    while (Pos < Line.size() && Line[Pos] == ' ')
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Line.size();
  }

  /// Consumes \p Literal if it is next (after spaces).
  bool consume(const std::string &Literal) {
    skipSpace();
    if (Line.compare(Pos, Literal.size(), Literal) != 0)
      return false;
    Pos += Literal.size();
    return true;
  }

  /// Reads an identifier-like word [A-Za-z0-9_.$@-]+.
  bool word(std::string &Out) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '_' || Line[Pos] == '.' || Line[Pos] == '$'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = Line.substr(Start, Pos - Start);
    return true;
  }

  bool integer(int64_t &Out) {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Line.size() && (Line[Pos] == '-' || Line[Pos] == '+'))
      ++Pos;
    size_t DigitsFrom = Pos;
    while (Pos < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    if (Pos == DigitsFrom) {
      Pos = Start;
      return false;
    }
    Out = std::strtoll(Line.c_str() + Start, nullptr, 10);
    return true;
  }

  /// True if the next token (after spaces) starts an integer.
  bool nextIsInteger() {
    skipSpace();
    if (Pos >= Line.size())
      return false;
    char C = Line[Pos];
    if (std::isdigit(static_cast<unsigned char>(C)))
      return true;
    return (C == '-' || C == '+') && Pos + 1 < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[Pos + 1]));
  }

private:
  const std::string &Line;
  size_t Pos = 0;
};

struct PendingBranch {
  BasicBlock *Block;
  unsigned TakenId;
  unsigned FallthruId; ///< == TakenId for jumps
  bool IsJump;
};

class TextParserImpl {
public:
  explicit TextParserImpl(const std::string &Text) {
    size_t Start = 0;
    while (Start <= Text.size()) {
      size_t End = Text.find('\n', Start);
      if (End == std::string::npos) {
        if (Start < Text.size())
          Lines.push_back(Text.substr(Start));
        break;
      }
      Lines.push_back(Text.substr(Start, End - Start));
      Start = End + 1;
    }
  }

  Expected<std::unique_ptr<Module>> run() {
    M = std::make_unique<Module>();
    if (!predeclareFunctions())
      return Err;
    Cur = 0;
    if (!parseHeader() || !parseData())
      return Err;
    while (Cur < Lines.size()) {
      if (blank(Lines[Cur])) {
        ++Cur;
        continue;
      }
      if (!parseFunction())
        return Err;
    }
    return std::move(M);
  }

private:
  static bool blank(const std::string &Line) {
    for (char C : Line)
      if (C != ' ' && C != '\t' && C != '\r')
        return false;
    return true;
  }

  bool fail(const std::string &Message) {
    Err = Diag(Message, static_cast<int>(Cur + 1), 0);
    return false;
  }

  /// Pass 1: create every function so calls can resolve forward.
  bool predeclareFunctions() {
    for (Cur = 0; Cur < Lines.size(); ++Cur) {
      LineCursor C(Lines[Cur]);
      if (!C.consume("func "))
        continue;
      std::string Name;
      int64_t Params;
      if (!C.word(Name) || !C.consume("(") || !C.integer(Params) ||
          !C.consume("params)"))
        return fail("malformed function header");
      if (M->findFunction(Name))
        return fail("duplicate function '" + Name + "'");
      M->createFunction(Name, static_cast<unsigned>(Params));
    }
    return true;
  }

  bool parseHeader() {
    if (Cur >= Lines.size())
      return fail("empty module text");
    LineCursor C(Lines[Cur]);
    if (!C.consume("module:"))
      return fail("expected 'module:' header");
    ++Cur;
    return true;
  }

  bool parseData() {
    if (Cur >= Lines.size())
      return true;
    LineCursor C(Lines[Cur]);
    if (!C.consume("data "))
      return true; // no data section
    int64_t Size;
    if (!C.integer(Size) || !C.consume(":"))
      return fail("malformed data header");
    ++Cur;
    std::vector<uint8_t> Image;
    Image.reserve(static_cast<size_t>(Size));
    while (static_cast<int64_t>(Image.size()) < Size) {
      if (Cur >= Lines.size())
        return fail("data section truncated");
      const std::string &Line = Lines[Cur];
      for (size_t I = 0; I < Line.size(); ++I) {
        char A = Line[I];
        if (A == ' ' || A == '\t')
          continue;
        if (I + 1 >= Line.size())
          return fail("odd hex digit count in data");
        int Hi = hexVal(A), Lo = hexVal(Line[I + 1]);
        if (Hi < 0 || Lo < 0)
          return fail("bad hex byte in data");
        Image.push_back(static_cast<uint8_t>((Hi << 4) | Lo));
        ++I;
      }
      ++Cur;
    }
    if (static_cast<int64_t>(Image.size()) != Size)
      return fail("data size mismatch");
    M->allocateGlobalData(Image);
    return true;
  }

  static int hexVal(char C) {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  }

  bool parseReg(LineCursor &C, Reg &Out) {
    std::string W;
    if (!C.word(W))
      return fail("expected a register");
    if (W == "zero") {
      Out = ZeroReg;
      return true;
    }
    if (W == "sp") {
      Out = SpReg;
      return true;
    }
    if (W == "gp") {
      Out = GpReg;
      return true;
    }
    if (W.size() > 1 && W[0] == 'r') {
      Out = Reg(static_cast<uint32_t>(
          std::strtoul(W.c_str() + 1, nullptr, 10)));
      return true;
    }
    return fail("bad register '" + W + "'");
  }

  /// "name.id" -> id, validated against the current function.
  bool parseBlockRef(LineCursor &C, unsigned &Out) {
    std::string W;
    if (!C.word(W))
      return fail("expected a block label");
    size_t Dot = W.rfind('.');
    if (Dot == std::string::npos)
      return fail("block label missing .id suffix: '" + W + "'");
    Out = static_cast<unsigned>(
        std::strtoul(W.c_str() + Dot + 1, nullptr, 10));
    if (Out >= F->numBlocks())
      return fail("block id out of range in '" + W + "'");
    return true;
  }

  bool parseFunction() {
    LineCursor C(Lines[Cur]);
    if (!C.consume("func "))
      return fail("expected a function header");
    std::string Name;
    int64_t Params, Frame, Regs;
    if (!C.word(Name) || !C.consume("(") || !C.integer(Params) ||
        !C.consume("params)") || !C.consume("frame=") ||
        !C.integer(Frame) || !C.consume("regs=") || !C.integer(Regs) ||
        !C.consume(":"))
      return fail("malformed function header");
    F = M->findFunction(Name);
    if (!F)
      return fail("function vanished between passes");
    F->setFrameSize(static_cast<uint32_t>(Frame));
    F->reserveRegs(static_cast<uint32_t>(Regs));
    size_t HeaderLine = Cur;
    ++Cur;

    // Pre-scan this function's block labels to create all blocks.
    size_t Scan = Cur;
    while (Scan < Lines.size()) {
      const std::string &Line = Lines[Scan];
      if (blank(Line) || Line.rfind("func ", 0) == 0)
        break;
      if (Line[0] != ' ' && Line.back() == ':') {
        size_t Dot = Line.rfind('.');
        if (Dot == std::string::npos)
          return fail("block label missing .id");
        F->createBlock(Line.substr(0, Dot));
      }
      ++Scan;
    }
    if (F->numBlocks() == 0) {
      Cur = HeaderLine;
      return fail("function '" + Name + "' has no blocks");
    }

    // Parse block bodies.
    BasicBlock *BB = nullptr;
    unsigned NextBlock = 0;
    std::vector<PendingBranch> Pending;
    while (Cur < Lines.size()) {
      const std::string &Line = Lines[Cur];
      if (blank(Line) || Line.rfind("func ", 0) == 0)
        break;
      if (Line[0] != ' ') {
        BB = F->getBlock(NextBlock++);
        ++Cur;
        continue;
      }
      if (!BB)
        return fail("instruction before any block label");
      if (!parseLine(*BB, Pending))
        return false;
      ++Cur;
    }

    // Resolve branch targets now that all blocks exist.
    for (const PendingBranch &P : Pending) {
      Terminator &T = P.Block->terminator();
      T.Taken = F->getBlock(P.TakenId);
      if (!P.IsJump)
        T.Fallthru = F->getBlock(P.FallthruId);
    }
    for (const auto &Block : *F)
      if (!Block->hasTerminator())
        return fail("block '" + Block->getName() + "' lacks a terminator");
    return true;
  }

  /// One "  ..." body line: instruction or terminator.
  bool parseLine(BasicBlock &BB, std::vector<PendingBranch> &Pending) {
    LineCursor C(Lines[Cur]);
    std::string Op;
    if (!C.word(Op))
      return fail("empty body line");

    // Terminators -------------------------------------------------------
    if (Op == "j") {
      unsigned Target;
      if (!parseBlockRef(C, Target))
        return false;
      BB.terminator().Kind = TermKind::Jump;
      BB.markTerminatorSet();
      Pending.push_back({&BB, Target, Target, true});
      return true;
    }
    if (Op == "ret") {
      Terminator &T = BB.terminator();
      T.Kind = TermKind::Return;
      if (!C.atEnd()) {
        if (!parseReg(C, T.RetValue))
          return false;
        T.HasRetValue = true;
      }
      BB.markTerminatorSet();
      return true;
    }
    for (BranchOp BOp : {BranchOp::BEQ, BranchOp::BNE, BranchOp::BLEZ,
                         BranchOp::BGTZ, BranchOp::BLTZ, BranchOp::BGEZ,
                         BranchOp::BC1T, BranchOp::BC1F}) {
      if (Op != branchOpName(BOp))
        continue;
      Terminator &T = BB.terminator();
      T.Kind = TermKind::CondBranch;
      T.BOp = BOp;
      if (!isFlagBranch(BOp)) {
        if (!parseReg(C, T.Lhs))
          return false;
        if (BOp == BranchOp::BEQ || BOp == BranchOp::BNE) {
          if (!C.consume(","))
            return fail("expected ',' in branch");
          if (!parseReg(C, T.Rhs))
            return false;
        }
      }
      if (!C.consume("->"))
        return fail("expected '->' in branch");
      unsigned Taken, Fallthru;
      if (!parseBlockRef(C, Taken))
        return false;
      if (!C.consume("|"))
        return fail("expected '|' in branch");
      if (!parseBlockRef(C, Fallthru))
        return false;
      if (C.consume("!ptr"))
        T.PointerCompare = true;
      BB.markTerminatorSet();
      Pending.push_back({&BB, Taken, Fallthru, false});
      return true;
    }

    // Instructions ------------------------------------------------------
    Instruction I;
    if (Op == "icall") {
      I.Op = Opcode::CallIntrinsic;
      std::string Name;
      if (!C.word(Name))
        return fail("expected intrinsic name");
      bool Known = false;
      for (Intrinsic K :
           {Intrinsic::PrintInt, Intrinsic::PrintChar,
            Intrinsic::PrintDouble, Intrinsic::PrintStr, Intrinsic::Malloc,
            Intrinsic::Arg, Intrinsic::InputLen, Intrinsic::InputByte,
            Intrinsic::Trap}) {
        if (Name == intrinsicName(K)) {
          I.Intr = K;
          Known = true;
        }
      }
      if (!Known)
        return fail("unknown intrinsic '" + Name + "'");
      if (!parseCallArgs(C, I))
        return false;
      BB.instructions().push_back(std::move(I));
      return true;
    }
    if (Op == "call") {
      I.Op = Opcode::Call;
      std::string Callee;
      if (!C.word(Callee))
        return fail("expected callee name");
      Function *Target = M->findFunction(Callee);
      if (!Target)
        return fail("call to unknown function '" + Callee + "'");
      I.CalleeIndex = Target->getIndex();
      if (!parseCallArgs(C, I))
        return false;
      BB.instructions().push_back(std::move(I));
      return true;
    }
    if (Op == "li") {
      I.Op = Opcode::LoadImm;
      if (!parseReg(C, I.Dst) || !C.consume(",") || !C.integer(I.Imm))
        return fail("malformed li");
      BB.instructions().push_back(std::move(I));
      return true;
    }
    if (Op == "load" || Op == "store") {
      I.Op = Op == "load" ? Opcode::Load : Opcode::Store;
      Reg ValueOrDst;
      int64_t Offset;
      Reg Base;
      if (!parseReg(C, ValueOrDst) || !C.consume(",") ||
          !C.integer(Offset) || !C.consume("("))
        return fail("malformed memory operand");
      if (!parseReg(C, Base) || !C.consume(")"))
        return fail("malformed memory base");
      I.Imm = Offset;
      I.SrcA = Base;
      I.Width = C.consume("b") ? MemWidth::I8 : MemWidth::I64;
      if (I.Op == Opcode::Load)
        I.Dst = ValueOrDst;
      else
        I.SrcB = ValueOrDst;
      BB.instructions().push_back(std::move(I));
      return true;
    }

    // Unary (dst, src) forms.
    static const std::pair<const char *, Opcode> Unary[] = {
        {"move", Opcode::Move},
        {"neg.d", Opcode::FNeg},
        {"cvt.d.w", Opcode::CvtIF},
        {"cvt.w.d", Opcode::CvtFI},
    };
    for (auto [Name, Code] : Unary) {
      if (Op != Name)
        continue;
      I.Op = Code;
      if (!parseReg(C, I.Dst) || !C.consume(",") || !parseReg(C, I.SrcA))
        return fail("malformed unary op");
      BB.instructions().push_back(std::move(I));
      return true;
    }

    // FP compares (two sources, no dst).
    static const std::pair<const char *, Opcode> Compares[] = {
        {"c.eq.d", Opcode::FCmpEq},
        {"c.lt.d", Opcode::FCmpLt},
        {"c.le.d", Opcode::FCmpLe},
    };
    for (auto [Name, Code] : Compares) {
      if (Op != Name)
        continue;
      I.Op = Code;
      if (!parseReg(C, I.SrcA) || !C.consume(",") || !parseReg(C, I.SrcB))
        return fail("malformed FP compare");
      BB.instructions().push_back(std::move(I));
      return true;
    }

    // Binary ALU / FP (dst, srcA, srcB-or-imm).
    static const std::pair<const char *, Opcode> Binary[] = {
        {"add", Opcode::Add},     {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},     {"div", Opcode::Div},
        {"rem", Opcode::Rem},     {"and", Opcode::And},
        {"or", Opcode::Or},       {"xor", Opcode::Xor},
        {"sll", Opcode::Shl},     {"sra", Opcode::Shr},
        {"slt", Opcode::Slt},     {"seq", Opcode::Seq},
        {"sne", Opcode::Sne},     {"add.d", Opcode::FAdd},
        {"sub.d", Opcode::FSub},  {"mul.d", Opcode::FMul},
        {"div.d", Opcode::FDiv},
    };
    for (auto [Name, Code] : Binary) {
      if (Op != Name)
        continue;
      I.Op = Code;
      if (!parseReg(C, I.Dst) || !C.consume(",") || !parseReg(C, I.SrcA) ||
          !C.consume(","))
        return fail("malformed binary op");
      // Second operand: register or immediate.
      if (C.nextIsInteger()) {
        if (!C.integer(I.Imm))
          return fail("malformed immediate operand");
        I.BIsImm = true;
      } else if (!parseReg(C, I.SrcB)) {
        return fail("malformed binary operand");
      }
      BB.instructions().push_back(std::move(I));
      return true;
    }
    return fail("unknown instruction '" + Op + "'");
  }

  /// "(r1, r2, ...)" plus optional " -> rD".
  bool parseCallArgs(LineCursor &C, Instruction &I) {
    if (!C.consume("("))
      return fail("expected '(' in call");
    if (!C.consume(")")) {
      while (true) {
        Reg A;
        if (!parseReg(C, A))
          return false;
        I.Args.push_back(A);
        if (C.consume(")"))
          break;
        if (!C.consume(","))
          return fail("expected ',' in call args");
      }
    }
    if (C.consume("->")) {
      if (!parseReg(C, I.Dst))
        return false;
    }
    return true;
  }

  std::vector<std::string> Lines;
  size_t Cur = 0;
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  Diag Err;
};

} // namespace

Expected<std::unique_ptr<Module>>
ir::parseModuleText(const std::string &Text) {
  return TextParserImpl(Text).run();
}
