//===- ir/Printer.h - Textual IR dumping ------------------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dumps of IR functions and modules, in a MIPS-assembly
/// flavoured syntax. Used by tests and the example tools; the dumps are
/// stable so tests may match substrings, but they are not a serialization
/// format.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_PRINTER_H
#define BPFREE_IR_PRINTER_H

#include <string>

namespace bpfree {
namespace ir {

class BasicBlock;
class Function;
class Module;
struct Instruction;

/// Renders one instruction, e.g. "add r9, r8, 4".
std::string printInstruction(const Instruction &I, const Module *M);

/// Renders a block with its label, instructions, and terminator.
std::string printBlock(const BasicBlock &BB, const Module *M);

/// Renders a whole function.
std::string printFunction(const Function &F);

/// Renders every function in the module.
std::string printModule(const Module &M);

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_PRINTER_H
