//===- ir/Function.h - Functions of the bpfree IR ---------------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functions own their basic blocks and the virtual-register namespace.
/// The entry block is always block 0, matching the paper's "root vertex
/// of the control flow graph is the entry point of the procedure".
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_IR_FUNCTION_H
#define BPFREE_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace bpfree {
namespace ir {

class Module;

/// One procedure: a named CFG plus calling-convention metadata.
class Function {
public:
  Function(Module *Parent, uint32_t Index, std::string Name,
           unsigned NumParams);

  Module *getParent() const { return Parent; }

  /// Index of this function within its module; Call instructions refer to
  /// callees by this index.
  uint32_t getIndex() const { return Index; }

  const std::string &getName() const { return Name; }

  unsigned getNumParams() const { return NumParams; }

  /// Register that receives parameter \p I at a call. Parameters occupy
  /// the first virtual registers, so codegen can rely on this mapping.
  Reg getParamReg(unsigned I) const {
    assert(I < NumParams && "parameter index out of range");
    return Reg(FirstVirtualReg + I);
  }

  /// Allocates a fresh virtual register.
  Reg newReg() { return Reg(NextReg++); }

  uint32_t getNumRegs() const { return NextReg; }

  /// Ensures the register namespace covers ids below \p Count (used by
  /// the textual IR parser to restore a printed function's register
  /// space).
  void reserveRegs(uint32_t Count) {
    if (Count > NextReg)
      NextReg = Count;
  }

  /// Creates and owns a new basic block; the first created block is the
  /// entry block.
  BasicBlock *createBlock(std::string BlockName);

  BasicBlock *getEntry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *getBlock(unsigned Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id].get();
  }

  /// Block iteration in creation (= id) order.
  auto begin() const { return Blocks.begin(); }
  auto end() const { return Blocks.end(); }

  /// Bytes of stack frame this function reserves for locals. The VM
  /// decrements SP by this amount on entry; locals are addressed at
  /// positive offsets from the decremented SP — the addressing shape the
  /// Pointer heuristic's SP test looks at.
  uint32_t getFrameSize() const { return FrameSize; }
  void setFrameSize(uint32_t Bytes) { FrameSize = Bytes; }

  /// Computes predecessor lists indexed by block id. Analyses call this
  /// once and pass the result around; the IR itself does not maintain
  /// predecessor links.
  std::vector<std::vector<BasicBlock *>> computePredecessors() const;

  /// Counts conditional-branch blocks.
  size_t countCondBranches() const;

  /// Counts instructions across all blocks, terminators excluded.
  size_t countInstructions() const;

private:
  Module *Parent;
  uint32_t Index;
  std::string Name;
  unsigned NumParams;
  uint32_t NextReg;
  uint32_t FrameSize = 0;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace ir
} // namespace bpfree

#endif // BPFREE_IR_FUNCTION_H
