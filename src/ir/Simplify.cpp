//===- ir/Simplify.cpp - CFG cleanup (block merging) ----------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Simplify.h"

#include "ir/Function.h"
#include "ir/Module.h"

#include <vector>

using namespace bpfree;
using namespace bpfree::ir;

namespace {

/// Reachable-from-entry bitmap; merging must ignore predecessor edges
/// from dead blocks left behind by earlier merges.
std::vector<bool> reachableBlocks(const Function &F) {
  std::vector<bool> Seen(F.numBlocks(), false);
  std::vector<const BasicBlock *> Work;
  Seen[F.getEntry()->getId()] = true;
  Work.push_back(F.getEntry());
  while (!Work.empty()) {
    const BasicBlock *Cur = Work.back();
    Work.pop_back();
    for (unsigned I = 0, E = Cur->numSuccessors(); I != E; ++I) {
      const BasicBlock *S = Cur->getSuccessor(I);
      if (!Seen[S->getId()]) {
        Seen[S->getId()] = true;
        Work.push_back(S);
      }
    }
  }
  return Seen;
}

} // namespace

size_t ir::simplifyCfg(Function &F) {
  size_t Merged = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<bool> Live = reachableBlocks(F);

    // Count predecessors among live blocks only.
    std::vector<unsigned> PredCount(F.numBlocks(), 0);
    for (const auto &BB : F) {
      if (!Live[BB->getId()])
        continue;
      for (unsigned I = 0, E = BB->numSuccessors(); I != E; ++I)
        ++PredCount[BB->getSuccessor(I)->getId()];
    }

    for (const auto &BBPtr : F) {
      BasicBlock *B = BBPtr.get();
      if (!Live[B->getId()] || !B->isUnconditionalJump())
        continue;
      BasicBlock *C = B->getSuccessor(0);
      if (C == B || C == F.getEntry() || PredCount[C->getId()] != 1)
        continue;
      // Fold C into B: move instructions, adopt C's terminator. C stays
      // in the function as an unreachable empty shell; neutralize its
      // terminator to a plain return so the dead block contributes no
      // phantom branches to static counts.
      auto &BInsts = B->instructions();
      auto &CInsts = C->instructions();
      BInsts.insert(BInsts.end(), std::make_move_iterator(CInsts.begin()),
                    std::make_move_iterator(CInsts.end()));
      CInsts.clear();
      B->terminator() = C->terminator();
      C->terminator() = Terminator();
      C->terminator().Kind = TermKind::Return;
      ++Merged;
      Changed = true;
      // Restart the scan: predecessor counts are stale now.
      break;
    }
  }
  return Merged;
}

size_t ir::simplifyCfg(Module &M) {
  size_t Merged = 0;
  for (const auto &F : M)
    Merged += simplifyCfg(*F);
  return Merged;
}
