//===- predict/Ordering.h - Heuristic ordering experiments -----*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5 experiments on prioritizing the heuristics:
///
///  * Graph 1 — the average non-loop miss rate of every one of the
///    7! = 5040 possible heuristic orders, sorted.
///  * Graphs 2-3 / Table 4 — the order-selection experiment: for every
///    half-size subset of the benchmarks, find the order minimizing the
///    subset's average miss rate, then score that order on the full
///    suite; report order frequencies and full-suite miss rates.
///
/// Evaluating 5040 orders per benchmark is made cheap by collapsing the
/// per-branch data into (AppliesMask, DirMask) signature groups: the
/// first-match decision depends only on the masks, so each order costs
/// O(#signatures) rather than O(#branches).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_ORDERING_H
#define BPFREE_PREDICT_ORDERING_H

#include "predict/Evaluation.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpfree {

/// Factorial of NumHeuristics: the number of priority orders.
constexpr size_t NumOrders = 5040;

/// All 5040 orders in lexicographic enumeration sequence. Index into
/// this table is the canonical "order id" used below.
const std::vector<HeuristicOrder> &allOrders();

/// Per-benchmark data reduced for fast order evaluation.
class OrderEvaluator {
public:
  /// Builds signature groups from \p Stats (non-loop, executed branches
  /// only; the default prediction uses the per-branch RandomDir).
  explicit OrderEvaluator(const std::vector<BranchStats> &Stats);

  /// Non-loop miss rate (default included) under \p Order.
  double missRate(const HeuristicOrder &Order) const;

  /// Miss rates for all 5040 orders, indexed by order id.
  std::vector<double> allMissRates() const;

  uint64_t totalExecs() const { return TotalExecs; }

private:
  struct Signature {
    uint8_t AppliesMask = 0;
    uint8_t DirMask = 0;
    /// For each heuristic h (and the random default at index
    /// NumHeuristics): misses if that slot decides this group.
    std::array<uint64_t, NumHeuristics + 1> Misses{};
  };
  std::vector<Signature> Signatures;
  uint64_t TotalExecs = 0;
  uint64_t DefaultOnlyMisses = 0; ///< groups with empty mask
};

/// Result of the subset order-selection experiment.
struct OrderSelectionResult {
  /// How many subsets selected each order (indexed by order id).
  std::vector<uint64_t> Frequency;
  /// Full-suite average miss rate of each order (indexed by order id).
  std::vector<double> FullSuiteMiss;
  uint64_t NumTrials = 0;
  size_t DistinctOrders = 0;

  /// Orders sorted by descending frequency (ties by id).
  std::vector<size_t> byFrequency() const;
};

/// Runs the experiment: for every subset of size \p SubsetSize drawn
/// from \p PerBenchmark (one OrderEvaluator-derived miss vector per
/// benchmark, each of length NumOrders), picks the arg-min order for the
/// subset average and tallies it. \p MaxTrials caps the enumeration
/// (0 = exhaustive).
OrderSelectionResult
runOrderSelection(const std::vector<std::vector<double>> &PerBenchmark,
                  size_t SubsetSize, uint64_t MaxTrials = 0);

} // namespace bpfree

#endif // BPFREE_PREDICT_ORDERING_H
