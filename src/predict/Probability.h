//===- predict/Probability.h - Wu-Larus branch probabilities ---*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequel extension: Wu & Larus, "Static Branch Frequency and
/// Program Profile Analysis" (MICRO-27, 1994), turned this paper's
/// heuristics into branch *probabilities* by treating each applicable
/// heuristic as independent evidence and combining with the
/// Dempster-Shafer rule:
///
///     p (+) q  =  p*q / (p*q + (1-p)*(1-q))
///
/// Each heuristic carries a prior hit rate (how often its prediction
/// is right when it applies). A branch's taken-probability starts at
/// 1/2 and folds in every applicable heuristic's evidence; the
/// first-match priority order disappears entirely.
///
/// This module provides the combination, priors (the paper-derived
/// defaults and a calibrator that measures them on a profile), a
/// probability-based StaticPredictor, and calibration metrics (Brier
/// score, bucketed reliability) to judge probability quality.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_PROBABILITY_H
#define BPFREE_PREDICT_PROBABILITY_H

#include "predict/Evaluation.h"

#include <array>

namespace bpfree {

/// Per-heuristic hit-rate priors, plus the loop predictor's.
struct HeuristicPriors {
  /// P(branch goes where heuristic K predicts | K applies), indexed by
  /// HeuristicKind.
  std::array<double, NumHeuristics> HitRate{};
  /// P(loop branch goes where the loop predictor predicts).
  double LoopHitRate = 0.88;

  /// Priors derived from the paper's Table 3 mean miss rates
  /// (hit = 1 - miss): Opcode 84%, Loop 75%, Call 78%, Return 72%,
  /// Guard 62%, Store 55%, Point 59%; loop predictor 88% (Table 2).
  static HeuristicPriors paperTable3();

  /// Priors measured from \p Stats: for each heuristic, the dynamic
  /// fraction of covered executions it predicted correctly (falling
  /// back to the paper's value when a heuristic never applies).
  static HeuristicPriors measured(const std::vector<BranchStats> &Stats);
};

/// Dempster-Shafer combination of two probabilities-of-the-same-event.
double dsCombine(double P, double Q);

/// Taken-probability of a non-loop branch from its heuristic masks.
/// Starts at 0.5; each applicable heuristic contributes HitRate toward
/// its predicted direction. No applicable heuristic -> 0.5.
double takenProbability(uint8_t AppliesMask, uint8_t DirMask,
                        const HeuristicPriors &Priors);

/// Taken-probability for any branch record (loop branches use the
/// loop predictor's prior toward its direction).
double takenProbability(const BranchStats &S, const HeuristicPriors &Priors);

/// Wu-Larus-style predictor: predict taken iff the combined
/// taken-probability is at least 1/2 (exact ties resolved by the
/// per-branch deterministic coin, mirroring the Ball-Larus default).
class WuLarusPredictor : public StaticPredictor {
public:
  WuLarusPredictor(const PredictionContext &Ctx,
                   HeuristicPriors Priors = HeuristicPriors::paperTable3(),
                   HeuristicConfig Config = {}, uint64_t DefaultSeed = 0)
      : Ctx(Ctx), Priors(Priors), Config(Config), DefaultSeed(DefaultSeed) {}

  Direction predict(const ir::BasicBlock &BB) const override;
  std::string name() const override { return "WuLarus"; }

  /// The probability itself (for layout, calibration, ...).
  double probability(const ir::BasicBlock &BB) const;

private:
  const PredictionContext &Ctx;
  HeuristicPriors Priors;
  HeuristicConfig Config;
  uint64_t DefaultSeed;
};

/// Probability-quality metrics against an edge profile.
struct CalibrationReport {
  /// Execution-weighted Brier score: mean over executed branch
  /// instances of (p_taken - went_taken)^2. 0 = oracle, 0.25 = coin.
  double Brier = 0.0;
  /// Reliability buckets over predicted taken-probability deciles:
  /// for each bucket, total executions, mean predicted p, and the
  /// empirical taken fraction. Perfect calibration: predicted ==
  /// empirical.
  struct Bucket {
    uint64_t Execs = 0;
    double MeanPredicted = 0.0;
    double EmpiricalTaken = 0.0;
  };
  std::array<Bucket, 10> Buckets{};
};

/// Scores \p Probability (a per-branch taken-probability oracle)
/// against the dynamic counts in \p Stats.
template <typename ProbabilityFn>
CalibrationReport calibrate(const std::vector<BranchStats> &Stats,
                            ProbabilityFn &&Probability) {
  CalibrationReport R;
  long double BrierSum = 0.0;
  uint64_t Total = 0;
  std::array<long double, 10> PredSum{};
  std::array<uint64_t, 10> TakenSum{};
  for (const BranchStats &S : Stats) {
    uint64_t T = S.total();
    if (T == 0)
      continue;
    double P = Probability(S);
    // Brier over individual executions decomposes into counts.
    BrierSum += static_cast<long double>(S.Taken) * (1.0 - P) * (1.0 - P) +
                static_cast<long double>(S.Fallthru) * P * P;
    Total += T;
    size_t B = P >= 1.0 ? 9 : static_cast<size_t>(P * 10.0);
    R.Buckets[B].Execs += T;
    PredSum[B] += static_cast<long double>(P) * T;
    TakenSum[B] += S.Taken;
  }
  if (Total > 0)
    R.Brier = static_cast<double>(BrierSum / Total);
  for (size_t B = 0; B < 10; ++B) {
    if (R.Buckets[B].Execs == 0)
      continue;
    R.Buckets[B].MeanPredicted = static_cast<double>(
        PredSum[B] / static_cast<long double>(R.Buckets[B].Execs));
    R.Buckets[B].EmpiricalTaken =
        static_cast<double>(TakenSum[B]) /
        static_cast<double>(R.Buckets[B].Execs);
  }
  return R;
}

} // namespace bpfree

#endif // BPFREE_PREDICT_PROBABILITY_H
