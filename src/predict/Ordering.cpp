//===- predict/Ordering.cpp - Heuristic ordering experiments --------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Ordering.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

using namespace bpfree;

const std::vector<HeuristicOrder> &bpfree::allOrders() {
  static const std::vector<HeuristicOrder> Orders = [] {
    std::vector<HeuristicOrder> Result;
    Result.reserve(NumOrders);
    std::array<unsigned, NumHeuristics> Perm;
    std::iota(Perm.begin(), Perm.end(), 0u);
    do {
      HeuristicOrder O;
      for (size_t I = 0; I < NumHeuristics; ++I)
        O[I] = static_cast<HeuristicKind>(Perm[I]);
      Result.push_back(O);
    } while (std::next_permutation(Perm.begin(), Perm.end()));
    assert(Result.size() == NumOrders && "expected 7! orders");
    return Result;
  }();
  return Orders;
}

OrderEvaluator::OrderEvaluator(const std::vector<BranchStats> &Stats) {
  // Group by (AppliesMask, DirMask); the random default's misses differ
  // per branch, so they are pre-summed into slot NumHeuristics.
  std::map<std::pair<uint8_t, uint8_t>, Signature> Groups;
  for (const BranchStats &S : Stats) {
    if (S.IsLoopBranch || S.total() == 0)
      continue;
    TotalExecs += S.total();
    Signature &Sig = Groups[{S.AppliesMask, S.DirMask}];
    Sig.AppliesMask = S.AppliesMask;
    Sig.DirMask = S.DirMask;
    for (unsigned H = 0; H < NumHeuristics; ++H)
      if (S.AppliesMask & (1u << H))
        Sig.Misses[H] +=
            S.missesFor(S.heuristicDir(static_cast<HeuristicKind>(H)));
    Sig.Misses[NumHeuristics] += S.missesFor(S.RandomDir);
  }
  for (auto &[Key, Sig] : Groups) {
    if (Sig.AppliesMask == 0)
      DefaultOnlyMisses += Sig.Misses[NumHeuristics];
    else
      Signatures.push_back(Sig);
  }
}

double OrderEvaluator::missRate(const HeuristicOrder &Order) const {
  if (TotalExecs == 0)
    return 0.0;
  uint64_t Misses = DefaultOnlyMisses;
  for (const Signature &Sig : Signatures) {
    size_t Slot = NumHeuristics;
    for (size_t I = 0; I < Order.size(); ++I) {
      if (Sig.AppliesMask & (1u << static_cast<unsigned>(Order[I]))) {
        Slot = static_cast<size_t>(Order[I]);
        break;
      }
    }
    Misses += Sig.Misses[Slot];
  }
  return static_cast<double>(Misses) / static_cast<double>(TotalExecs);
}

std::vector<double> OrderEvaluator::allMissRates() const {
  const auto &Orders = allOrders();
  std::vector<double> Rates(Orders.size());
  for (size_t I = 0; I < Orders.size(); ++I)
    Rates[I] = missRate(Orders[I]);
  return Rates;
}

std::vector<size_t> OrderSelectionResult::byFrequency() const {
  std::vector<size_t> Ids;
  for (size_t I = 0; I < Frequency.size(); ++I)
    if (Frequency[I] > 0)
      Ids.push_back(I);
  std::stable_sort(Ids.begin(), Ids.end(), [&](size_t A, size_t B) {
    return Frequency[A] > Frequency[B];
  });
  return Ids;
}

OrderSelectionResult
bpfree::runOrderSelection(const std::vector<std::vector<double>> &PerBenchmark,
                          size_t SubsetSize, uint64_t MaxTrials) {
  size_t N = PerBenchmark.size();
  assert(SubsetSize > 0 && SubsetSize <= N && "bad subset size");
  for (const auto &V : PerBenchmark) {
    assert(V.size() == NumOrders && "per-benchmark vector size mismatch");
    (void)V;
  }

  OrderSelectionResult R;
  R.Frequency.assign(NumOrders, 0);
  R.FullSuiteMiss.assign(NumOrders, 0.0);
  for (size_t O = 0; O < NumOrders; ++O) {
    double Sum = 0;
    for (const auto &V : PerBenchmark)
      Sum += V[O];
    R.FullSuiteMiss[O] = Sum / static_cast<double>(N);
  }

  // Enumerate subsets via the canonical combination walk.
  std::vector<size_t> Pick(SubsetSize);
  std::iota(Pick.begin(), Pick.end(), 0);
  std::vector<double> Acc(NumOrders);

  while (true) {
    // Arg-min order of the subset average (sum suffices).
    std::fill(Acc.begin(), Acc.end(), 0.0);
    for (size_t B : Pick) {
      const double *V = PerBenchmark[B].data();
      for (size_t O = 0; O < NumOrders; ++O)
        Acc[O] += V[O];
    }
    size_t Best = static_cast<size_t>(
        std::min_element(Acc.begin(), Acc.end()) - Acc.begin());
    ++R.Frequency[Best];
    ++R.NumTrials;
    if (MaxTrials && R.NumTrials >= MaxTrials)
      break;

    // Next combination.
    size_t I = SubsetSize;
    while (I > 0 && Pick[I - 1] == N - SubsetSize + (I - 1))
      --I;
    if (I == 0)
      break;
    ++Pick[I - 1];
    for (size_t J = I; J < SubsetSize; ++J)
      Pick[J] = Pick[J - 1] + 1;
  }

  for (uint64_t F : R.Frequency)
    if (F > 0)
      ++R.DistinctOrders;
  return R;
}
