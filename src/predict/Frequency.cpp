//===- predict/Frequency.cpp - Static block-frequency estimation ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Frequency.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace bpfree;
using namespace bpfree::ir;

std::vector<double>
bpfree::estimateBlockFrequencies(const Function &F,
                                 const TakenProbabilityFn &TakenProb,
                                 double MaxFrequency) {
  size_t N = F.numBlocks();
  std::vector<double> Freq(N, 0.0), Next(N, 0.0);
  // Edge probabilities, gathered once.
  struct OutEdge {
    unsigned To;
    double P;
  };
  std::vector<std::vector<OutEdge>> Out(N);
  for (const auto &BB : F) {
    unsigned Id = BB->getId();
    if (BB->isCondBranch()) {
      double P = TakenProb(*BB);
      P = std::clamp(P, 0.0001, 0.9999); // Wu-Larus-style clamp
      Out[Id].push_back({BB->getSuccessor(0)->getId(), P});
      Out[Id].push_back({BB->getSuccessor(1)->getId(), 1.0 - P});
    } else if (BB->isUnconditionalJump()) {
      Out[Id].push_back({BB->getSuccessor(0)->getId(), 1.0});
    }
  }

  // Fixed-point iteration: the flow equations around loops form
  // geometric series that converge because branch probabilities are
  // clamped away from 1.
  unsigned Entry = F.getEntry()->getId();
  for (int Iter = 0; Iter < 500; ++Iter) {
    std::fill(Next.begin(), Next.end(), 0.0);
    Next[Entry] = 1.0;
    for (size_t B = 0; B < N; ++B) {
      if (Freq[B] == 0.0)
        continue;
      for (const OutEdge &E : Out[B])
        Next[E.To] += Freq[B] * E.P;
      if (Next[B] > MaxFrequency)
        Next[B] = MaxFrequency;
    }
    for (double &V : Next)
      V = std::min(V, MaxFrequency);
    double MaxDelta = 0.0;
    for (size_t B = 0; B < N; ++B)
      MaxDelta = std::max(MaxDelta, std::fabs(Next[B] - Freq[B]));
    Freq.swap(Next);
    if (MaxDelta < 1e-9)
      break;
  }
  return Freq;
}

TakenProbabilityFn bpfree::wuLarusOracle(const WuLarusPredictor &WL) {
  return [&WL](const BasicBlock &BB) { return WL.probability(BB); };
}

TakenProbabilityFn bpfree::uniformOracle() {
  return [](const BasicBlock &) { return 0.5; };
}

TakenProbabilityFn bpfree::perfectOracle(const EdgeProfile &Profile) {
  return [&Profile](const BasicBlock &BB) {
    const EdgeProfile::Counts &C = Profile.get(BB);
    if (C.total() == 0)
      return 0.5;
    return static_cast<double>(C.Taken) / static_cast<double>(C.total());
  };
}

namespace {

/// Average-tie ranks of \p Values.
std::vector<double> ranks(const std::vector<double> &Values) {
  size_t N = Values.size();
  std::vector<size_t> Idx(N);
  std::iota(Idx.begin(), Idx.end(), 0);
  std::stable_sort(Idx.begin(), Idx.end(), [&](size_t A, size_t B) {
    return Values[A] < Values[B];
  });
  std::vector<double> R(N, 0.0);
  size_t I = 0;
  while (I < N) {
    size_t J = I;
    while (J + 1 < N && Values[Idx[J + 1]] == Values[Idx[I]])
      ++J;
    double Avg = (static_cast<double>(I) + static_cast<double>(J)) / 2.0 +
                 1.0;
    for (size_t K = I; K <= J; ++K)
      R[Idx[K]] = Avg;
    I = J + 1;
  }
  return R;
}

double pearson(const std::vector<double> &X, const std::vector<double> &Y) {
  size_t N = X.size();
  if (N < 2)
    return 0.0;
  double MX = 0, MY = 0;
  for (size_t I = 0; I < N; ++I) {
    MX += X[I];
    MY += Y[I];
  }
  MX /= static_cast<double>(N);
  MY /= static_cast<double>(N);
  double Num = 0, DX = 0, DY = 0;
  for (size_t I = 0; I < N; ++I) {
    Num += (X[I] - MX) * (Y[I] - MY);
    DX += (X[I] - MX) * (X[I] - MX);
    DY += (Y[I] - MY) * (Y[I] - MY);
  }
  if (DX <= 0 || DY <= 0)
    return 0.0;
  return Num / std::sqrt(DX * DY);
}

} // namespace

FrequencyQuality
bpfree::scoreFrequencies(const Module &M,
                         const TakenProbabilityFn &TakenProb,
                         const EdgeProfile &Profile) {
  std::vector<double> Estimated, Measured;
  for (const auto &F : M) {
    uint64_t EntryCount = Profile.getBlockCount(*F->getEntry());
    if (EntryCount == 0)
      continue; // function never executed: nothing to score
    std::vector<double> Freq = estimateBlockFrequencies(*F, TakenProb);
    for (const auto &BB : *F) {
      Estimated.push_back(Freq[BB->getId()] *
                          static_cast<double>(EntryCount));
      Measured.push_back(
          static_cast<double>(Profile.getBlockCount(*BB)));
    }
  }

  FrequencyQuality Q;
  Q.BlocksScored = Estimated.size();
  if (Estimated.size() < 2)
    return Q;
  Q.SpearmanRho = pearson(ranks(Estimated), ranks(Measured));

  // Hot-block overlap: measured top decile vs estimated top decile.
  size_t K = std::max<size_t>(1, Estimated.size() / 10);
  auto topK = [&](const std::vector<double> &V) {
    std::vector<size_t> Idx(V.size());
    std::iota(Idx.begin(), Idx.end(), 0);
    std::stable_sort(Idx.begin(), Idx.end(), [&](size_t A, size_t B) {
      return V[A] > V[B];
    });
    Idx.resize(K);
    return Idx;
  };
  std::vector<size_t> HotEst = topK(Estimated), HotMeas = topK(Measured);
  std::vector<bool> InEst(Estimated.size(), false);
  for (size_t I : HotEst)
    InEst[I] = true;
  size_t Overlap = 0;
  for (size_t I : HotMeas)
    if (InEst[I])
      ++Overlap;
  Q.HotOverlap = static_cast<double>(Overlap) / static_cast<double>(K);
  return Q;
}
