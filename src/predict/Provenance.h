//===- predict/Provenance.h - Per-branch prediction provenance -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "why" behind every static prediction. The combined predictor
/// answers predict(BB) with a bare Direction; for debugging a heuristic
/// ordering or reading a misprediction report, that is not enough — one
/// needs to know *which* rule decided the branch (loop predictor, which
/// heuristic at which priority, or the default policy), which
/// higher-priority heuristics looked and declined, and where the branch
/// lives in the source program.
///
/// A BranchProvenance records exactly that, captured at prediction time
/// through an opt-in ProvenanceSink: predictors keep their fast path
/// unchanged when no sink is attached (the common case — suite runs,
/// replay panels, benches), and walk the slightly costlier
/// record-everything path only while a sink is listening. Provenance is
/// entirely static — it depends only on the module and the predictor
/// configuration, never on an execution — so capturing it once per
/// module is enough for any number of trace replays
/// (ipbc/Attribution.h joins it against captured traces).
///
/// Attribution buckets: the 7 heuristics plus two pseudo-buckets, the
/// loop predictor (LoopBucket) and the default policy (DefaultBucket).
/// The default gets its own bucket deliberately: folding its sites into
/// any heuristic would make per-heuristic mispredict shares sum to less
/// than 100% on workloads where no heuristic applies to some branch.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_PROVENANCE_H
#define BPFREE_PREDICT_PROVENANCE_H

#include "predict/Heuristics.h"

#include <cstdint>
#include <vector>

namespace bpfree {

/// Attribution bucket indices: 0..NumHeuristics-1 are the HeuristicKind
/// values themselves, then the two pseudo-buckets.
constexpr unsigned LoopBucket = NumHeuristics;       ///< loop predictor
constexpr unsigned DefaultBucket = NumHeuristics + 1; ///< default policy
constexpr unsigned NumAttrBuckets = NumHeuristics + 2;

/// \returns the stable name of attribution bucket \p B: the heuristic
/// name ("Point", ...) for heuristic buckets, "LoopPred" and "Default"
/// for the pseudo-buckets. Like heuristicName, these strings key the
/// bpfree-explain-v1 JSON document and must not change.
const char *attrBucketName(unsigned B);

/// Why one conditional branch was predicted the way it was.
struct BranchProvenance {
  const ir::BasicBlock *BB = nullptr;
  /// Module-wide dense block index (DecodedBlock::FlatIndex); filled by
  /// the sink, which knows the module's flat offsets — predictors only
  /// see one block at a time.
  uint32_t FlatIndex = 0;
  /// Terminator::SrcLine of the branch, 0 for hand-built IR.
  int SrcLine = 0;
  /// The branch is a loop branch (decided by the loop predictor when
  /// the combined predictor made this prediction).
  bool IsLoopBranch = false;
  /// Deciding attribution bucket: a HeuristicKind value, LoopBucket, or
  /// DefaultBucket.
  unsigned Bucket = DefaultBucket;
  /// Position of the deciding heuristic in the predictor's priority
  /// order (0 = highest); -1 for the loop predictor, the default, and
  /// single-heuristic predictors.
  int Priority = -1;
  /// Heuristics that were consulted before the decision and declined —
  /// for the combined predictor, exactly the order positions above
  /// Priority (bit = HeuristicKind). On the default path this is every
  /// heuristic in the order.
  uint8_t DeclinedMask = 0;
  /// Every heuristic that applies to this branch regardless of order
  /// (applyAllHeuristics), including lower-priority ones the cascade
  /// never reached. DeclinedMask ∩ AppliesMask == ∅ by construction.
  uint8_t AppliesMask = 0;
  /// The direction the predictor chose — always identical to what
  /// predict(BB) returns for the same configuration.
  Direction Chosen = DirTaken;

  /// The deciding heuristic; only meaningful when Bucket < NumHeuristics.
  HeuristicKind deciding() const {
    return static_cast<HeuristicKind>(Bucket);
  }
};

/// Receiver of provenance records. Attach to a predictor with
/// setProvenanceSink; every subsequent predict() call emits one record.
/// Implementations need not be thread-safe — capture runs are
/// single-threaded (predictorDirections walks blocks serially).
class ProvenanceSink {
public:
  virtual ~ProvenanceSink();
  virtual void onPrediction(const BranchProvenance &P) = 0;
};

/// The standard sink: stores the latest record per branch, keyed by the
/// module-wide flat block index (which it computes — predictors leave
/// FlatIndex 0). Re-predicting a branch overwrites its record, so the
/// map always reflects the most recent capture pass.
class ProvenanceMap : public ProvenanceSink {
public:
  explicit ProvenanceMap(const ir::Module &M);

  void onPrediction(const BranchProvenance &P) override;

  /// \returns the record for \p FlatIndex, or nullptr when the block was
  /// never predicted (non-branch blocks, or capture did not run).
  const BranchProvenance *get(uint32_t FlatIndex) const {
    if (FlatIndex >= Records.size() || !Records[FlatIndex].BB)
      return nullptr;
    return &Records[FlatIndex];
  }

  /// Number of branches with a record.
  size_t numRecords() const { return NumRecorded; }
  /// Total flat-index slots (the module's block count).
  size_t numSlots() const { return Records.size(); }
  const ir::Module &getModule() const { return M; }

private:
  const ir::Module &M;
  std::vector<uint32_t> Offsets; ///< flatBlockOffsets(M)
  std::vector<BranchProvenance> Records; ///< by flat index; BB null = none
  size_t NumRecorded = 0;
};

} // namespace bpfree

#endif // BPFREE_PREDICT_PROVENANCE_H
