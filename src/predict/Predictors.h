//===- predict/Predictors.h - Static branch predictors ----------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static branch predictors. A static predictor assigns every
/// conditional branch one direction that never changes during execution
/// — "predicting a branch corresponds to choosing one of the two
/// outgoing edges". The suite contains:
///
///  * PerfectPredictor   — per-branch majority direction from an edge
///                         profile; the paper's upper bound.
///  * AlwaysTakenPredictor / AlwaysFallthruPredictor — the naive
///                         strategies of Table 2.
///  * RandomPredictor    — a deterministic per-branch coin flip.
///  * BallLarusPredictor — the paper's combined predictor: the loop
///                         predictor on loop branches and an ordered
///                         list of heuristics (plus a default) on
///                         non-loop branches.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_PREDICTORS_H
#define BPFREE_PREDICT_PREDICTORS_H

#include "predict/Heuristics.h"
#include "support/Rng.h"
#include "vm/EdgeProfile.h"

#include <array>
#include <string>

namespace bpfree {

class ProvenanceSink;

/// A heuristic priority order for the combined predictor.
using HeuristicOrder = std::array<HeuristicKind, NumHeuristics>;

/// The paper's Table 5 / Section 6 order:
/// Point, Call, Opcode, Return, Store, Loop, Guard.
HeuristicOrder paperOrder();

/// Renders an order as "Point>Call>...".
std::string orderToString(const HeuristicOrder &Order);

/// Abstract static predictor.
class StaticPredictor {
public:
  virtual ~StaticPredictor();

  /// Predicts the branch terminating \p BB (must be a conditional
  /// branch). The result must be stable across calls.
  virtual Direction predict(const ir::BasicBlock &BB) const = 0;

  virtual std::string name() const = 0;
};

/// Predicts each branch's more frequently executed edge (ties and never-
/// executed branches default to taken — their choice never affects miss
/// counts).
class PerfectPredictor : public StaticPredictor {
public:
  explicit PerfectPredictor(const EdgeProfile &Profile) : Profile(Profile) {}
  Direction predict(const ir::BasicBlock &BB) const override;
  std::string name() const override { return "Perfect"; }

private:
  const EdgeProfile &Profile;
};

/// Always predicts the target successor.
class AlwaysTakenPredictor : public StaticPredictor {
public:
  Direction predict(const ir::BasicBlock &BB) const override;
  std::string name() const override { return "Taken"; }
};

/// Always predicts the fall-thru successor.
class AlwaysFallthruPredictor : public StaticPredictor {
public:
  Direction predict(const ir::BasicBlock &BB) const override;
  std::string name() const override { return "Fallthru"; }
};

/// Deterministic per-branch random prediction: the same branch always
/// gets the same direction (the prediction is static), but directions
/// are split 50/50 across branches.
class RandomPredictor : public StaticPredictor {
public:
  explicit RandomPredictor(uint64_t Seed = 0) : Seed(Seed) {}
  Direction predict(const ir::BasicBlock &BB) const override;
  std::string name() const override { return "Random"; }

  /// The coin flip itself, shared with the combined predictor's Default.
  static Direction flip(const ir::BasicBlock &BB, uint64_t Seed);

private:
  uint64_t Seed;
};

/// What the combined predictor does when no heuristic applies.
enum class DefaultPolicy {
  Random,   ///< per-branch deterministic coin (the paper's choice)
  Taken,    ///< always the target successor
  Fallthru, ///< always the fall-thru successor
};

/// The paper's program-based predictor.
class BallLarusPredictor : public StaticPredictor {
public:
  BallLarusPredictor(const PredictionContext &Ctx,
                     HeuristicOrder Order = paperOrder(),
                     HeuristicConfig Config = {},
                     DefaultPolicy Default = DefaultPolicy::Random,
                     uint64_t DefaultSeed = 0)
      : Ctx(Ctx), Order(Order), Config(Config), Default(Default),
        DefaultSeed(DefaultSeed) {}

  Direction predict(const ir::BasicBlock &BB) const override;
  std::string name() const override { return "Heuristic"; }

  /// \returns the heuristic that would predict \p BB under this order,
  /// or nullopt when the branch is a loop branch or falls to the
  /// default.
  std::optional<HeuristicKind>
  responsibleHeuristic(const ir::BasicBlock &BB) const;

  const HeuristicOrder &getOrder() const { return Order; }
  const HeuristicConfig &getConfig() const { return Config; }

  /// Attaches \p S to receive a BranchProvenance record per predict()
  /// call (null detaches). With no sink — the default — predict() takes
  /// its original early-exit path, so unobserved prediction costs
  /// nothing extra; with a sink it additionally evaluates every
  /// heuristic for the record's AppliesMask. Decisions are identical
  /// either way.
  void setProvenanceSink(ProvenanceSink *S) { Sink = S; }

private:
  Direction predictRecording(const ir::BasicBlock &BB,
                             const FunctionContext &FC) const;

  const PredictionContext &Ctx;
  HeuristicOrder Order;
  HeuristicConfig Config;
  DefaultPolicy Default;
  uint64_t DefaultSeed;
  ProvenanceSink *Sink = nullptr;
};

/// One heuristic in isolation: applies heuristic \p K where it fires and
/// falls back to the deterministic per-branch coin everywhere else
/// (including loop branches), so the predictor is total like the others.
/// This is the Table 5 "each heuristic alone" configuration; the trace
/// replay panel evaluates all seven against one captured trace.
class SingleHeuristicPredictor : public StaticPredictor {
public:
  SingleHeuristicPredictor(const PredictionContext &Ctx, HeuristicKind K,
                           HeuristicConfig Config = {}, uint64_t Seed = 0)
      : Ctx(Ctx), K(K), Config(Config), Seed(Seed) {}

  Direction predict(const ir::BasicBlock &BB) const override;
  std::string name() const override;

  /// Same opt-in recording as BallLarusPredictor::setProvenanceSink:
  /// the record's bucket is heuristic \p K where it fires and
  /// DefaultBucket on the coin-flip fallback.
  void setProvenanceSink(ProvenanceSink *S) { Sink = S; }

private:
  const PredictionContext &Ctx;
  HeuristicKind K;
  HeuristicConfig Config;
  uint64_t Seed;
  ProvenanceSink *Sink = nullptr;
};

/// Baseline of Section 6: the loop predictor on loop branches and a
/// random (but static) prediction on non-loop branches — "Loop+Rand".
class LoopRandPredictor : public StaticPredictor {
public:
  explicit LoopRandPredictor(const PredictionContext &Ctx, uint64_t Seed = 0)
      : Ctx(Ctx), Seed(Seed) {}
  Direction predict(const ir::BasicBlock &BB) const override;
  std::string name() const override { return "Loop+Rand"; }

private:
  const PredictionContext &Ctx;
  uint64_t Seed;
};

} // namespace bpfree

#endif // BPFREE_PREDICT_PREDICTORS_H
