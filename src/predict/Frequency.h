//===- predict/Frequency.h - Static block-frequency estimation -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second half of the Wu-Larus sequel ("Static Branch Frequency
/// and Program Profile Analysis", MICRO 1994): propagate branch
/// probabilities through the CFG to estimate how often each basic
/// block executes — a *static profile*. With the entry frequency fixed
/// at 1, block frequencies satisfy
///
///     freq(b) = [b == entry] + sum over preds p of freq(p) * P(p -> b)
///
/// whose solution (a geometric series around loops) we compute by
/// fixed-point iteration with a frequency cap standing in for
/// Wu-Larus's cyclic-probability clamp.
///
/// scoreFrequencies judges estimate quality against a real edge
/// profile with Spearman rank correlation and hot-block overlap —
/// the numbers behind bench_frequency.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_FREQUENCY_H
#define BPFREE_PREDICT_FREQUENCY_H

#include "predict/Probability.h"

#include <functional>
#include <vector>

namespace bpfree {

/// Per-branch taken-probability oracle.
using TakenProbabilityFn =
    std::function<double(const ir::BasicBlock &)>;

/// Estimates per-block execution frequencies for \p F (entry = 1.0)
/// from \p TakenProb. Unreachable blocks get 0. Frequencies are capped
/// at \p MaxFrequency (loops whose exit probability approaches 0 would
/// otherwise diverge; Wu-Larus cap cyclic probabilities at 0.9999…).
std::vector<double>
estimateBlockFrequencies(const ir::Function &F,
                         const TakenProbabilityFn &TakenProb,
                         double MaxFrequency = 1e12);

/// Convenience oracles.
TakenProbabilityFn wuLarusOracle(const WuLarusPredictor &WL);
TakenProbabilityFn uniformOracle();           ///< every branch 50/50
TakenProbabilityFn perfectOracle(const EdgeProfile &Profile);

/// Quality of a static profile against a measured one.
struct FrequencyQuality {
  /// Spearman rank correlation between estimated and measured block
  /// frequencies (blocks of executed functions only; estimates scaled
  /// by each function's measured entry count so the comparison is
  /// about intra-function shape). 1 = perfect ordering.
  double SpearmanRho = 0.0;
  /// Of the measured top-decile hottest blocks, the fraction also in
  /// the estimated top decile.
  double HotOverlap = 0.0;
  size_t BlocksScored = 0;
};

/// Scores \p TakenProb's implied static profile for every executed
/// function of the module.
FrequencyQuality scoreFrequencies(const ir::Module &M,
                                  const TakenProbabilityFn &TakenProb,
                                  const EdgeProfile &Profile);

} // namespace bpfree

#endif // BPFREE_PREDICT_FREQUENCY_H
