//===- predict/Layout.cpp - Prediction-guided code layout -----------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Layout.h"

#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

BlockOrder bpfree::originalBlockOrder(const Function &F) {
  BlockOrder Order;
  for (const auto &BB : F)
    Order.push_back(BB.get());
  return Order;
}

BlockOrder bpfree::computeBlockOrder(const Function &F,
                                     const StaticPredictor &P) {
  BlockOrder Order;
  std::vector<bool> Placed(F.numBlocks(), false);

  // Grow a chain from each unplaced seed, following predictions.
  // Seeds are taken in creation order starting from the entry, so the
  // entry block is always first.
  for (size_t Seed = 0; Seed < F.numBlocks(); ++Seed) {
    const BasicBlock *Cur = F.getBlock(static_cast<unsigned>(Seed));
    while (Cur && !Placed[Cur->getId()]) {
      Placed[Cur->getId()] = true;
      Order.push_back(Cur);
      // Choose the likely successor: predicted direction for branches,
      // the jump target for jumps, nothing for returns.
      const BasicBlock *Next = nullptr;
      if (Cur->isCondBranch()) {
        Direction D = P.predict(*Cur);
        Next = Cur->getSuccessor(D == DirTaken ? 0 : 1);
      } else if (Cur->isUnconditionalJump()) {
        Next = Cur->getSuccessor(0);
      }
      Cur = Next;
    }
  }
  assert(Order.size() == F.numBlocks() && "layout must place every block");
  return Order;
}

LayoutQuality bpfree::evaluateLayout(const Function &F,
                                     const BlockOrder &Order,
                                     const EdgeProfile &Profile) {
  assert(Order.size() == F.numBlocks() && "incomplete layout");
  // Block id -> its successor in the layout (nullptr for the last).
  std::vector<const BasicBlock *> NextInLayout(F.numBlocks(), nullptr);
  for (size_t I = 0; I + 1 < Order.size(); ++I)
    NextInLayout[Order[I]->getId()] = Order[I + 1];

  LayoutQuality Q;
  for (const auto &BB : F) {
    const BasicBlock *Next = NextInLayout[BB->getId()];
    if (BB->isCondBranch()) {
      const EdgeProfile::Counts &C = Profile.get(*BB);
      const Terminator &T = BB->terminator();
      (T.Taken == Next ? Q.FallthroughExecs : Q.TakenTransfers) += C.Taken;
      (T.Fallthru == Next ? Q.FallthroughExecs : Q.TakenTransfers) +=
          C.Fallthru;
    } else if (BB->isUnconditionalJump()) {
      uint64_t N = Profile.getBlockCount(*BB);
      (BB->getSuccessor(0) == Next ? Q.FallthroughExecs
                                   : Q.TakenTransfers) += N;
    }
    // Returns transfer to the caller; they are neither fall-throughs
    // nor layout-taken branches.
  }
  return Q;
}

LayoutQuality bpfree::evaluateModuleLayout(const Module &M,
                                           const StaticPredictor &P,
                                           const EdgeProfile &Profile) {
  LayoutQuality Q;
  for (const auto &F : M)
    Q += evaluateLayout(*F, computeBlockOrder(*F, P), Profile);
  return Q;
}

LayoutQuality bpfree::evaluateOriginalLayout(const Module &M,
                                             const EdgeProfile &Profile) {
  LayoutQuality Q;
  for (const auto &F : M)
    Q += evaluateLayout(*F, originalBlockOrder(*F), Profile);
  return Q;
}
