//===- predict/Provenance.cpp - Per-branch prediction provenance ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Provenance.h"

#include "vm/BranchTrace.h"

#include <cassert>

using namespace bpfree;

const char *bpfree::attrBucketName(unsigned B) {
  if (B < NumHeuristics)
    return heuristicName(static_cast<HeuristicKind>(B));
  if (B == LoopBucket)
    return "LoopPred";
  assert(B == DefaultBucket && "unknown attribution bucket");
  return "Default";
}

ProvenanceSink::~ProvenanceSink() = default;

ProvenanceMap::ProvenanceMap(const ir::Module &M)
    : M(M), Offsets(flatBlockOffsets(M)), Records(Offsets.back()) {}

void ProvenanceMap::onPrediction(const BranchProvenance &P) {
  assert(P.BB && "provenance record without a block");
  const ir::Function *F = P.BB->getParent();
  assert(F->getParent() == &M && "record from a different module");
  const uint32_t Flat = Offsets[F->getIndex()] + P.BB->getId();
  assert(Flat < Records.size() && "flat index out of range");
  if (!Records[Flat].BB)
    ++NumRecorded;
  Records[Flat] = P;
  Records[Flat].FlatIndex = Flat;
}
