//===- predict/Evaluation.cpp - Miss-rate evaluation harness --------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Evaluation.h"

#include <algorithm>
#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

std::vector<BranchStats>
bpfree::collectBranchStats(const PredictionContext &Ctx,
                           const EdgeProfile &Profile,
                           const HeuristicConfig &Config,
                           uint64_t RandomSeed) {
  std::vector<BranchStats> Stats;
  const Module &M = Ctx.getModule();
  for (const auto &F : M) {
    const FunctionContext &FC = Ctx.get(*F);
    for (const auto &BB : *F) {
      if (!BB->isCondBranch())
        continue;
      BranchStats S;
      S.BB = BB.get();
      const EdgeProfile::Counts &C = Profile.get(*BB);
      S.Taken = C.Taken;
      S.Fallthru = C.Fallthru;
      S.IsLoopBranch = FC.Loops.isLoopBranch(BB.get());
      if (S.IsLoopBranch) {
        unsigned Pred = FC.Loops.predictLoopBranch(BB.get());
        S.LoopDir = Pred == 0 ? DirTaken : DirFallthru;
        S.IsBackwardBranch = FC.Loops.isBackedge(BB.get(), Pred);
      } else {
        auto [Applies, Dirs] = applyAllHeuristics(*BB, FC, Config);
        S.AppliesMask = Applies;
        S.DirMask = Dirs;
      }
      S.RandomDir = RandomPredictor::flip(*BB, RandomSeed);
      Stats.push_back(S);
    }
  }
  return Stats;
}

LoopNonLoopBreakdown
bpfree::computeLoopNonLoopBreakdown(const std::vector<BranchStats> &Stats) {
  LoopNonLoopBreakdown R;
  uint64_t LoopExecs = 0;
  uint64_t NonBackwardLoopExecs = 0;
  std::vector<const BranchStats *> NonLoop;

  for (const BranchStats &S : Stats) {
    uint64_t T = S.total();
    if (T == 0)
      continue;
    R.TotalExecs += T;
    if (S.IsLoopBranch) {
      LoopExecs += T;
      R.LoopPredictorMiss.add(S.missesFor(S.LoopDir), T);
      R.LoopPerfectMiss.add(S.perfectMisses(), T);
      if (!S.IsBackwardBranch)
        NonBackwardLoopExecs += T;
      // Ablation: the "common technique of simply identifying backwards
      // branches" — predict the backedge when the loop predictor chose
      // one, otherwise fall back to the per-branch coin.
      Direction D = S.IsBackwardBranch ? S.LoopDir : S.RandomDir;
      R.BackwardOnlyMiss.add(S.missesFor(D), T);
    } else {
      R.NonLoopExecs += T;
      R.NonLoopPerfectMiss.add(S.perfectMisses(), T);
      R.NonLoopTakenMiss.add(S.missesFor(DirTaken), T);
      R.NonLoopRandomMiss.add(S.missesFor(S.RandomDir), T);
      NonLoop.push_back(&S);
    }
  }

  // "Big" branches: distinct non-loop branches that each generate more
  // than 5 percent of the dynamic non-loop branch executions.
  uint64_t BigExecs = 0;
  for (const BranchStats *S : NonLoop) {
    if (R.NonLoopExecs > 0 &&
        static_cast<double>(S->total()) >
            0.05 * static_cast<double>(R.NonLoopExecs)) {
      ++R.BigBranchCount;
      BigExecs += S->total();
    }
  }
  R.BigBranchFraction =
      R.NonLoopExecs == 0 ? 0.0
                          : static_cast<double>(BigExecs) /
                                static_cast<double>(R.NonLoopExecs);
  R.NonBackwardLoopFraction =
      LoopExecs == 0 ? 0.0
                     : static_cast<double>(NonBackwardLoopExecs) /
                           static_cast<double>(LoopExecs);
  return R;
}

std::vector<HeuristicIsolation>
bpfree::computeHeuristicIsolation(const std::vector<BranchStats> &Stats) {
  std::vector<HeuristicIsolation> Results;
  uint64_t NonLoopExecs = 0;
  for (const BranchStats &S : Stats)
    if (!S.IsLoopBranch)
      NonLoopExecs += S.total();

  for (HeuristicKind K : AllHeuristics) {
    HeuristicIsolation H;
    H.Kind = K;
    H.NonLoopExecs = NonLoopExecs;
    for (const BranchStats &S : Stats) {
      if (S.IsLoopBranch || S.total() == 0 || !S.heuristicApplies(K))
        continue;
      uint64_t T = S.total();
      H.CoveredExecs += T;
      H.Miss.add(S.missesFor(S.heuristicDir(K)), T);
      H.PerfectMiss.add(S.perfectMisses(), T);
    }
    Results.push_back(H);
  }
  return Results;
}

CombinedResult
bpfree::computeCombined(const std::vector<BranchStats> &Stats,
                        const HeuristicOrder &Order) {
  CombinedResult R;
  R.Order = Order;

  for (const BranchStats &S : Stats) {
    uint64_t T = S.total();
    if (T == 0)
      continue;
    R.AllPerfectMiss.add(S.perfectMisses(), T);

    if (S.IsLoopBranch) {
      uint64_t LoopMisses = S.missesFor(S.LoopDir);
      R.AllMiss.add(LoopMisses, T);
      R.LoopRandMiss.add(LoopMisses, T);
      continue;
    }

    R.NonLoopExecs += T;
    R.NonLoopPerfectMiss.add(S.perfectMisses(), T);
    R.LoopRandMiss.add(S.missesFor(S.RandomDir), T);

    // First applicable heuristic in priority order, else the default.
    size_t SlotIdx = NumHeuristics;
    Direction D = S.RandomDir;
    for (size_t I = 0; I < Order.size(); ++I) {
      if (S.heuristicApplies(Order[I])) {
        SlotIdx = I;
        D = S.heuristicDir(Order[I]);
        break;
      }
    }
    uint64_t Misses = S.missesFor(D);
    R.Slots[SlotIdx].CoveredExecs += T;
    R.Slots[SlotIdx].Miss.add(Misses, T);
    R.Slots[SlotIdx].PerfectMiss.add(S.perfectMisses(), T);
    R.NonLoopMiss.add(Misses, T);
    R.AllMiss.add(Misses, T);
    if (SlotIdx != NumHeuristics)
      R.HeuristicOnlyMiss.add(Misses, T);
  }
  return R;
}

Ratio bpfree::evaluatePredictor(const StaticPredictor &P,
                                const std::vector<BranchStats> &Stats) {
  Ratio R;
  for (const BranchStats &S : Stats) {
    uint64_t T = S.total();
    if (T == 0)
      continue;
    R.add(S.missesFor(P.predict(*S.BB)), T);
  }
  return R;
}
