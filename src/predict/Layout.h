//===- predict/Layout.h - Prediction-guided code layout ---------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A consumer for the predictions, motivated by the paper's
/// introduction: "Many compilers rely on branch prediction to improve
/// program performance by identifying frequently executed regions",
/// citing Pettis & Hanson's profile-guided code positioning and the
/// DEC Alpha convention that forward branches are predicted not-taken.
///
/// computeBlockOrder grows chains greedily: each block is followed by
/// its predicted successor whenever that successor has not been placed
/// yet. Feeding it the Ball-Larus predictor gives profile-free code
/// positioning; feeding it the perfect predictor gives the
/// profile-guided upper bound. evaluateLayout scores an order against
/// an actual execution: the fraction of dynamic control transfers that
/// fall through to the next block in the layout (higher = fewer taken
/// branches = cheaper on machines that predict forward-not-taken).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_LAYOUT_H
#define BPFREE_PREDICT_LAYOUT_H

#include "predict/Predictors.h"
#include "vm/EdgeProfile.h"

#include <vector>

namespace bpfree {

/// A block order for one function (a permutation of its blocks; the
/// entry block always comes first).
using BlockOrder = std::vector<const ir::BasicBlock *>;

/// Greedy chain-growing placement driven by \p P's predictions.
BlockOrder computeBlockOrder(const ir::Function &F,
                             const StaticPredictor &P);

/// The function's original (creation) order — the unoptimized baseline.
BlockOrder originalBlockOrder(const ir::Function &F);

/// Dynamic layout quality of \p Order under \p Profile.
struct LayoutQuality {
  uint64_t FallthroughExecs = 0; ///< transfers to the next block in layout
  uint64_t TakenTransfers = 0;   ///< all other transfers

  uint64_t total() const { return FallthroughExecs + TakenTransfers; }
  double fallthroughRate() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(FallthroughExecs) /
                              static_cast<double>(total());
  }

  void operator+=(const LayoutQuality &RHS) {
    FallthroughExecs += RHS.FallthroughExecs;
    TakenTransfers += RHS.TakenTransfers;
  }
};

/// Scores \p Order for \p F: every executed control transfer (both
/// directions of conditional branches, weighted by the profile, and
/// unconditional jumps, weighted by block execution counts) either
/// reaches the next block in the layout (fall-through) or not (taken).
LayoutQuality evaluateLayout(const ir::Function &F, const BlockOrder &Order,
                             const EdgeProfile &Profile);

/// Whole-module convenience: lay out every function with \p P and sum
/// the qualities.
LayoutQuality evaluateModuleLayout(const ir::Module &M,
                                   const StaticPredictor &P,
                                   const EdgeProfile &Profile);

/// Whole-module score of the original block order.
LayoutQuality evaluateOriginalLayout(const ir::Module &M,
                                     const EdgeProfile &Profile);

} // namespace bpfree

#endif // BPFREE_PREDICT_LAYOUT_H
