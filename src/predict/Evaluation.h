//===- predict/Evaluation.h - Miss-rate evaluation harness ------*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the statistics behind the paper's Tables 2, 3, 5, and 6 from
/// one module + one edge profile. Everything is expressed over dynamic
/// branch executions: the miss rate of a static predictor is the number
/// of executed branches whose direction differed from the prediction,
/// divided by total executed branches of the population in question.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_EVALUATION_H
#define BPFREE_PREDICT_EVALUATION_H

#include "predict/Predictors.h"

#include <vector>

namespace bpfree {

/// Everything the evaluation needs to know about one static conditional
/// branch: its dynamic counts and the static predictions all predictors
/// would make. Branches that never executed get Taken = Fallthru = 0 and
/// contribute nothing to any rate.
struct BranchStats {
  const ir::BasicBlock *BB = nullptr;
  uint64_t Taken = 0;
  uint64_t Fallthru = 0;

  bool IsLoopBranch = false;
  /// Loop predictor's direction (valid when IsLoopBranch).
  Direction LoopDir = DirTaken;
  /// True when the predicted loop edge is a backedge (vs non-exit edge);
  /// used by the backedge-only ablation.
  bool IsBackwardBranch = false;

  /// Heuristic applicability and directions (bit = HeuristicKind).
  uint8_t AppliesMask = 0;
  uint8_t DirMask = 0;

  /// Deterministic per-branch coin for random/default prediction.
  Direction RandomDir = DirTaken;

  uint64_t total() const { return Taken + Fallthru; }
  uint64_t missesFor(Direction D) const {
    return D == DirTaken ? Fallthru : Taken;
  }
  uint64_t perfectMisses() const {
    return Taken < Fallthru ? Taken : Fallthru;
  }
  bool heuristicApplies(HeuristicKind K) const {
    return AppliesMask & (1u << static_cast<unsigned>(K));
  }
  Direction heuristicDir(HeuristicKind K) const {
    return (DirMask & (1u << static_cast<unsigned>(K))) ? DirFallthru
                                                        : DirTaken;
  }
};

/// Collects BranchStats for every conditional branch of the module.
std::vector<BranchStats> collectBranchStats(const PredictionContext &Ctx,
                                            const EdgeProfile &Profile,
                                            const HeuristicConfig &Config = {},
                                            uint64_t RandomSeed = 0);

/// A misses/total pair convertible to a rate.
struct Ratio {
  uint64_t Num = 0;
  uint64_t Den = 0;
  double rate() const {
    return Den == 0 ? 0.0 : static_cast<double>(Num) / static_cast<double>(Den);
  }
  void add(uint64_t N, uint64_t D) {
    Num += N;
    Den += D;
  }
};

/// Table 2: dynamic breakdown of loop vs non-loop branches.
struct LoopNonLoopBreakdown {
  uint64_t TotalExecs = 0;    ///< all dynamic conditional branches
  uint64_t NonLoopExecs = 0;  ///< dynamic non-loop branch executions
  Ratio LoopPredictorMiss;    ///< loop predictor on loop branches
  Ratio LoopPerfectMiss;      ///< perfect predictor on loop branches
  Ratio BackwardOnlyMiss;     ///< ablation: predict backwards-taken only
  Ratio NonLoopPerfectMiss;   ///< perfect predictor on non-loop branches
  Ratio NonLoopTakenMiss;     ///< always-target on non-loop branches
  Ratio NonLoopRandomMiss;    ///< random on non-loop branches
  unsigned BigBranchCount = 0;  ///< non-loop branches with > 5% of execs
  double BigBranchFraction = 0; ///< fraction of execs they account for
  /// Fraction of dynamic *loop branch* executions whose predicted edge is
  /// not a backwards branch (the paper: 40% in xlisp, 45% in doduc).
  double NonBackwardLoopFraction = 0;

  double nonLoopFraction() const {
    return TotalExecs == 0
               ? 0.0
               : static_cast<double>(NonLoopExecs) /
                     static_cast<double>(TotalExecs);
  }
};

LoopNonLoopBreakdown
computeLoopNonLoopBreakdown(const std::vector<BranchStats> &Stats);

/// Table 3: one heuristic applied in isolation over non-loop branches.
struct HeuristicIsolation {
  HeuristicKind Kind = HeuristicKind::Opcode;
  uint64_t CoveredExecs = 0; ///< dynamic non-loop execs where it applies
  uint64_t NonLoopExecs = 0; ///< all dynamic non-loop execs
  Ratio Miss;                ///< heuristic miss on covered branches
  Ratio PerfectMiss;         ///< perfect miss on the same branches

  double coverage() const {
    return NonLoopExecs == 0 ? 0.0
                             : static_cast<double>(CoveredExecs) /
                                   static_cast<double>(NonLoopExecs);
  }
};

std::vector<HeuristicIsolation>
computeHeuristicIsolation(const std::vector<BranchStats> &Stats);

/// Tables 5 and 6: the combined predictor with per-slot attribution.
struct CombinedResult {
  HeuristicOrder Order = paperOrder();
  /// Slot I = heuristic Order[I]; entry NumHeuristics = the Default.
  struct Slot {
    uint64_t CoveredExecs = 0;
    Ratio Miss;
    Ratio PerfectMiss;
  };
  std::array<Slot, NumHeuristics + 1> Slots;

  uint64_t NonLoopExecs = 0;
  Ratio HeuristicOnlyMiss;  ///< covered non-loop branches (Table 6 col 1)
  Ratio NonLoopMiss;        ///< + default = all non-loop (col 2)
  Ratio NonLoopPerfectMiss; ///< perfect on non-loop branches
  Ratio AllMiss;            ///< + loop predictor = all branches (col 3)
  Ratio AllPerfectMiss;     ///< perfect on all branches
  Ratio LoopRandMiss;       ///< Loop+Rand baseline on all branches (col 4)

  /// Fraction of dynamic non-loop executions covered before the default.
  double coverage() const {
    return NonLoopExecs == 0
               ? 0.0
               : static_cast<double>(NonLoopExecs - Slots[NumHeuristics]
                                                        .CoveredExecs) /
                     static_cast<double>(NonLoopExecs);
  }
};

CombinedResult computeCombined(const std::vector<BranchStats> &Stats,
                               const HeuristicOrder &Order = paperOrder());

/// Evaluates an arbitrary static predictor over all executed branches.
Ratio evaluatePredictor(const StaticPredictor &P,
                        const std::vector<BranchStats> &Stats);

} // namespace bpfree

#endif // BPFREE_PREDICT_EVALUATION_H
