//===- predict/DynamicPredictors.cpp - Dynamic branch predictors ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/DynamicPredictors.h"

#include <cassert>
#include <cctype>

using namespace bpfree;

//===----------------------------------------------------------------------===//
// Configuration
//===----------------------------------------------------------------------===//

bool DynPredictorConfig::perSiteDecomposable() const {
  switch (Kind) {
  case DynKind::Bimodal:
    return Entries == 0;
  case DynKind::TwoLevel:
    return L1Entries == 0;
  case DynKind::GShare:
  case DynKind::Tournament:
    return false;
  }
  return false;
}

std::string DynPredictorConfig::name() const {
  const auto Num = [](uint32_t V) { return std::to_string(V); };
  switch (Kind) {
  case DynKind::Bimodal:
    return Entries == 0 ? "bimodal[site]" : "bimodal[" + Num(Entries) + "]";
  case DynKind::GShare: {
    const uint32_t L2 = L2Entries ? L2Entries : (1u << HistoryBits);
    if (L2 == (1u << HistoryBits))
      return "gshare[" + Num(HistoryBits) + "]";
    return "gshare[" + Num(HistoryBits) + "/" + Num(L2) + "]";
  }
  case DynKind::TwoLevel: {
    const uint32_t L2 = L2Entries ? L2Entries : (1u << HistoryBits);
    const bool SharedL2 = L2 == (1u << HistoryBits);
    if (L1Entries == 0)
      return "pap[site/" + Num(HistoryBits) + "]";
    if (L1Entries == 1)
      return SharedL2 ? "gag[" + Num(HistoryBits) + "]"
                      : "gap[" + Num(HistoryBits) + "/" + Num(L2) + "]";
    if (SharedL2)
      return "pag[" + Num(L1Entries) + "/" + Num(HistoryBits) + "]";
    return "pap[" + Num(L1Entries) + "/" + Num(HistoryBits) + "/" + Num(L2) +
           "]";
  }
  case DynKind::Tournament:
    return "tourn[" + Num(MetaEntries) + "]";
  }
  return "dyn[?]";
}

namespace {

bool isPow2(uint32_t V) { return V != 0 && (V & (V - 1)) == 0; }

Diag configDiag(const std::string &What) {
  return Diag(ErrorKind::InvalidArgument, "dynamic predictor config: " + What);
}

/// Bounds shared by validateDynConfig: table ceilings keep a mistyped
/// spec from allocating gigabytes, and the history width must leave room
/// for the site bits above it in the 32-bit l2 index.
constexpr uint32_t MaxTableEntries = 1u << 26;
constexpr uint32_t MaxL1Entries = 1u << 20;
constexpr uint32_t MaxHistoryBits = 20;
constexpr uint32_t MaxPerSiteHistoryBits = 16;

std::optional<Diag> validateTwoLevelFields(const DynPredictorConfig &C) {
  if (C.HistoryBits < 1 || C.HistoryBits > MaxHistoryBits)
    return configDiag("HistoryBits must be in [1, " +
                      std::to_string(MaxHistoryBits) + "], got " +
                      std::to_string(C.HistoryBits));
  if (C.L1Entries != 0 && (!isPow2(C.L1Entries) || C.L1Entries > MaxL1Entries))
    return configDiag("L1Entries must be 0 (per-site) or a power of two <= " +
                      std::to_string(MaxL1Entries) + ", got " +
                      std::to_string(C.L1Entries));
  if (C.L1Entries == 0) {
    // Per-site-exact PAp: one 1<<W counter row per site; the L2 table is
    // derived, never configured.
    if (C.HistoryBits > MaxPerSiteHistoryBits)
      return configDiag("per-site two-level HistoryBits must be <= " +
                        std::to_string(MaxPerSiteHistoryBits) + ", got " +
                        std::to_string(C.HistoryBits));
    if (C.L2Entries != 0)
      return configDiag(
          "per-site two-level derives its table; L2Entries must be 0");
    return std::nullopt;
  }
  if (C.L2Entries != 0 &&
      (!isPow2(C.L2Entries) || C.L2Entries > MaxTableEntries))
    return configDiag("L2Entries must be 0 (1<<HistoryBits) or a power of "
                      "two <= " +
                      std::to_string(MaxTableEntries) + ", got " +
                      std::to_string(C.L2Entries));
  return std::nullopt;
}

std::optional<Diag> validateBimodalFields(const DynPredictorConfig &C) {
  if (C.Entries != 0 && (!isPow2(C.Entries) || C.Entries > MaxTableEntries))
    return configDiag("bimodal Entries must be 0 (per-site) or a power of "
                      "two <= " +
                      std::to_string(MaxTableEntries) + ", got " +
                      std::to_string(C.Entries));
  return std::nullopt;
}

} // namespace

std::optional<Diag> bpfree::validateDynConfig(const DynPredictorConfig &C) {
  switch (C.Kind) {
  case DynKind::Bimodal:
    return validateBimodalFields(C);
  case DynKind::GShare:
    if (C.L1Entries != 1)
      return configDiag("gshare uses one global history; L1Entries must be 1");
    return validateTwoLevelFields(C);
  case DynKind::TwoLevel:
    return validateTwoLevelFields(C);
  case DynKind::Tournament: {
    if (!isPow2(C.MetaEntries) || C.MetaEntries > MaxTableEntries)
      return configDiag("tournament MetaEntries must be a power of two <= " +
                        std::to_string(MaxTableEntries) + ", got " +
                        std::to_string(C.MetaEntries));
    if (std::optional<Diag> D = validateBimodalFields(C))
      return D;
    return validateTwoLevelFields(C);
  }
  }
  return configDiag("unknown predictor kind");
}

//===----------------------------------------------------------------------===//
// DynamicPredictor
//===----------------------------------------------------------------------===//

namespace {

/// SimpleScalar's bpred_dir_create counter init: entry i alternates
/// weakly-not-taken (1) / weakly-taken (2) — the "flipflop" pattern.
void flipFlopInit(std::vector<uint8_t> &Table, size_t N) {
  Table.assign(N, 0);
  uint8_t Flipflop = 1;
  for (size_t I = 0; I < N; ++I) {
    Table[I] = Flipflop;
    Flipflop = static_cast<uint8_t>(3 - Flipflop);
  }
}

void saturate(uint8_t &Counter, bool Taken) {
  if (Taken) {
    if (Counter < 3)
      ++Counter;
  } else if (Counter > 0) {
    --Counter;
  }
}

} // namespace

DynamicPredictor::DynamicPredictor(const DynPredictorConfig &C,
                                   uint32_t NumSites)
    : Cfg(C), NumSites(NumSites) {
  assert(!validateDynConfig(C) && "constructing from an invalid config");
  reset();
}

void DynamicPredictor::reset() {
  const bool NeedBimodal =
      Cfg.Kind == DynKind::Bimodal || Cfg.Kind == DynKind::Tournament;
  const bool NeedTwoLevel = Cfg.Kind != DynKind::Bimodal;
  if (NeedBimodal) {
    const uint32_t N = Cfg.Entries == 0 ? NumSites : Cfg.Entries;
    BimMask = Cfg.Entries == 0 ? 0 : Cfg.Entries - 1;
    flipFlopInit(BimCounters, N);
  }
  if (NeedTwoLevel) {
    HistMask = (1u << Cfg.HistoryBits) - 1;
    Xor = Cfg.Kind == DynKind::GShare;
    PerSiteExact = Cfg.L1Entries == 0;
    if (PerSiteExact) {
      L1Mask = 0;
      Hist.assign(NumSites, 0);
      // One private 1<<W counter row per site; the row is selected by
      // the site, the entry within it by the site's own history.
      L2Mask = HistMask;
      flipFlopInit(L2Counters,
                   static_cast<size_t>(NumSites) << Cfg.HistoryBits);
    } else {
      L1Mask = Cfg.L1Entries - 1;
      Hist.assign(Cfg.L1Entries, 0);
      const uint32_t L2 =
          Cfg.L2Entries ? Cfg.L2Entries : (1u << Cfg.HistoryBits);
      L2Mask = L2 - 1;
      flipFlopInit(L2Counters, L2);
    }
  }
  if (Cfg.Kind == DynKind::Tournament) {
    MetaMask = Cfg.MetaEntries - 1;
    flipFlopInit(Meta, Cfg.MetaEntries);
  }
}

bool DynamicPredictor::bimodalPredict(uint32_t Site) const {
  // Entries == 0 is the per-site shape; the mask alone cannot tell it
  // from a one-entry table (both mask to 0).
  const uint32_t I = Cfg.Entries == 0 ? Site : (Site & BimMask);
  return BimCounters[I] >= 2;
}

void DynamicPredictor::bimodalUpdate(uint32_t Site, bool Taken) {
  const uint32_t I = Cfg.Entries == 0 ? Site : (Site & BimMask);
  saturate(BimCounters[I], Taken);
}

size_t DynamicPredictor::l2Index(uint32_t Site) const {
  if (PerSiteExact)
    // Private row per site: the site selects the row, its history the
    // entry — never masked against another site's row.
    return (static_cast<size_t>(Site) << Cfg.HistoryBits) |
           (Hist[Site] & HistMask);
  const uint32_t H = Hist[Site & L1Mask] & HistMask;
  // SimpleScalar bpred_dir_lookup: the history sits in the low bits with
  // the address above it; gshare XORs the address into the history bits
  // instead. Either way the table mask has the last word.
  const uint32_t I =
      Xor ? (((H ^ Site) & HistMask) | (Site << Cfg.HistoryBits))
          : (H | (Site << Cfg.HistoryBits));
  return I & L2Mask;
}

bool DynamicPredictor::twoLevelPredict(uint32_t Site) const {
  return L2Counters[l2Index(Site)] >= 2;
}

void DynamicPredictor::twoLevelUpdate(uint32_t Site, bool Taken) {
  // Counter first, history second — bpred_update order; the counter
  // trained is the one the lookup consulted.
  saturate(L2Counters[l2Index(Site)], Taken);
  uint32_t &H = Hist[PerSiteExact ? Site : (Site & L1Mask)];
  H = ((H << 1) | static_cast<uint32_t>(Taken)) & HistMask;
}

bool DynamicPredictor::predictAndUpdate(uint32_t Site, bool Taken) {
  assert(Site < NumSites && "site index out of range");
  switch (Cfg.Kind) {
  case DynKind::Bimodal: {
    const bool Pred = bimodalPredict(Site);
    bimodalUpdate(Site, Taken);
    return Pred;
  }
  case DynKind::TwoLevel:
  case DynKind::GShare: {
    const bool Pred = twoLevelPredict(Site);
    twoLevelUpdate(Site, Taken);
    return Pred;
  }
  case DynKind::Tournament: {
    const bool BimPred = bimodalPredict(Site);
    const bool TwoPred = twoLevelPredict(Site);
    uint8_t &M = Meta[Site & MetaMask];
    const bool Pred = M >= 2 ? TwoPred : BimPred;
    // The chooser trains only on disagreement, toward whichever
    // component was right; both components always train.
    if (BimPred != TwoPred)
      saturate(M, TwoPred == Taken);
    bimodalUpdate(Site, Taken);
    twoLevelUpdate(Site, Taken);
    return Pred;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Standard panel + spec parsing
//===----------------------------------------------------------------------===//

std::vector<DynPredictorConfig> bpfree::standardDynamicPanel() {
  std::vector<DynPredictorConfig> Panel;
  // Alias-free per-site bimodal: the per-site sharded replay path.
  Panel.push_back({DynKind::Bimodal, /*Entries=*/0, 1, 12, 0, 4096});
  // Tabled bimodal at SimpleScalar's default size.
  Panel.push_back({DynKind::Bimodal, /*Entries=*/4096, 1, 12, 0, 4096});
  // gshare with 12 bits of global history.
  Panel.push_back({DynKind::GShare, 4096, /*L1=*/1, /*W=*/12, 0, 4096});
  // GAg(12): one global register, shared 4K counter table.
  Panel.push_back({DynKind::TwoLevel, 4096, /*L1=*/1, /*W=*/12, 0, 4096});
  // PAg(1024, 10): per-address registers, shared table.
  Panel.push_back({DynKind::TwoLevel, 4096, /*L1=*/1024, /*W=*/10, 0, 4096});
  // Alias-free per-site-exact PAp with 4-bit local history.
  Panel.push_back({DynKind::TwoLevel, 4096, /*L1=*/0, /*W=*/4, 0, 4096});
  // Tournament: bimodal[4096] vs gag[12], 4K chooser.
  Panel.push_back({DynKind::Tournament, 4096, /*L1=*/1, /*W=*/12, 0, 4096});
  return Panel;
}

namespace {

Diag specDiag(const std::string &Token, const std::string &What) {
  return Diag(ErrorKind::InvalidArgument,
              "dynamic spec token '" + Token + "': " + What);
}

/// Splits "a,b,c" argument lists; "site" parses as the sentinel 0 when
/// \p SiteOk allows it. Returns false on a malformed number.
bool parseArgs(const std::string &Args, bool SiteOk,
               std::vector<uint32_t> &Out) {
  size_t Pos = 0;
  while (Pos <= Args.size()) {
    const size_t Comma = Args.find(',', Pos);
    const std::string Part =
        Args.substr(Pos, Comma == std::string::npos ? Comma : Comma - Pos);
    if (Part.empty())
      return false;
    if (SiteOk && Part == "site") {
      Out.push_back(0);
    } else {
      uint64_t V = 0;
      for (char Ch : Part) {
        if (!std::isdigit(static_cast<unsigned char>(Ch)))
          return false;
        V = V * 10 + static_cast<uint64_t>(Ch - '0');
        if (V > 0xFFFFFFFFu)
          return false;
      }
      Out.push_back(static_cast<uint32_t>(V));
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

Expected<DynPredictorConfig> parseToken(const std::string &Token) {
  const size_t Colon = Token.find(':');
  const std::string Name = Token.substr(0, Colon);
  std::vector<uint32_t> A;
  if (Colon != std::string::npos &&
      !parseArgs(Token.substr(Colon + 1), /*SiteOk=*/true, A))
    return specDiag(Token, "malformed argument list");

  DynPredictorConfig C;
  if (Name == "bimodal") {
    C.Kind = DynKind::Bimodal;
    C.Entries = A.empty() ? 4096 : A[0];
    if (A.size() > 1)
      return specDiag(Token, "bimodal takes at most one argument");
  } else if (Name == "gshare") {
    C.Kind = DynKind::GShare;
    C.L1Entries = 1;
    C.HistoryBits = A.empty() ? 12 : A[0];
    C.L2Entries = A.size() > 1 ? A[1] : 0;
    if (A.size() > 2)
      return specDiag(Token, "gshare takes at most two arguments");
  } else if (Name == "gag") {
    C.Kind = DynKind::TwoLevel;
    C.L1Entries = 1;
    if (A.size() != 1)
      return specDiag(Token, "gag takes exactly one argument (W)");
    C.HistoryBits = A[0];
  } else if (Name == "gap") {
    C.Kind = DynKind::TwoLevel;
    C.L1Entries = 1;
    if (A.size() != 2)
      return specDiag(Token, "gap takes exactly two arguments (W,L2)");
    C.HistoryBits = A[0];
    C.L2Entries = A[1];
  } else if (Name == "pag") {
    C.Kind = DynKind::TwoLevel;
    if (A.size() != 2)
      return specDiag(Token, "pag takes exactly two arguments (L1,W)");
    C.L1Entries = A[0];
    C.HistoryBits = A[1];
    C.L2Entries = 0;
    if (C.L1Entries == 0)
      return specDiag(Token, "pag L1 must be >= 1; use pap:site,W for the "
                             "per-site shape");
  } else if (Name == "pap") {
    C.Kind = DynKind::TwoLevel;
    if (A.size() == 2) {
      // pap:site,W or pap:L1,W — per-site-exact when L1 is the site
      // sentinel, otherwise a private-shaped table is still required.
      C.L1Entries = A[0];
      C.HistoryBits = A[1];
      C.L2Entries = 0;
      if (C.L1Entries != 0)
        return specDiag(Token, "pap needs L2 (pap:L1,W,L2) unless per-site "
                               "(pap:site,W)");
    } else if (A.size() == 3) {
      C.L1Entries = A[0];
      C.HistoryBits = A[1];
      C.L2Entries = A[2];
    } else {
      return specDiag(Token, "pap takes pap:site,W or pap:L1,W,L2");
    }
  } else if (Name == "2lev") {
    C.Kind = DynKind::TwoLevel;
    if (A.size() != 3)
      return specDiag(Token, "2lev takes exactly three arguments (L1,W,L2)");
    C.L1Entries = A[0];
    C.HistoryBits = A[1];
    C.L2Entries = A[2];
  } else if (Name == "tournament" || Name == "tourn") {
    C.Kind = DynKind::Tournament;
    C.Entries = 4096;
    C.L1Entries = 1;
    C.HistoryBits = 12;
    C.L2Entries = 0;
    C.MetaEntries = A.empty() ? 4096 : A[0];
    if (A.size() > 1)
      return specDiag(Token, "tournament takes at most one argument");
  } else {
    return specDiag(Token, "unknown predictor name");
  }

  if (std::optional<Diag> D = validateDynConfig(C))
    return specDiag(Token, D->Message);
  return C;
}

} // namespace

Expected<std::vector<DynPredictorConfig>>
bpfree::parseDynamicSpec(const std::string &Spec) {
  std::vector<DynPredictorConfig> Panel;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    const size_t Plus = Spec.find('+', Pos);
    const std::string Token =
        Spec.substr(Pos, Plus == std::string::npos ? Plus : Plus - Pos);
    if (Token.empty())
      return Diag(ErrorKind::InvalidArgument,
                  "dynamic spec: empty predictor token in '" + Spec + "'");
    if (Token == "panel") {
      std::vector<DynPredictorConfig> Std = standardDynamicPanel();
      Panel.insert(Panel.end(), Std.begin(), Std.end());
    } else {
      Expected<DynPredictorConfig> C = parseToken(Token);
      if (!C)
        return C.takeError();
      Panel.push_back(C.takeValue());
    }
    if (Plus == std::string::npos)
      break;
    Pos = Plus + 1;
  }
  return Panel;
}
