//===- predict/Probability.cpp - Wu-Larus branch probabilities ------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Probability.h"

#include <algorithm>
#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

HeuristicPriors HeuristicPriors::paperTable3() {
  HeuristicPriors P;
  auto Set = [&](HeuristicKind K, double Hit) {
    P.HitRate[static_cast<size_t>(K)] = Hit;
  };
  // 1 - the paper's Table 3 mean miss rates.
  Set(HeuristicKind::Opcode, 0.84);
  Set(HeuristicKind::Loop, 0.75);
  Set(HeuristicKind::Call, 0.78);
  Set(HeuristicKind::Return, 0.72);
  Set(HeuristicKind::Guard, 0.62);
  Set(HeuristicKind::Store, 0.55);
  Set(HeuristicKind::Pointer, 0.59);
  P.LoopHitRate = 0.88;
  return P;
}

HeuristicPriors
HeuristicPriors::measured(const std::vector<BranchStats> &Stats) {
  HeuristicPriors P = paperTable3(); // fallback for uncovered heuristics
  std::array<uint64_t, NumHeuristics> Hits{}, Covered{};
  uint64_t LoopHits = 0, LoopTotal = 0;
  for (const BranchStats &S : Stats) {
    uint64_t T = S.total();
    if (T == 0)
      continue;
    if (S.IsLoopBranch) {
      LoopTotal += T;
      LoopHits += T - S.missesFor(S.LoopDir);
      continue;
    }
    for (HeuristicKind K : AllHeuristics) {
      if (!S.heuristicApplies(K))
        continue;
      size_t I = static_cast<size_t>(K);
      Covered[I] += T;
      Hits[I] += T - S.missesFor(S.heuristicDir(K));
    }
  }
  for (size_t I = 0; I < NumHeuristics; ++I)
    if (Covered[I] > 0)
      P.HitRate[I] = static_cast<double>(Hits[I]) /
                     static_cast<double>(Covered[I]);
  if (LoopTotal > 0)
    P.LoopHitRate = static_cast<double>(LoopHits) /
                    static_cast<double>(LoopTotal);
  // Clamp away 0/1 extremes: certainty saturates the D-S combination.
  for (double &H : P.HitRate)
    H = std::clamp(H, 0.02, 0.98);
  P.LoopHitRate = std::clamp(P.LoopHitRate, 0.02, 0.98);
  return P;
}

double bpfree::dsCombine(double P, double Q) {
  double Num = P * Q;
  double Den = Num + (1.0 - P) * (1.0 - Q);
  // Both certain in opposite directions: undefined; stay neutral.
  if (Den <= 0.0)
    return 0.5;
  return Num / Den;
}

double bpfree::takenProbability(uint8_t AppliesMask, uint8_t DirMask,
                                const HeuristicPriors &Priors) {
  double P = 0.5;
  for (unsigned H = 0; H < NumHeuristics; ++H) {
    if (!(AppliesMask & (1u << H)))
      continue;
    double Hit = Priors.HitRate[H];
    bool PredictsTaken = !(DirMask & (1u << H));
    P = dsCombine(P, PredictsTaken ? Hit : 1.0 - Hit);
  }
  return P;
}

double bpfree::takenProbability(const BranchStats &S,
                                const HeuristicPriors &Priors) {
  if (S.IsLoopBranch)
    return S.LoopDir == DirTaken ? Priors.LoopHitRate
                                 : 1.0 - Priors.LoopHitRate;
  return takenProbability(S.AppliesMask, S.DirMask, Priors);
}

double WuLarusPredictor::probability(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "probability of a non-branch");
  const FunctionContext &FC = Ctx.get(BB);
  if (FC.Loops.isLoopBranch(&BB)) {
    unsigned Pred = FC.Loops.predictLoopBranch(&BB);
    return Pred == 0 ? Priors.LoopHitRate : 1.0 - Priors.LoopHitRate;
  }
  auto [Applies, Dirs] = applyAllHeuristics(BB, FC, Config);
  return takenProbability(Applies, Dirs, Priors);
}

Direction WuLarusPredictor::predict(const BasicBlock &BB) const {
  double P = probability(BB);
  if (P > 0.5)
    return DirTaken;
  if (P < 0.5)
    return DirFallthru;
  return RandomPredictor::flip(BB, DefaultSeed);
}
