//===- predict/DynamicPredictors.h - Dynamic branch predictors --*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic baselines the static-heuristic literature measures
/// against: 2-bit saturating bimodal counters (Smith), the two-level
/// adaptive family GAg/GAp/PAg/PAp (Yeh & Patt), gshare (McFarling),
/// and a combining/tournament predictor (McFarling). Unlike the static
/// predictors (predict/Predictors.h), these are *stateful*: every
/// executed branch both consults and trains the tables, so a dynamic
/// predictor cannot be condensed into a per-block direction array and
/// replayed by the fused bit-row kernel — it needs the sequential
/// replay mode in ipbc/DynamicReplay.h.
///
/// Reference semantics follow SimpleScalar's bpred_* family so results
/// are comparable with the literature:
///
///  * 2-bit counters predict taken at >= 2, saturate at [0, 3], and are
///    initialized with SimpleScalar's flip-flop pattern — table entry i
///    starts weakly-not-taken (1) when i is even, weakly-taken (2) when
///    i is odd.
///  * Two-level: L1Entries history shift registers of HistoryBits bits
///    (initialized 0), selected by the low site bits; the second-level
///    counter index is the history *concatenated under* the site
///    (hist | site << HistoryBits), masked to the table size — so a
///    2^HistoryBits table is the shared-table *Ag shape and a larger
///    table gives each site (or site class) private rows, the *Ap
///    shape. gshare XORs the history with the site in the low
///    HistoryBits instead. History updates non-speculatively, after the
///    counter, exactly like bpred_update.
///  * Tournament: a 2-bit meta table (same init) chooses the two-level
///    component at >= 2, the bimodal component below; both components
///    always train, the meta trains only when they disagreed, toward
///    whichever was right.
///
/// Branch "addresses" are the module-wide flat block indices the trace
/// format already carries (vm/BranchTrace.h) — dense and collision-free,
/// the moral equivalent of SimpleScalar's (baddr >> MD_BR_SHIFT).
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_DYNAMICPREDICTORS_H
#define BPFREE_PREDICT_DYNAMICPREDICTORS_H

#include "support/Error.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bpfree {

/// The predictor families of the zoo.
enum class DynKind : uint8_t {
  Bimodal,    ///< per-site or tabled 2-bit saturating counters
  TwoLevel,   ///< GAg / GAp / PAg / PAp by (L1Entries, L2Entries)
  GShare,     ///< two-level with history XOR site indexing
  Tournament, ///< meta-chosen bimodal + two-level combination
};

/// One dynamic predictor configuration. Field meaning varies by Kind;
/// unused fields are ignored. All table sizes must be powers of two
/// (validateDynConfig), matching SimpleScalar's masking index math.
struct DynPredictorConfig {
  DynKind Kind = DynKind::Bimodal;

  /// Bimodal (and the tournament's bimodal component): counter-table
  /// entries. 0 = one counter per site — the alias-free limit, and the
  /// per-site-decomposable shape the sharded replay exploits.
  uint32_t Entries = 4096;

  /// Two-level family: first-level history registers. 1 = one global
  /// register (GAg/GAp); a power of two > 1 = per-address registers
  /// selected by the low site bits (PAg/PAp); 0 = one register AND one
  /// private counter row per site — the alias-free PAp limit
  /// (per-site-decomposable).
  uint32_t L1Entries = 1;
  /// History bits per register (the W of GAg(W) etc.).
  uint32_t HistoryBits = 12;
  /// Second-level counter entries; 0 = 1 << HistoryBits (the shared
  /// *Ag table). Larger tables keep site bits above the history and
  /// give the *Ap shapes.
  uint32_t L2Entries = 0;

  /// Tournament: meta-chooser entries.
  uint32_t MetaEntries = 4096;

  /// Compact display name, e.g. "bimodal[site]", "gshare[12]",
  /// "gag[12]", "pag[1024/10]", "tourn[4096]". Keys the bench tables
  /// and the manifest-facing reporting.
  std::string name() const;

  /// True when the predictor's state partitions by site — site A's
  /// outcome stream can never perturb site B's predictions — so its
  /// replay decomposes into independent per-site passes: Bimodal with
  /// Entries == 0, and TwoLevel with L1Entries == 0.
  bool perSiteDecomposable() const;
};

/// Checks \p C for structural soundness: power-of-two table sizes
/// within sane ceilings, history widths the index math supports, and
/// per-site-exact shapes narrow enough to allocate one row per site.
/// \returns the violation, or nullopt when the config is usable.
std::optional<Diag> validateDynConfig(const DynPredictorConfig &C);

/// A dynamic predictor instance over \p NumSites branch sites. The one
/// operation is the sequential step the replay loop and the tests
/// share: predict the next outcome of \p Site, then train on what the
/// branch actually did, returning the (pre-update) prediction.
///
/// Not thread-safe in general; for perSiteDecomposable() configs,
/// concurrent calls for DIFFERENT sites touch disjoint state and are
/// safe — that is precisely what the sharded replay relies on.
class DynamicPredictor {
public:
  /// \p C must satisfy validateDynConfig. \p NumSites is the module's
  /// flat block count (sites are flat block indices below it).
  DynamicPredictor(const DynPredictorConfig &C, uint32_t NumSites);

  const DynPredictorConfig &config() const { return Cfg; }

  /// One sequential step: \returns the prediction for \p Site (true =
  /// taken), then updates counters and history with \p Taken.
  bool predictAndUpdate(uint32_t Site, bool Taken);

  /// Restores the freshly-constructed table state.
  void reset();

private:
  DynPredictorConfig Cfg;
  uint32_t NumSites;
  // Bimodal component (Bimodal and Tournament kinds).
  std::vector<uint8_t> BimCounters;
  uint32_t BimMask = 0; ///< table mask; per-site shape indexes by site
  // Two-level component (TwoLevel, GShare, Tournament kinds).
  std::vector<uint32_t> Hist;
  std::vector<uint8_t> L2Counters;
  uint32_t L1Mask = 0;
  uint32_t HistMask = 0;
  uint32_t L2Mask = 0;
  bool PerSiteExact = false; ///< L1Entries == 0: private row per site
  bool Xor = false;          ///< gshare indexing
  // Tournament meta chooser.
  std::vector<uint8_t> Meta;
  uint32_t MetaMask = 0;

  bool bimodalPredict(uint32_t Site) const;
  void bimodalUpdate(uint32_t Site, bool Taken);
  bool twoLevelPredict(uint32_t Site) const;
  void twoLevelUpdate(uint32_t Site, bool Taken);
  size_t l2Index(uint32_t Site) const;
};

/// The standard panel the benches and the `--dynamic panel` CLI mode
/// evaluate: per-site and tabled bimodal, gshare, GAg and PAg two-level,
/// a per-site-exact PAp, and the tournament — the baselines named by the
/// dynamic-prediction surveys, covering both replay modes (the per-site
/// sharded path and the sequential global-history path).
std::vector<DynPredictorConfig> standardDynamicPanel();

/// Parses a CLI panel spec: '+'-separated predictor tokens, each
/// NAME[:ARGS] with integer (or "site") arguments —
///
///   bimodal[:ENTRIES|:site]      tabled (default 4096) or per-site
///   gshare[:W[,L2]]              default W=12, L2 = 1<<W
///   gag:W / gap:W,L2             global-history two-level
///   pag:L1,W / pap:L1,W,L2       per-address two-level
///   pap:site,W                   alias-free per-site-exact PAp
///   2lev:L1,W,L2                 the generic Yeh-Patt shape
///   tournament[:META]            bimodal[4096] + gag[12] combination
///   panel                        the whole standardDynamicPanel()
///
/// e.g. "bimodal:site+gshare:14+tournament". Every parsed config is
/// validated; the first malformed token or invalid config yields a Diag.
Expected<std::vector<DynPredictorConfig>>
parseDynamicSpec(const std::string &Spec);

} // namespace bpfree

#endif // BPFREE_PREDICT_DYNAMICPREDICTORS_H
