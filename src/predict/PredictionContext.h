//===- predict/PredictionContext.h - Cached per-function analyses -*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heuristics need three analyses per function — dominators,
/// postdominators, and natural loops. PredictionContext computes and
/// caches them for every function of a module so predictors and the
/// evaluation harness can share one set.
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_PREDICTIONCONTEXT_H
#define BPFREE_PREDICT_PREDICTIONCONTEXT_H

#include "analysis/DomTree.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"

#include <memory>
#include <vector>

namespace bpfree {

/// Analyses for one function.
struct FunctionContext {
  const ir::Function *F;
  DomTree Dom;
  DomTree PostDom;
  LoopInfo Loops;

  explicit FunctionContext(const ir::Function &Fn)
      : F(&Fn), Dom(DomTree::computeDominators(Fn)),
        PostDom(DomTree::computePostDominators(Fn)), Loops(Fn, Dom) {}
};

/// Analyses for every function of a module.
class PredictionContext {
public:
  explicit PredictionContext(const ir::Module &M) : M(&M) {
    Funcs.reserve(M.numFunctions());
    for (const auto &F : M)
      Funcs.push_back(std::make_unique<FunctionContext>(*F));
  }

  const ir::Module &getModule() const { return *M; }

  const FunctionContext &get(const ir::Function &F) const {
    return *Funcs[F.getIndex()];
  }

  const FunctionContext &get(const ir::BasicBlock &BB) const {
    return get(*BB.getParent());
  }

private:
  const ir::Module *M;
  std::vector<std::unique_ptr<FunctionContext>> Funcs;
};

} // namespace bpfree

#endif // BPFREE_PREDICT_PREDICTIONCONTEXT_H
