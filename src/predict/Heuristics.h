//===- predict/Heuristics.h - Ball-Larus non-loop heuristics ---*- C++ -*-===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's seven heuristics for predicting non-loop branches
/// (Section 4). Each heuristic examines a conditional branch and either
/// declines or predicts one of its two outgoing edges. The successor-
/// property heuristics (Loop, Call, Return, Guard, Store) follow the
/// paper's rule: "If neither successor has the selection property or
/// both have the property, no prediction is made. If exactly one
/// successor has the property, the predictor chooses either the
/// successor with the property, or the successor without the property,
/// depending on the heuristic."
///
//===----------------------------------------------------------------------===//

#ifndef BPFREE_PREDICT_HEURISTICS_H
#define BPFREE_PREDICT_HEURISTICS_H

#include "predict/PredictionContext.h"

#include <array>
#include <optional>
#include <string>

namespace bpfree {

/// A branch direction: index of the predicted successor.
enum Direction : unsigned {
  DirTaken = 0,    ///< the branch's target successor
  DirFallthru = 1, ///< the branch's fall-thru successor
};

/// The seven non-loop heuristics, in the paper's Table 3 column order.
enum class HeuristicKind : unsigned {
  Opcode = 0, ///< blez/bltz not taken, bgtz/bgez taken, FP-eq false
  Loop,       ///< prefer the successor that enters a loop
  Call,       ///< avoid the successor that performs a call
  Return,     ///< avoid the successor that returns
  Guard,      ///< prefer the successor using the guarded value
  Store,      ///< avoid the successor that stores
  Pointer,    ///< pointer==null / ptr==ptr false, ptr!=... true
};

constexpr unsigned NumHeuristics = 7;

/// All heuristics in enum order, for iteration.
constexpr std::array<HeuristicKind, NumHeuristics> AllHeuristics = {
    HeuristicKind::Opcode, HeuristicKind::Loop,  HeuristicKind::Call,
    HeuristicKind::Return, HeuristicKind::Guard, HeuristicKind::Store,
    HeuristicKind::Pointer};

/// \returns the paper's Table 3 column name for \p K: "Opcode", "Loop",
/// "Call", "Return", "Guard", "Store" — and "Point" (not "Pointer") for
/// HeuristicKind::Pointer, the paper's abbreviation. These strings are a
/// stable external interface: the explain layer keys its
/// bpfree-explain-v1 JSON buckets by them, so renaming one is a schema
/// change. heuristicFromName() inverts the mapping.
const char *heuristicName(HeuristicKind K);

/// Inverse of heuristicName: \returns the kind whose stable name is
/// \p Name ("Point" for Pointer), or nullopt for an unknown string.
std::optional<HeuristicKind> heuristicFromName(const std::string &Name);

/// Knobs for the heuristic variants studied in the benches.
struct HeuristicConfig {
  /// Paper's pointer-heuristic refinement: loads addressed off GP are
  /// not considered pointer loads (globals use direct GP addressing).
  /// Disabling this is the bench_table3 ablation.
  bool PointerGpFilter = true;

  /// Extension (paper Section 4.3): use the frontend's pointer-compare
  /// type annotation instead of the load-pattern match.
  bool PointerUseTypeInfo = false;

  /// Extension (paper Section 4.4 "Generalizations"): how many blocks
  /// deep the Guard heuristic searches for a use of the branch operand.
  /// 1 = the paper's formulation (the successor block only).
  unsigned GuardSearchDepth = 1;
};

/// Applies heuristic \p K to the conditional branch terminating \p BB.
/// \returns the predicted direction, or nullopt when the heuristic does
/// not apply. \p BB must end in a conditional branch.
std::optional<Direction> applyHeuristic(HeuristicKind K,
                                        const ir::BasicBlock &BB,
                                        const FunctionContext &Ctx,
                                        const HeuristicConfig &Config = {});

/// Applies every heuristic at once. \returns a pair (AppliesMask,
/// DirMask): bit K of AppliesMask is set when heuristic K applies, and
/// bit K of DirMask then holds its predicted direction (1 = fall-thru).
std::pair<uint8_t, uint8_t>
applyAllHeuristics(const ir::BasicBlock &BB, const FunctionContext &Ctx,
                   const HeuristicConfig &Config = {});

} // namespace bpfree

#endif // BPFREE_PREDICT_HEURISTICS_H
