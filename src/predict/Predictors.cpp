//===- predict/Predictors.cpp - Static branch predictors ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Predictors.h"

#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

StaticPredictor::~StaticPredictor() = default;

HeuristicOrder bpfree::paperOrder() {
  return {HeuristicKind::Pointer, HeuristicKind::Call,
          HeuristicKind::Opcode,  HeuristicKind::Return,
          HeuristicKind::Store,   HeuristicKind::Loop,
          HeuristicKind::Guard};
}

std::string bpfree::orderToString(const HeuristicOrder &Order) {
  std::string S;
  for (HeuristicKind K : Order) {
    if (!S.empty())
      S += '>';
    S += heuristicName(K);
  }
  return S;
}

Direction PerfectPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  const EdgeProfile::Counts &C = Profile.get(BB);
  return C.Taken >= C.Fallthru ? DirTaken : DirFallthru;
}

Direction AlwaysTakenPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  return DirTaken;
}

Direction AlwaysFallthruPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  return DirFallthru;
}

Direction RandomPredictor::flip(const BasicBlock &BB, uint64_t Seed) {
  uint64_t Key = (static_cast<uint64_t>(BB.getParent()->getIndex()) << 32) |
                 BB.getId();
  return (Rng::splitmix64(Key ^ Seed) & 1) ? DirTaken : DirFallthru;
}

Direction RandomPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  return flip(BB, Seed);
}

Direction BallLarusPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  const FunctionContext &FC = Ctx.get(BB);

  // Loop branches get the loop predictor (Section 3).
  if (FC.Loops.isLoopBranch(&BB))
    return FC.Loops.predictLoopBranch(&BB) == 0 ? DirTaken : DirFallthru;

  // Non-loop branches: first applicable heuristic in priority order.
  for (HeuristicKind K : Order)
    if (std::optional<Direction> D = applyHeuristic(K, BB, FC, Config))
      return *D;

  switch (Default) {
  case DefaultPolicy::Random:
    return RandomPredictor::flip(BB, DefaultSeed);
  case DefaultPolicy::Taken:
    return DirTaken;
  case DefaultPolicy::Fallthru:
    return DirFallthru;
  }
  return DirTaken;
}

std::optional<HeuristicKind>
BallLarusPredictor::responsibleHeuristic(const BasicBlock &BB) const {
  const FunctionContext &FC = Ctx.get(BB);
  if (FC.Loops.isLoopBranch(&BB))
    return std::nullopt;
  for (HeuristicKind K : Order)
    if (applyHeuristic(K, BB, FC, Config))
      return K;
  return std::nullopt;
}

Direction SingleHeuristicPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  const FunctionContext &FC = Ctx.get(BB);
  if (std::optional<Direction> D = applyHeuristic(K, BB, FC, Config))
    return *D;
  return RandomPredictor::flip(BB, Seed);
}

std::string SingleHeuristicPredictor::name() const {
  return std::string("H:") + heuristicName(K);
}

Direction LoopRandPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  const FunctionContext &FC = Ctx.get(BB);
  if (FC.Loops.isLoopBranch(&BB))
    return FC.Loops.predictLoopBranch(&BB) == 0 ? DirTaken : DirFallthru;
  return RandomPredictor::flip(BB, Seed);
}
