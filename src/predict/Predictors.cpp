//===- predict/Predictors.cpp - Static branch predictors ------------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Predictors.h"

#include "predict/Provenance.h"

#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

StaticPredictor::~StaticPredictor() = default;

HeuristicOrder bpfree::paperOrder() {
  return {HeuristicKind::Pointer, HeuristicKind::Call,
          HeuristicKind::Opcode,  HeuristicKind::Return,
          HeuristicKind::Store,   HeuristicKind::Loop,
          HeuristicKind::Guard};
}

std::string bpfree::orderToString(const HeuristicOrder &Order) {
  std::string S;
  for (HeuristicKind K : Order) {
    if (!S.empty())
      S += '>';
    S += heuristicName(K);
  }
  return S;
}

Direction PerfectPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  const EdgeProfile::Counts &C = Profile.get(BB);
  return C.Taken >= C.Fallthru ? DirTaken : DirFallthru;
}

Direction AlwaysTakenPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  return DirTaken;
}

Direction AlwaysFallthruPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  return DirFallthru;
}

Direction RandomPredictor::flip(const BasicBlock &BB, uint64_t Seed) {
  uint64_t Key = (static_cast<uint64_t>(BB.getParent()->getIndex()) << 32) |
                 BB.getId();
  return (Rng::splitmix64(Key ^ Seed) & 1) ? DirTaken : DirFallthru;
}

Direction RandomPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  return flip(BB, Seed);
}

Direction BallLarusPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  const FunctionContext &FC = Ctx.get(BB);
  if (Sink) [[unlikely]]
    return predictRecording(BB, FC);

  // Loop branches get the loop predictor (Section 3).
  if (FC.Loops.isLoopBranch(&BB))
    return FC.Loops.predictLoopBranch(&BB) == 0 ? DirTaken : DirFallthru;

  // Non-loop branches: first applicable heuristic in priority order.
  for (HeuristicKind K : Order)
    if (std::optional<Direction> D = applyHeuristic(K, BB, FC, Config))
      return *D;

  switch (Default) {
  case DefaultPolicy::Random:
    return RandomPredictor::flip(BB, DefaultSeed);
  case DefaultPolicy::Taken:
    return DirTaken;
  case DefaultPolicy::Fallthru:
    return DirFallthru;
  }
  return DirTaken;
}

/// The sink-attached twin of predict(): the same decision procedure,
/// but it narrates — which rule decided, who declined first, and what
/// else would have applied. Kept as a separate function so the common
/// sink-less path above stays a pure early-exit cascade.
Direction
BallLarusPredictor::predictRecording(const BasicBlock &BB,
                                     const FunctionContext &FC) const {
  BranchProvenance P;
  P.BB = &BB;
  if (BB.hasTerminator())
    P.SrcLine = BB.terminator().SrcLine;
  P.AppliesMask = applyAllHeuristics(BB, FC, Config).first;
  P.IsLoopBranch = FC.Loops.isLoopBranch(&BB);

  if (P.IsLoopBranch) {
    P.Bucket = LoopBucket;
    P.Priority = -1; // not decided by the ordered cascade
    P.Chosen =
        FC.Loops.predictLoopBranch(&BB) == 0 ? DirTaken : DirFallthru;
    Sink->onPrediction(P);
    return P.Chosen;
  }

  int Pos = 0;
  for (HeuristicKind K : Order) {
    if (std::optional<Direction> D = applyHeuristic(K, BB, FC, Config)) {
      P.Bucket = static_cast<unsigned>(K);
      P.Priority = Pos;
      P.Chosen = *D;
      Sink->onPrediction(P);
      return P.Chosen;
    }
    P.DeclinedMask |= static_cast<uint8_t>(1u << static_cast<unsigned>(K));
    ++Pos;
  }

  P.Bucket = DefaultBucket;
  P.Priority = -1; // every heuristic declined; no cascade position
  switch (Default) {
  case DefaultPolicy::Random:
    P.Chosen = RandomPredictor::flip(BB, DefaultSeed);
    break;
  case DefaultPolicy::Taken:
    P.Chosen = DirTaken;
    break;
  case DefaultPolicy::Fallthru:
    P.Chosen = DirFallthru;
    break;
  }
  Sink->onPrediction(P);
  return P.Chosen;
}

std::optional<HeuristicKind>
BallLarusPredictor::responsibleHeuristic(const BasicBlock &BB) const {
  const FunctionContext &FC = Ctx.get(BB);
  if (FC.Loops.isLoopBranch(&BB))
    return std::nullopt;
  for (HeuristicKind K : Order)
    if (applyHeuristic(K, BB, FC, Config))
      return K;
  return std::nullopt;
}

Direction SingleHeuristicPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  const FunctionContext &FC = Ctx.get(BB);
  std::optional<Direction> D = applyHeuristic(K, BB, FC, Config);
  const Direction Chosen = D ? *D : RandomPredictor::flip(BB, Seed);
  if (Sink) [[unlikely]] {
    BranchProvenance P;
    P.BB = &BB;
    if (BB.hasTerminator())
      P.SrcLine = BB.terminator().SrcLine;
    P.IsLoopBranch = FC.Loops.isLoopBranch(&BB);
    P.AppliesMask = applyAllHeuristics(BB, FC, Config).first;
    if (D) {
      P.Bucket = static_cast<unsigned>(K);
      // Priority stays -1: there is no cascade here, so "position 0"
      // would be indistinguishable from the combined predictor's
      // top-priority heuristic in attribution reports.
      P.Priority = -1;
    } else {
      P.Bucket = DefaultBucket;
      P.Priority = -1;
      P.DeclinedMask =
          static_cast<uint8_t>(1u << static_cast<unsigned>(K));
    }
    P.Chosen = Chosen;
    Sink->onPrediction(P);
  }
  return Chosen;
}

std::string SingleHeuristicPredictor::name() const {
  return std::string("H:") + heuristicName(K);
}

Direction LoopRandPredictor::predict(const BasicBlock &BB) const {
  assert(BB.isCondBranch() && "predicting a non-branch");
  const FunctionContext &FC = Ctx.get(BB);
  if (FC.Loops.isLoopBranch(&BB))
    return FC.Loops.predictLoopBranch(&BB) == 0 ? DirTaken : DirFallthru;
  return RandomPredictor::flip(BB, Seed);
}
