//===- predict/Heuristics.cpp - Ball-Larus non-loop heuristics ------------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Heuristics.h"

#include "support/Error.h"

#include <cassert>

using namespace bpfree;
using namespace bpfree::ir;

const char *bpfree::heuristicName(HeuristicKind K) {
  switch (K) {
  case HeuristicKind::Opcode:
    return "Opcode";
  case HeuristicKind::Loop:
    return "Loop";
  case HeuristicKind::Call:
    return "Call";
  case HeuristicKind::Return:
    return "Return";
  case HeuristicKind::Guard:
    return "Guard";
  case HeuristicKind::Store:
    return "Store";
  case HeuristicKind::Pointer:
    return "Point";
  }
  reportFatalError("unknown heuristic kind");
}

std::optional<HeuristicKind>
bpfree::heuristicFromName(const std::string &Name) {
  for (HeuristicKind K : AllHeuristics)
    if (Name == heuristicName(K))
      return K;
  return std::nullopt;
}

namespace {

/// Maximum unconditional-jump chain length followed by the "passes
/// control unconditionally to" relation; bounds work and guards against
/// jump-only cycles.
constexpr unsigned MaxJumpChain = 8;

/// Resolves a per-successor property with the paper's exactly-one rule.
/// \p PredictWith selects whether the successor with the property (true)
/// or without it (false) is predicted.
std::optional<Direction> exactlyOne(bool TakenHas, bool FallthruHas,
                                    bool PredictWith) {
  if (TakenHas == FallthruHas)
    return std::nullopt;
  bool PickTaken = TakenHas == PredictWith;
  return PickTaken ? DirTaken : DirFallthru;
}

/// \returns the last FP compare in \p BB, which set the flag a trailing
/// bc1t/bc1f reads, or nullptr.
const Instruction *findFlagSetter(const BasicBlock &BB) {
  for (auto It = BB.instructions().rbegin(), E = BB.instructions().rend();
       It != E; ++It)
    if (isFCmp(It->Op))
      return &*It;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Opcode heuristic
//===----------------------------------------------------------------------===//

std::optional<Direction> opcodeHeuristic(const BasicBlock &BB) {
  const Terminator &T = BB.terminator();
  switch (T.BOp) {
  case BranchOp::BLTZ:
  case BranchOp::BLEZ:
    // "Many programs use negative integers to denote error values":
    // predict the < 0 / <= 0 test fails.
    return DirFallthru;
  case BranchOp::BGTZ:
  case BranchOp::BGEZ:
    return DirTaken;
  case BranchOp::BC1T:
  case BranchOp::BC1F: {
    // FP equality tests "usually evaluate false".
    const Instruction *Cmp = findFlagSetter(BB);
    if (!Cmp || Cmp->Op != Opcode::FCmpEq)
      return std::nullopt;
    return T.BOp == BranchOp::BC1T ? DirFallthru : DirTaken;
  }
  case BranchOp::BEQ:
  case BranchOp::BNE:
    return std::nullopt;
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Successor-property heuristics: Loop, Call, Return, Store
//===----------------------------------------------------------------------===//

/// True if \p S is a loop head or a loop preheader (passes control
/// unconditionally to a loop head it dominates).
bool loopProperty(const BasicBlock &BB, const BasicBlock &S,
                  const FunctionContext &Ctx) {
  if (Ctx.PostDom.dominates(&S, &BB))
    return false;
  return Ctx.Loops.isLoopHead(&S) || Ctx.Loops.isPreheader(&S, Ctx.Dom);
}

/// True if \p S contains a call, or unconditionally passes control to a
/// block containing a call that \p S dominates; and does not
/// postdominate the branch.
bool callProperty(const BasicBlock &BB, const BasicBlock &S,
                  const FunctionContext &Ctx) {
  if (Ctx.PostDom.dominates(&S, &BB))
    return false;
  if (S.containsCall())
    return true;
  const BasicBlock *Cur = &S;
  for (unsigned Hops = 0; Hops < MaxJumpChain; ++Hops) {
    if (!Cur->isUnconditionalJump())
      return false;
    Cur = Cur->getSuccessor(0);
    if (Cur->containsCall())
      return Ctx.Dom.dominates(&S, Cur);
  }
  return false;
}

/// True if \p S contains a return or unconditionally passes control to a
/// block that contains a return.
bool returnProperty(const BasicBlock &S) {
  const BasicBlock *Cur = &S;
  for (unsigned Hops = 0; Hops <= MaxJumpChain; ++Hops) {
    if (Cur->isReturnBlock())
      return true;
    if (!Cur->isUnconditionalJump())
      return false;
    Cur = Cur->getSuccessor(0);
  }
  return false;
}

/// True if \p S contains a store and does not postdominate the branch.
bool storeProperty(const BasicBlock &BB, const BasicBlock &S,
                   const FunctionContext &Ctx) {
  return S.containsStore() && !Ctx.PostDom.dominates(&S, &BB);
}

//===----------------------------------------------------------------------===//
// Guard heuristic
//===----------------------------------------------------------------------===//

/// Collects the registers the branch conditions on: the integer branch
/// operands, or — for flag branches — the operands of the FP compare
/// that set the flag (the paper's guard heuristic "analyzes both integer
/// and floating point branches"). Dedicated registers (zero/SP/GP) are
/// never guard candidates.
void collectBranchOperands(const BasicBlock &BB, std::vector<Reg> &Out) {
  const Terminator &T = BB.terminator();
  if (isFlagBranch(T.BOp)) {
    if (const Instruction *Cmp = findFlagSetter(BB)) {
      Out.push_back(Cmp->SrcA);
      Out.push_back(Cmp->SrcB);
    }
  } else {
    T.appendUses(Out);
  }
  std::erase_if(Out, [](Reg R) { return !R.isValid() || isDedicatedReg(R); });
}

/// True if \p S uses \p R before (re)defining it. Terminator operands
/// count as uses when nothing in the block redefines \p R first.
bool usesBeforeDef(const BasicBlock &S, Reg R) {
  std::vector<Reg> Uses;
  for (const Instruction &I : S.instructions()) {
    Uses.clear();
    I.appendUses(Uses);
    for (Reg U : Uses)
      if (U == R)
        return true;
    if (I.def() == R)
      return false;
  }
  Uses.clear();
  if (S.hasTerminator())
    S.terminator().appendUses(Uses);
  for (Reg U : Uses)
    if (U == R)
      return true;
  return false;
}

/// Depth-limited variant for the generalized guard extension: searches
/// \p S and, while \p R stays undefined, its successors up to \p Depth
/// blocks from the branch. Depth 1 is the paper's formulation.
bool usesBeforeDefDeep(const BasicBlock &S, Reg R, unsigned Depth) {
  if (usesBeforeDef(S, R))
    return true;
  if (Depth <= 1)
    return false;
  // Only continue past S if S does not redefine R.
  for (const Instruction &I : S.instructions())
    if (I.def() == R)
      return false;
  for (unsigned I = 0, E = S.hasTerminator() ? S.numSuccessors() : 0; I != E;
       ++I)
    if (usesBeforeDefDeep(*S.getSuccessor(I), R, Depth - 1))
      return true;
  return false;
}

bool guardProperty(const BasicBlock &BB, const BasicBlock &S,
                   const FunctionContext &Ctx,
                   const std::vector<Reg> &Operands, unsigned Depth) {
  if (Ctx.PostDom.dominates(&S, &BB))
    return false;
  for (Reg R : Operands)
    if (usesBeforeDefDeep(S, R, Depth))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Pointer heuristic
//===----------------------------------------------------------------------===//

/// True if \p R is defined within \p BB by a load whose base register is
/// acceptable as a pointer load (not GP-relative when the filter is on),
/// with no call between that load and the end of the block.
bool regIsPointerLoad(const BasicBlock &BB, Reg R, bool GpFilter) {
  // Walk forward remembering the last definition of R and the last call.
  int DefIdx = -1;
  bool DefIsPointerLoad = false;
  int LastCallIdx = -1;
  const auto &Insts = BB.instructions();
  for (int I = 0; I < static_cast<int>(Insts.size()); ++I) {
    const Instruction &Inst = Insts[I];
    if (Inst.isCall())
      LastCallIdx = I;
    if (Inst.def() == R) {
      DefIdx = I;
      DefIsPointerLoad =
          Inst.isLoad() && !(GpFilter && Inst.SrcA == GpReg);
    }
  }
  // "The heuristic does not apply if there is a call instruction between
  // the load and the branch."
  return DefIdx >= 0 && DefIsPointerLoad && LastCallIdx <= DefIdx;
}

std::optional<Direction> pointerHeuristic(const BasicBlock &BB,
                                          const HeuristicConfig &Config) {
  const Terminator &T = BB.terminator();
  if (T.BOp != BranchOp::BEQ && T.BOp != BranchOp::BNE)
    return std::nullopt;

  // Equality is predicted false: beq falls through, bne is taken.
  Direction EqualityFalse =
      T.BOp == BranchOp::BEQ ? DirFallthru : DirTaken;

  if (Config.PointerUseTypeInfo)
    return T.PointerCompare ? std::optional<Direction>(EqualityFalse)
                            : std::nullopt;

  // Opcode-pattern match: "load rM ... beq r0, rM" (null test) or
  // "load rM; load rN ... beq rM, rN" (pointer equality).
  Reg A = T.Lhs, B = T.Rhs;
  if (A == ZeroReg && B == ZeroReg)
    return std::nullopt;
  if (A == ZeroReg)
    std::swap(A, B);
  if (!regIsPointerLoad(BB, A, Config.PointerGpFilter))
    return std::nullopt;
  if (B != ZeroReg && !regIsPointerLoad(BB, B, Config.PointerGpFilter))
    return std::nullopt;
  return EqualityFalse;
}

} // namespace

std::optional<Direction> bpfree::applyHeuristic(HeuristicKind K,
                                                const BasicBlock &BB,
                                                const FunctionContext &Ctx,
                                                const HeuristicConfig &Config) {
  assert(BB.isCondBranch() && "heuristics apply to conditional branches");
  const Terminator &T = BB.terminator();
  const BasicBlock &STaken = *T.Taken;
  const BasicBlock &SFall = *T.Fallthru;

  switch (K) {
  case HeuristicKind::Opcode:
    return opcodeHeuristic(BB);
  case HeuristicKind::Loop:
    return exactlyOne(loopProperty(BB, STaken, Ctx),
                      loopProperty(BB, SFall, Ctx),
                      /*PredictWith=*/true);
  case HeuristicKind::Call:
    return exactlyOne(callProperty(BB, STaken, Ctx),
                      callProperty(BB, SFall, Ctx),
                      /*PredictWith=*/false);
  case HeuristicKind::Return:
    return exactlyOne(returnProperty(STaken), returnProperty(SFall),
                      /*PredictWith=*/false);
  case HeuristicKind::Guard: {
    std::vector<Reg> Operands;
    collectBranchOperands(BB, Operands);
    if (Operands.empty())
      return std::nullopt;
    unsigned Depth = Config.GuardSearchDepth ? Config.GuardSearchDepth : 1;
    return exactlyOne(guardProperty(BB, STaken, Ctx, Operands, Depth),
                      guardProperty(BB, SFall, Ctx, Operands, Depth),
                      /*PredictWith=*/true);
  }
  case HeuristicKind::Store:
    return exactlyOne(storeProperty(BB, STaken, Ctx),
                      storeProperty(BB, SFall, Ctx),
                      /*PredictWith=*/false);
  case HeuristicKind::Pointer:
    return pointerHeuristic(BB, Config);
  }
  reportFatalError("unknown heuristic kind");
}

std::pair<uint8_t, uint8_t>
bpfree::applyAllHeuristics(const BasicBlock &BB, const FunctionContext &Ctx,
                           const HeuristicConfig &Config) {
  uint8_t AppliesMask = 0, DirMask = 0;
  for (HeuristicKind K : AllHeuristics) {
    if (std::optional<Direction> D = applyHeuristic(K, BB, Ctx, Config)) {
      unsigned Bit = static_cast<unsigned>(K);
      AppliesMask |= static_cast<uint8_t>(1u << Bit);
      if (*D == DirFallthru)
        DirMask |= static_cast<uint8_t>(1u << Bit);
    }
  }
  return {AppliesMask, DirMask};
}
