//===- examples/predict_tool.cpp - Branch-prediction listing tool ---------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiler-pass-style tool: given a MiniC source file (or a named
/// suite workload with `-w NAME`), print every function with each
/// conditional branch annotated by its classification (loop/non-loop),
/// the responsible heuristic, and the predicted direction — the
/// information a compiler would use for code layout or scheduling.
/// With `--check`, also run the program's reference dataset and report
/// per-branch accuracy.
///
///   $ predict_tool program.mc
///   $ predict_tool -w treesort --check
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/Printer.h"
#include "predict/Evaluation.h"
#include "support/TablePrinter.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace bpfree;

namespace {

int usage() {
  std::cerr << "usage: predict_tool [--check] (FILE.mc | -w WORKLOAD)\n"
               "  --check      run the program and score each prediction\n"
               "  -w WORKLOAD  use a suite workload instead of a file\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  bool Check = false;
  std::string File, WorkloadName;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--check") {
      Check = true;
    } else if (Arg == "-w" && I + 1 < argc) {
      WorkloadName = argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      File = Arg;
    }
  }

  std::string Source;
  Dataset Data;
  if (!WorkloadName.empty()) {
    const Workload *W = findWorkload(WorkloadName);
    if (!W) {
      std::cerr << "unknown workload '" << WorkloadName << "'; available:";
      for (const Workload &Each : workloadSuite())
        std::cerr << " " << Each.Name;
      std::cerr << "\n";
      return 2;
    }
    Source = W->Source;
    Data = W->Datasets[0];
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::cerr << "cannot open '" << File << "'\n";
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  } else {
    return usage();
  }

  auto M = minic::compile(Source);
  if (!M) {
    std::cerr << "compile error: " << M.error().render() << "\n";
    return 1;
  }

  // Optional execution for accuracy checking.
  EdgeProfile Profile(**M);
  if (Check) {
    Interpreter Interp(**M);
    RunResult R = Interp.run(Data, {&Profile});
    if (!R.ok()) {
      std::cerr << "run failed: " << R.TrapMessage << "\n";
      return 1;
    }
  }

  PredictionContext Ctx(**M);
  BallLarusPredictor Heuristic(Ctx);

  size_t LoopBranches = 0, NonLoop = 0, DefaultPredicted = 0;
  for (const auto &F : **M) {
    bool PrintedHeader = false;
    for (const auto &BB : *F) {
      if (!BB->isCondBranch())
        continue;
      if (!PrintedHeader) {
        std::cout << "function " << F->getName() << ":\n";
        PrintedHeader = true;
      }
      const FunctionContext &FC = Ctx.get(*F);
      bool IsLoop = FC.Loops.isLoopBranch(BB.get());
      auto Responsible = Heuristic.responsibleHeuristic(*BB);
      Direction D = Heuristic.predict(*BB);
      IsLoop ? ++LoopBranches : ++NonLoop;
      if (!IsLoop && !Responsible)
        ++DefaultPredicted;

      std::cout << "  " << BB->getName() << "." << BB->getId() << "  "
                << ir::branchOpName(BB->terminator().BOp) << "  ["
                << (IsLoop ? "loop"
                           : Responsible ? heuristicName(*Responsible)
                                         : "default")
                << "] predict "
                << (D == DirTaken ? "taken   " : "fall-thru");
      if (Check) {
        const EdgeProfile::Counts &C = Profile.get(*BB);
        if (C.total() == 0) {
          std::cout << "  (never executed)";
        } else {
          uint64_t Right = D == DirTaken ? C.Taken : C.Fallthru;
          std::cout << "  (" << C.total() << " execs, "
                    << 100 * Right / C.total() << "% right)";
        }
      }
      std::cout << "\n";
    }
  }

  std::cout << "\nSummary: " << LoopBranches << " loop branches, "
            << NonLoop << " non-loop branches (" << DefaultPredicted
            << " fell to the default).\n";

  if (Check) {
    std::vector<BranchStats> Stats = collectBranchStats(Ctx, Profile);
    CombinedResult C = computeCombined(Stats);
    std::cout << "Dynamic miss rates: all branches "
              << TablePrinter::formatPercent(C.AllMiss.rate())
              << "%, perfect "
              << TablePrinter::formatPercent(C.AllPerfectMiss.rate())
              << "%, non-loop "
              << TablePrinter::formatPercent(C.NonLoopMiss.rate())
              << "% (coverage "
              << TablePrinter::formatPercent(C.coverage()) << "%).\n";
  }
  return 0;
}
