//===- examples/trace_explorer.cpp - IPBC / run-length explorer -----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explores the Section 6 measurement interactively: runs a suite
/// workload under the trace collector with three predictors and prints
/// miss rates, IPBC averages, dividing lengths, and a textual
/// cumulative run-length plot — a per-program Graph 4.
///
///   $ trace_explorer treesort
///   $ trace_explorer circuit 1      (dataset index 1)
///
//===----------------------------------------------------------------------===//

#include "ipbc/SequenceAnalysis.h"
#include "support/TablePrinter.h"
#include "vm/Interpreter.h"
#include "workloads/Driver.h"

#include <cstdlib>
#include <iostream>

using namespace bpfree;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_explorer WORKLOAD [DATASET_INDEX]\n"
                 "workloads:";
    for (const Workload &W : workloadSuite())
      std::cerr << " " << W.Name;
    std::cerr << "\n";
    return 2;
  }
  const Workload *W = findWorkload(argv[1]);
  if (!W) {
    std::cerr << "unknown workload '" << argv[1] << "'\n";
    return 2;
  }
  size_t DatasetIdx = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
  if (DatasetIdx >= W->Datasets.size()) {
    std::cerr << "dataset index out of range (have "
              << W->Datasets.size() << ")\n";
    return 2;
  }

  std::cout << "Profiling " << W->Name << " on dataset '"
            << W->Datasets[DatasetIdx].Name << "'...\n";
  auto RunOrErr = runWorkload(*W, DatasetIdx);
  if (!RunOrErr) {
    std::cerr << "profiling run failed: "
              << RunOrErr.error().renderWithKind() << "\n";
    return 1;
  }
  auto Run = RunOrErr.takeValue();

  PerfectPredictor Perfect(*Run->Profile);
  BallLarusPredictor Heuristic(*Run->Ctx);
  LoopRandPredictor LoopRand(*Run->Ctx);
  SequenceCollector Collector(*Run->M,
                              {&LoopRand, &Heuristic, &Perfect});
  Interpreter Interp(*Run->M);
  RunResult R = Interp.run(Run->dataset(), {&Collector});
  if (!R.ok()) {
    std::cerr << "trace run failed: "
              << (R.Trap ? R.Trap->render() : R.TrapMessage) << "\n";
    return 1;
  }
  Collector.finalize(R.InstrCount);

  std::cout << "Executed " << R.InstrCount << " instructions; program "
            << "output:\n  " << R.Output << "\n";

  TablePrinter Summary(
      {"Predictor", "Miss%", "Breaks", "IPBC avg", "Dividing len"});
  for (size_t P = 0; P < Collector.numPredictors(); ++P) {
    const SequenceHistogram &H = Collector.histograms()[P];
    Summary.addRow({Collector.predictor(P).name(),
                    TablePrinter::formatPercent(H.missRate()),
                    std::to_string(H.Breaks),
                    TablePrinter::formatDouble(H.ipbcAverage(), 1),
                    TablePrinter::formatDouble(H.dividingLength(), 0)});
  }
  Summary.print(std::cout);

  // Textual cumulative plot: one row per length decade, one column of
  // 50 chars per predictor.
  std::cout << "\nCumulative % of executed instructions in sequences of "
               "length < x\n"
               "(L = Loop+Rand, H = Heuristic, P = Perfect):\n";
  auto CurveL = Collector.histograms()[0].instrCurve();
  auto CurveH = Collector.histograms()[1].instrCurve();
  auto CurveP = Collector.histograms()[2].instrCurve();
  auto At = [](const std::vector<std::pair<uint64_t, double>> &Curve,
               uint64_t X) {
    double Last = 0;
    for (auto [Len, Frac] : Curve) {
      if (Len > X)
        break;
      Last = Frac;
    }
    return Last;
  };
  for (uint64_t X : {10u, 20u, 30u, 50u, 80u, 120u, 180u, 270u, 400u,
                     600u, 900u, 1400u, 2000u, 3000u, 5000u, 9000u}) {
    std::string Bar(51, ' ');
    auto Mark = [&](double Frac, char C) {
      size_t Pos = static_cast<size_t>(Frac * 50.0);
      if (Bar[Pos] == ' ')
        Bar[Pos] = C;
      else
        Bar[Pos] = '*'; // overlapping curves
    };
    Mark(At(CurveL, X), 'L');
    Mark(At(CurveH, X), 'H');
    Mark(At(CurveP, X), 'P');
    std::printf("%6lu |%s|\n", static_cast<unsigned long>(X), Bar.c_str());
  }
  std::cout << "        0%        25%       50%       75%       100%\n";
  std::cout << "\nReading the plot: the further right a predictor's mark "
               "sits at small x, the shorter its unbroken instruction "
               "sequences — Perfect should trail Loop+Rand.\n";
  return 0;
}
