//===- examples/minicc.cpp - MiniC compiler / interpreter driver ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A standalone MiniC driver: compile a source file and run it, with
/// optional IR dumping and dataset parameters. Useful for writing new
/// workloads and poking at the code generator.
///
///   $ minicc prog.mc                 compile + run
///   $ minicc --dump-ir prog.mc       also print the IR
///   $ minicc prog.mc 10 20 30        arg(0)=10, arg(1)=20, arg(2)=30
///   $ minicc --input data.bin prog.mc   input_byte() reads data.bin
///   $ minicc --emit-ir out.bpir prog.mc  save the IR as text
///   $ minicc --run-ir out.bpir 10        run serialized IR directly
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/Printer.h"
#include "ir/TextParser.h"
#include "ir/Verifier.h"
#include "vm/Interpreter.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace bpfree;

int main(int argc, char **argv) {
  bool DumpIr = false, RunIr = false;
  std::string File, InputFile, EmitIrFile;
  std::vector<int64_t> Args;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--dump-ir") {
      DumpIr = true;
    } else if (Arg == "--run-ir") {
      RunIr = true;
    } else if (Arg == "--emit-ir" && I + 1 < argc) {
      EmitIrFile = argv[++I];
    } else if (Arg == "--input" && I + 1 < argc) {
      InputFile = argv[++I];
    } else if (File.empty()) {
      File = Arg;
    } else {
      Args.push_back(std::strtoll(Arg.c_str(), nullptr, 10));
    }
  }
  if (File.empty()) {
    std::cerr << "usage: minicc [--dump-ir] [--emit-ir FILE] [--run-ir] "
                 "[--input FILE] FILE [ARG...]\n";
    return 2;
  }

  std::ifstream In(File);
  if (!In) {
    std::cerr << "cannot open '" << File << "'\n";
    return 2;
  }
  std::ostringstream SS;
  SS << In.rdbuf();

  Expected<std::unique_ptr<ir::Module>> M =
      RunIr ? ir::parseModuleText(SS.str()) : minic::compile(SS.str());
  if (!M) {
    std::cerr << File << ":" << M.error().render() << "\n";
    return 1;
  }
  if (RunIr) {
    std::vector<std::string> Errors = ir::verifyModule(**M);
    if (!Errors.empty()) {
      std::cerr << File << ": invalid IR: " << Errors.front() << "\n";
      return 1;
    }
  }
  if (DumpIr)
    std::cout << ir::printModule(**M);
  if (!EmitIrFile.empty()) {
    std::ofstream Out(EmitIrFile);
    if (!Out) {
      std::cerr << "cannot write '" << EmitIrFile << "'\n";
      return 2;
    }
    Out << ir::printModule(**M);
    std::cerr << "[wrote IR to " << EmitIrFile << "]\n";
  }

  Dataset Data("cmdline", Args);
  if (!InputFile.empty()) {
    std::ifstream Bin(InputFile, std::ios::binary);
    if (!Bin) {
      std::cerr << "cannot open input '" << InputFile << "'\n";
      return 2;
    }
    Data.Bytes.assign(std::istreambuf_iterator<char>(Bin),
                      std::istreambuf_iterator<char>());
  }

  Interpreter Interp(**M);
  RunResult R = Interp.run(Data);
  std::cout << R.Output;
  if (!R.ok()) {
    std::cerr << "runtime error: "
              << (R.Status == RunStatus::Trap ? R.TrapMessage
                                              : "instruction budget "
                                                "exceeded")
              << "\n";
    return 1;
  }
  std::cerr << "[exit " << R.ExitValue << ", " << R.InstrCount
            << " instructions]\n";
  return static_cast<int>(R.ExitValue & 0xff);
}
