//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the bpfree project (Ball & Larus, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a tiny MiniC program, run it under an edge
/// profiler, predict every conditional branch with the Ball-Larus
/// heuristics, and compare against the perfect static predictor.
///
///   $ quickstart
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/Printer.h"
#include "predict/Evaluation.h"
#include "vm/Interpreter.h"

#include <iostream>

using namespace bpfree;

int main() {
  // 1. A program with the branch idioms the paper's heuristics target:
  //    a null-guarded pointer walk, an error-code check, and loops.
  const std::string Source = R"MC(
struct node { int value; struct node *next; };

int sum_list(struct node *head) {
  int total = 0;
  while (head != 0) {       /* pointer null test: predicted not-null */
    total = total + head->value;
    head = head->next;
  }
  return total;
}

int checked_div(int a, int b) {
  if (b == 0) { return -1; }  /* error path: predicted not taken */
  return a / b;
}

int main() {
  struct node *head = 0;
  int i;
  int acc = 0;
  for (i = 1; i <= 100; i = i + 1) {
    struct node *n = malloc(sizeof(struct node));
    n->value = i;
    n->next = head;
    head = n;
  }
  acc = sum_list(head);
  for (i = 0; i < 50; i = i + 1) {
    int d = checked_div(acc, i);
    if (d < 0) { acc = acc + 1; } else { acc = acc + d % 7; }
  }
  print_str("acc=");
  print_int(acc);
  print_char(10);
  return 0;
}
)MC";

  // 2. Compile to the MIPS-flavoured IR.
  auto Module = minic::compile(Source);
  if (!Module) {
    std::cerr << "compile error: " << Module.error().render() << "\n";
    return 1;
  }
  std::cout << "Compiled " << (*Module)->numFunctions() << " functions, "
            << (*Module)->countCondBranches()
            << " static conditional branches.\n\n";

  // 3. Execute under an edge profiler (what QPT did for the paper).
  EdgeProfile Profile(**Module);
  Interpreter Interp(**Module);
  RunResult Result = Interp.run(Dataset(), {&Profile});
  if (!Result.ok()) {
    std::cerr << "run failed: " << Result.TrapMessage << "\n";
    return 1;
  }
  std::cout << "Program output: " << Result.Output
            << "Executed " << Result.InstrCount << " instructions, "
            << Profile.totalBranchExecutions()
            << " conditional branches.\n\n";

  // 4. Predict every branch, program-based (no profile needed!), and
  //    score against the profile.
  PredictionContext Ctx(**Module);
  BallLarusPredictor Heuristic(Ctx);
  PerfectPredictor Perfect(Profile);

  std::cout << "Per-branch predictions in main/sum_list/checked_div:\n";
  for (const auto &F : **Module) {
    if (F->getName().rfind("rt_", 0) == 0 ||
        F->getName().rfind("str_", 0) == 0)
      continue; // skip the runtime library for brevity
    for (const auto &BB : *F) {
      if (!BB->isCondBranch())
        continue;
      const EdgeProfile::Counts &C = Profile.get(*BB);
      if (C.total() == 0)
        continue;
      const FunctionContext &FC = Ctx.get(*F);
      bool IsLoop = FC.Loops.isLoopBranch(BB.get());
      auto Responsible = Heuristic.responsibleHeuristic(*BB);
      Direction D = Heuristic.predict(*BB);
      std::cout << "  " << F->getName() << "/" << BB->getName() << "."
                << BB->getId() << ": "
                << ir::branchOpName(BB->terminator().BOp) << "  taken "
                << C.Taken << ", fall-thru " << C.Fallthru << "  -> "
                << (IsLoop ? "loop predictor"
                           : Responsible ? heuristicName(*Responsible)
                                         : "default")
                << " predicts "
                << (D == DirTaken ? "taken" : "fall-thru") << " ("
                << (C.total() == 0
                        ? 0
                        : 100 * (D == DirTaken ? C.Taken : C.Fallthru) /
                              C.total())
                << "% right)\n";
    }
  }

  // 5. Whole-program miss rates.
  std::vector<BranchStats> Stats = collectBranchStats(Ctx, Profile);
  Ratio HeuristicMiss = evaluatePredictor(Heuristic, Stats);
  Ratio PerfectMiss = evaluatePredictor(Perfect, Stats);
  std::cout << "\nOverall miss rates: heuristic "
            << 100.0 * HeuristicMiss.rate() << "%, perfect "
            << 100.0 * PerfectMiss.rate()
            << "% (the paper expects program-based prediction to land "
               "within ~2x of perfect).\n";
  return 0;
}
