file(REMOVE_RECURSE
  "CMakeFiles/predict_tool.dir/predict_tool.cpp.o"
  "CMakeFiles/predict_tool.dir/predict_tool.cpp.o.d"
  "predict_tool"
  "predict_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
