# Empty compiler generated dependencies file for predict_tool.
# This may be replaced when dependencies are built.
