file(REMOVE_RECURSE
  "libbpfree_analysis.a"
)
