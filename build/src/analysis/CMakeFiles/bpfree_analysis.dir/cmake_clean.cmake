file(REMOVE_RECURSE
  "CMakeFiles/bpfree_analysis.dir/DomTree.cpp.o"
  "CMakeFiles/bpfree_analysis.dir/DomTree.cpp.o.d"
  "CMakeFiles/bpfree_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/bpfree_analysis.dir/LoopInfo.cpp.o.d"
  "libbpfree_analysis.a"
  "libbpfree_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfree_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
