# Empty dependencies file for bpfree_analysis.
# This may be replaced when dependencies are built.
