file(REMOVE_RECURSE
  "libbpfree_frontend.a"
)
