file(REMOVE_RECURSE
  "CMakeFiles/bpfree_frontend.dir/CodeGen.cpp.o"
  "CMakeFiles/bpfree_frontend.dir/CodeGen.cpp.o.d"
  "CMakeFiles/bpfree_frontend.dir/Compiler.cpp.o"
  "CMakeFiles/bpfree_frontend.dir/Compiler.cpp.o.d"
  "CMakeFiles/bpfree_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/bpfree_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/bpfree_frontend.dir/Parser.cpp.o"
  "CMakeFiles/bpfree_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/bpfree_frontend.dir/Sema.cpp.o"
  "CMakeFiles/bpfree_frontend.dir/Sema.cpp.o.d"
  "CMakeFiles/bpfree_frontend.dir/Type.cpp.o"
  "CMakeFiles/bpfree_frontend.dir/Type.cpp.o.d"
  "libbpfree_frontend.a"
  "libbpfree_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfree_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
