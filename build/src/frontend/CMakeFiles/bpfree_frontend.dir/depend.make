# Empty dependencies file for bpfree_frontend.
# This may be replaced when dependencies are built.
