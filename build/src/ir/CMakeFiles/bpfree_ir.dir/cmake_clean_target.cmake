file(REMOVE_RECURSE
  "libbpfree_ir.a"
)
