file(REMOVE_RECURSE
  "CMakeFiles/bpfree_ir.dir/IR.cpp.o"
  "CMakeFiles/bpfree_ir.dir/IR.cpp.o.d"
  "CMakeFiles/bpfree_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/bpfree_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/bpfree_ir.dir/Printer.cpp.o"
  "CMakeFiles/bpfree_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/bpfree_ir.dir/Simplify.cpp.o"
  "CMakeFiles/bpfree_ir.dir/Simplify.cpp.o.d"
  "CMakeFiles/bpfree_ir.dir/TextParser.cpp.o"
  "CMakeFiles/bpfree_ir.dir/TextParser.cpp.o.d"
  "CMakeFiles/bpfree_ir.dir/Verifier.cpp.o"
  "CMakeFiles/bpfree_ir.dir/Verifier.cpp.o.d"
  "libbpfree_ir.a"
  "libbpfree_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfree_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
