# Empty compiler generated dependencies file for bpfree_ir.
# This may be replaced when dependencies are built.
