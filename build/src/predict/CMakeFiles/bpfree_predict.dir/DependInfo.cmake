
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/Evaluation.cpp" "src/predict/CMakeFiles/bpfree_predict.dir/Evaluation.cpp.o" "gcc" "src/predict/CMakeFiles/bpfree_predict.dir/Evaluation.cpp.o.d"
  "/root/repo/src/predict/Frequency.cpp" "src/predict/CMakeFiles/bpfree_predict.dir/Frequency.cpp.o" "gcc" "src/predict/CMakeFiles/bpfree_predict.dir/Frequency.cpp.o.d"
  "/root/repo/src/predict/Heuristics.cpp" "src/predict/CMakeFiles/bpfree_predict.dir/Heuristics.cpp.o" "gcc" "src/predict/CMakeFiles/bpfree_predict.dir/Heuristics.cpp.o.d"
  "/root/repo/src/predict/Layout.cpp" "src/predict/CMakeFiles/bpfree_predict.dir/Layout.cpp.o" "gcc" "src/predict/CMakeFiles/bpfree_predict.dir/Layout.cpp.o.d"
  "/root/repo/src/predict/Ordering.cpp" "src/predict/CMakeFiles/bpfree_predict.dir/Ordering.cpp.o" "gcc" "src/predict/CMakeFiles/bpfree_predict.dir/Ordering.cpp.o.d"
  "/root/repo/src/predict/Predictors.cpp" "src/predict/CMakeFiles/bpfree_predict.dir/Predictors.cpp.o" "gcc" "src/predict/CMakeFiles/bpfree_predict.dir/Predictors.cpp.o.d"
  "/root/repo/src/predict/Probability.cpp" "src/predict/CMakeFiles/bpfree_predict.dir/Probability.cpp.o" "gcc" "src/predict/CMakeFiles/bpfree_predict.dir/Probability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/bpfree_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/bpfree_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bpfree_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bpfree_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
