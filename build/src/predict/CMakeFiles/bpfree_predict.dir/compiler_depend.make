# Empty compiler generated dependencies file for bpfree_predict.
# This may be replaced when dependencies are built.
