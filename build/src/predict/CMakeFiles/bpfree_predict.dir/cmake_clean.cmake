file(REMOVE_RECURSE
  "CMakeFiles/bpfree_predict.dir/Evaluation.cpp.o"
  "CMakeFiles/bpfree_predict.dir/Evaluation.cpp.o.d"
  "CMakeFiles/bpfree_predict.dir/Frequency.cpp.o"
  "CMakeFiles/bpfree_predict.dir/Frequency.cpp.o.d"
  "CMakeFiles/bpfree_predict.dir/Heuristics.cpp.o"
  "CMakeFiles/bpfree_predict.dir/Heuristics.cpp.o.d"
  "CMakeFiles/bpfree_predict.dir/Layout.cpp.o"
  "CMakeFiles/bpfree_predict.dir/Layout.cpp.o.d"
  "CMakeFiles/bpfree_predict.dir/Ordering.cpp.o"
  "CMakeFiles/bpfree_predict.dir/Ordering.cpp.o.d"
  "CMakeFiles/bpfree_predict.dir/Predictors.cpp.o"
  "CMakeFiles/bpfree_predict.dir/Predictors.cpp.o.d"
  "CMakeFiles/bpfree_predict.dir/Probability.cpp.o"
  "CMakeFiles/bpfree_predict.dir/Probability.cpp.o.d"
  "libbpfree_predict.a"
  "libbpfree_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfree_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
