file(REMOVE_RECURSE
  "libbpfree_predict.a"
)
