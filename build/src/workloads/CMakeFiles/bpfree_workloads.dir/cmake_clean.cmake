file(REMOVE_RECURSE
  "CMakeFiles/bpfree_workloads.dir/Driver.cpp.o"
  "CMakeFiles/bpfree_workloads.dir/Driver.cpp.o.d"
  "CMakeFiles/bpfree_workloads.dir/Runtime.cpp.o"
  "CMakeFiles/bpfree_workloads.dir/Runtime.cpp.o.d"
  "CMakeFiles/bpfree_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/bpfree_workloads.dir/Workloads.cpp.o.d"
  "CMakeFiles/bpfree_workloads.dir/suite/ExtraSuite.cpp.o"
  "CMakeFiles/bpfree_workloads.dir/suite/ExtraSuite.cpp.o.d"
  "CMakeFiles/bpfree_workloads.dir/suite/FloatSuite.cpp.o"
  "CMakeFiles/bpfree_workloads.dir/suite/FloatSuite.cpp.o.d"
  "CMakeFiles/bpfree_workloads.dir/suite/IntegerSuite.cpp.o"
  "CMakeFiles/bpfree_workloads.dir/suite/IntegerSuite.cpp.o.d"
  "CMakeFiles/bpfree_workloads.dir/suite/PointerSuite.cpp.o"
  "CMakeFiles/bpfree_workloads.dir/suite/PointerSuite.cpp.o.d"
  "CMakeFiles/bpfree_workloads.dir/suite/TextSuite.cpp.o"
  "CMakeFiles/bpfree_workloads.dir/suite/TextSuite.cpp.o.d"
  "libbpfree_workloads.a"
  "libbpfree_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfree_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
