# Empty dependencies file for bpfree_workloads.
# This may be replaced when dependencies are built.
