file(REMOVE_RECURSE
  "libbpfree_workloads.a"
)
