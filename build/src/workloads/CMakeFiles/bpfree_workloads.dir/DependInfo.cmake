
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Driver.cpp" "src/workloads/CMakeFiles/bpfree_workloads.dir/Driver.cpp.o" "gcc" "src/workloads/CMakeFiles/bpfree_workloads.dir/Driver.cpp.o.d"
  "/root/repo/src/workloads/Runtime.cpp" "src/workloads/CMakeFiles/bpfree_workloads.dir/Runtime.cpp.o" "gcc" "src/workloads/CMakeFiles/bpfree_workloads.dir/Runtime.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/workloads/CMakeFiles/bpfree_workloads.dir/Workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/bpfree_workloads.dir/Workloads.cpp.o.d"
  "/root/repo/src/workloads/suite/ExtraSuite.cpp" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/ExtraSuite.cpp.o" "gcc" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/ExtraSuite.cpp.o.d"
  "/root/repo/src/workloads/suite/FloatSuite.cpp" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/FloatSuite.cpp.o" "gcc" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/FloatSuite.cpp.o.d"
  "/root/repo/src/workloads/suite/IntegerSuite.cpp" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/IntegerSuite.cpp.o" "gcc" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/IntegerSuite.cpp.o.d"
  "/root/repo/src/workloads/suite/PointerSuite.cpp" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/PointerSuite.cpp.o" "gcc" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/PointerSuite.cpp.o.d"
  "/root/repo/src/workloads/suite/TextSuite.cpp" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/TextSuite.cpp.o" "gcc" "src/workloads/CMakeFiles/bpfree_workloads.dir/suite/TextSuite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/bpfree_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/bpfree_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bpfree_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bpfree_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bpfree_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bpfree_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
