# Empty compiler generated dependencies file for bpfree_vm.
# This may be replaced when dependencies are built.
