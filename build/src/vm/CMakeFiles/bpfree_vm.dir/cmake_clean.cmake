file(REMOVE_RECURSE
  "CMakeFiles/bpfree_vm.dir/EdgeProfile.cpp.o"
  "CMakeFiles/bpfree_vm.dir/EdgeProfile.cpp.o.d"
  "CMakeFiles/bpfree_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/bpfree_vm.dir/Interpreter.cpp.o.d"
  "libbpfree_vm.a"
  "libbpfree_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfree_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
