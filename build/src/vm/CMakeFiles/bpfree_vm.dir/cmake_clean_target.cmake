file(REMOVE_RECURSE
  "libbpfree_vm.a"
)
