# Empty dependencies file for bpfree_ipbc.
# This may be replaced when dependencies are built.
