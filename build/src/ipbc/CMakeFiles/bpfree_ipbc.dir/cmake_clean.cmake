file(REMOVE_RECURSE
  "CMakeFiles/bpfree_ipbc.dir/SequenceAnalysis.cpp.o"
  "CMakeFiles/bpfree_ipbc.dir/SequenceAnalysis.cpp.o.d"
  "libbpfree_ipbc.a"
  "libbpfree_ipbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfree_ipbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
