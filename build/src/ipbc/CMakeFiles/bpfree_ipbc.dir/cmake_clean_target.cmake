file(REMOVE_RECURSE
  "libbpfree_ipbc.a"
)
