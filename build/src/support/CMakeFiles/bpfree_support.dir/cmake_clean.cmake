file(REMOVE_RECURSE
  "CMakeFiles/bpfree_support.dir/Error.cpp.o"
  "CMakeFiles/bpfree_support.dir/Error.cpp.o.d"
  "CMakeFiles/bpfree_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/bpfree_support.dir/TablePrinter.cpp.o.d"
  "libbpfree_support.a"
  "libbpfree_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfree_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
