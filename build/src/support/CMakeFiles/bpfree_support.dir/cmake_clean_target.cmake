file(REMOVE_RECURSE
  "libbpfree_support.a"
)
