# Empty compiler generated dependencies file for bpfree_support.
# This may be replaced when dependencies are built.
