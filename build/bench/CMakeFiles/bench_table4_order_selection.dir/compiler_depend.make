# Empty compiler generated dependencies file for bench_table4_order_selection.
# This may be replaced when dependencies are built.
