
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ipbc_graphs.cpp" "bench/CMakeFiles/bench_ipbc_graphs.dir/bench_ipbc_graphs.cpp.o" "gcc" "bench/CMakeFiles/bench_ipbc_graphs.dir/bench_ipbc_graphs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/bpfree_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ipbc/CMakeFiles/bpfree_ipbc.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bpfree_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/bpfree_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/bpfree_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bpfree_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bpfree_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bpfree_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
