file(REMOVE_RECURSE
  "CMakeFiles/bench_ipbc_graphs.dir/bench_ipbc_graphs.cpp.o"
  "CMakeFiles/bench_ipbc_graphs.dir/bench_ipbc_graphs.cpp.o.d"
  "bench_ipbc_graphs"
  "bench_ipbc_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipbc_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
