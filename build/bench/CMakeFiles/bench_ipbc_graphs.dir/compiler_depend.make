# Empty compiler generated dependencies file for bench_ipbc_graphs.
# This may be replaced when dependencies are built.
