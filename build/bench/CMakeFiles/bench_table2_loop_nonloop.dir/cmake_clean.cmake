file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_loop_nonloop.dir/bench_table2_loop_nonloop.cpp.o"
  "CMakeFiles/bench_table2_loop_nonloop.dir/bench_table2_loop_nonloop.cpp.o.d"
  "bench_table2_loop_nonloop"
  "bench_table2_loop_nonloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_loop_nonloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
