# Empty compiler generated dependencies file for bench_table2_loop_nonloop.
# This may be replaced when dependencies are built.
