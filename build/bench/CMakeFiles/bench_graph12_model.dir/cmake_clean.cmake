file(REMOVE_RECURSE
  "CMakeFiles/bench_graph12_model.dir/bench_graph12_model.cpp.o"
  "CMakeFiles/bench_graph12_model.dir/bench_graph12_model.cpp.o.d"
  "bench_graph12_model"
  "bench_graph12_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph12_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
