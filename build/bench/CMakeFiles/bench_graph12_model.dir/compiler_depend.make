# Empty compiler generated dependencies file for bench_graph12_model.
# This may be replaced when dependencies are built.
