# Empty compiler generated dependencies file for bench_profile_based.
# This may be replaced when dependencies are built.
