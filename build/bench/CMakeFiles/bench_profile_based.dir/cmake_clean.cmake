file(REMOVE_RECURSE
  "CMakeFiles/bench_profile_based.dir/bench_profile_based.cpp.o"
  "CMakeFiles/bench_profile_based.dir/bench_profile_based.cpp.o.d"
  "bench_profile_based"
  "bench_profile_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profile_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
