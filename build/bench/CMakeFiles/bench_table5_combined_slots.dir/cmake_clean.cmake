file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_combined_slots.dir/bench_table5_combined_slots.cpp.o"
  "CMakeFiles/bench_table5_combined_slots.dir/bench_table5_combined_slots.cpp.o.d"
  "bench_table5_combined_slots"
  "bench_table5_combined_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_combined_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
