# Empty dependencies file for bench_table5_combined_slots.
# This may be replaced when dependencies are built.
