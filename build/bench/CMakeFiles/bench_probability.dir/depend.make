# Empty dependencies file for bench_probability.
# This may be replaced when dependencies are built.
