file(REMOVE_RECURSE
  "CMakeFiles/bench_probability.dir/bench_probability.cpp.o"
  "CMakeFiles/bench_probability.dir/bench_probability.cpp.o.d"
  "bench_probability"
  "bench_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
