file(REMOVE_RECURSE
  "CMakeFiles/bench_graph13_datasets.dir/bench_graph13_datasets.cpp.o"
  "CMakeFiles/bench_graph13_datasets.dir/bench_graph13_datasets.cpp.o.d"
  "bench_graph13_datasets"
  "bench_graph13_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph13_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
