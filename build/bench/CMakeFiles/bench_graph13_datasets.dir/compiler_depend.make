# Empty compiler generated dependencies file for bench_graph13_datasets.
# This may be replaced when dependencies are built.
