file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_final.dir/bench_table6_final.cpp.o"
  "CMakeFiles/bench_table6_final.dir/bench_table6_final.cpp.o.d"
  "bench_table6_final"
  "bench_table6_final.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_final.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
