# Empty dependencies file for bench_table6_final.
# This may be replaced when dependencies are built.
