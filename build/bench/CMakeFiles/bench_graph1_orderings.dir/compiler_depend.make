# Empty compiler generated dependencies file for bench_graph1_orderings.
# This may be replaced when dependencies are built.
