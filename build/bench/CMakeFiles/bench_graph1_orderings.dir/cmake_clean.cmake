file(REMOVE_RECURSE
  "CMakeFiles/bench_graph1_orderings.dir/bench_graph1_orderings.cpp.o"
  "CMakeFiles/bench_graph1_orderings.dir/bench_graph1_orderings.cpp.o.d"
  "bench_graph1_orderings"
  "bench_graph1_orderings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph1_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
