file(REMOVE_RECURSE
  "CMakeFiles/frequency_test.dir/FrequencyTest.cpp.o"
  "CMakeFiles/frequency_test.dir/FrequencyTest.cpp.o.d"
  "frequency_test"
  "frequency_test.pdb"
  "frequency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
