file(REMOVE_RECURSE
  "CMakeFiles/textparser_test.dir/TextParserTest.cpp.o"
  "CMakeFiles/textparser_test.dir/TextParserTest.cpp.o.d"
  "textparser_test"
  "textparser_test.pdb"
  "textparser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textparser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
