# Empty dependencies file for textparser_test.
# This may be replaced when dependencies are built.
