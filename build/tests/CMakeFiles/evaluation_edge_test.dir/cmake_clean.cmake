file(REMOVE_RECURSE
  "CMakeFiles/evaluation_edge_test.dir/EvaluationEdgeTest.cpp.o"
  "CMakeFiles/evaluation_edge_test.dir/EvaluationEdgeTest.cpp.o.d"
  "evaluation_edge_test"
  "evaluation_edge_test.pdb"
  "evaluation_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluation_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
