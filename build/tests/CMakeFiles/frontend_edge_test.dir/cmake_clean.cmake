file(REMOVE_RECURSE
  "CMakeFiles/frontend_edge_test.dir/FrontendEdgeTest.cpp.o"
  "CMakeFiles/frontend_edge_test.dir/FrontendEdgeTest.cpp.o.d"
  "frontend_edge_test"
  "frontend_edge_test.pdb"
  "frontend_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
