# Empty dependencies file for frontend_edge_test.
# This may be replaced when dependencies are built.
