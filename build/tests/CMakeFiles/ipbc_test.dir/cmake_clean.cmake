file(REMOVE_RECURSE
  "CMakeFiles/ipbc_test.dir/IpbcTest.cpp.o"
  "CMakeFiles/ipbc_test.dir/IpbcTest.cpp.o.d"
  "ipbc_test"
  "ipbc_test.pdb"
  "ipbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
