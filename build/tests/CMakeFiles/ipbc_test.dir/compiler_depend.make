# Empty compiler generated dependencies file for ipbc_test.
# This may be replaced when dependencies are built.
