# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/heuristics_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/ipbc_test[1]_include.cmake")
include("/root/repo/build/tests/simplify_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/probability_test[1]_include.cmake")
include("/root/repo/build/tests/textparser_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_edge_test[1]_include.cmake")
include("/root/repo/build/tests/frequency_test[1]_include.cmake")
include("/root/repo/build/tests/evaluation_edge_test[1]_include.cmake")
